"""Negotiated access-control changes (§4.2.1).

The paper: *"It is also likely that such changes will be made as a result
of negotiation between parties involved."*  :class:`AccessNegotiator`
implements a small request/decide protocol: a member asks an artefact's
current controllers for a right; controllers respond within a deadline;
a configurable decision rule (default: unanimous assent grants, any
explicit refusal denies immediately) determines the outcome, which is
applied to a role-based policy automatically.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional

from repro.errors import AccessPolicyError
from repro.access.roles import Role, RoleBasedPolicy
from repro.sim import Counter, Environment, Event

GRANTED = "granted"
DENIED = "denied"
EXPIRED = "expired"

_request_ids = itertools.count(1)  # repro: allow-RPR005 (ids are labels, not behaviour)


class NegotiationRequest:
    """One in-flight request for a right."""

    def __init__(self, requester: str, artefact: str, right: str,
                 controllers: List[str], deadline: float,
                 event: Event) -> None:
        self.request_id = next(_request_ids)
        self.requester = requester
        self.artefact = artefact
        self.right = right
        self.controllers = list(controllers)
        self.deadline = deadline
        self.event = event
        self.votes: Dict[str, bool] = {}
        self.outcome: Optional[str] = None


class AccessNegotiator:
    """Mediates rights requests between a requester and controllers."""

    def __init__(self, env: Environment, policy: RoleBasedPolicy,
                 decision: Optional[Callable[[Dict[str, bool], int],
                                             Optional[bool]]] = None
                 ) -> None:
        self.env = env
        self.policy = policy
        self.decision = decision or self._default_decision
        self._pending: Dict[int, NegotiationRequest] = {}
        self._handlers: Dict[str, Callable[[NegotiationRequest], None]] = {}
        self.counters = Counter()

    def on_request(self, controller: str,
                   handler: Callable[[NegotiationRequest], None]) -> None:
        """Notify ``controller`` when a negotiation involves them."""
        self._handlers[controller] = handler

    def request(self, requester: str, artefact: str, right: str,
                controllers: List[str], deadline: float = 30.0) -> Event:
        """Open a negotiation; the event fires with the outcome string."""
        if not controllers:
            raise AccessPolicyError(
                "negotiation requires at least one controller")
        event = self.env.event()
        req = NegotiationRequest(requester, artefact, right,
                                 controllers, deadline, event)
        self._pending[req.request_id] = req
        self.counters.incr("requests")
        for controller in controllers:
            handler = self._handlers.get(controller)
            if handler is not None:
                handler(req)
        self.env.process(self._expire(req))
        return event

    def respond(self, request_id: int, controller: str,
                grant: bool) -> None:
        """A controller's vote on a pending request."""
        req = self._pending.get(request_id)
        if req is None:
            return  # already decided; late votes are dropped
        if controller not in req.controllers:
            raise AccessPolicyError(
                "{} is not a controller for request {}".format(
                    controller, request_id))
        req.votes[controller] = grant
        decision = self.decision(req.votes, len(req.controllers))
        if decision is not None:
            self._conclude(req, GRANTED if decision else DENIED)

    # -- internals -------------------------------------------------------------

    @staticmethod
    def _default_decision(votes: Dict[str, bool],
                          controllers: int) -> Optional[bool]:
        """Veto-friendly rule: any refusal denies immediately; granting
        requires every controller's assent."""
        if any(not vote for vote in votes.values()):
            return False
        if len(votes) == controllers:
            return True
        return None

    def _conclude(self, req: NegotiationRequest, outcome: str) -> None:
        if req.outcome is not None:
            return
        req.outcome = outcome
        self._pending.pop(req.request_id, None)
        self.counters.incr(outcome)
        if outcome == GRANTED:
            self._apply(req)
        req.event.succeed(outcome)

    def _apply(self, req: NegotiationRequest) -> None:
        """Install the granted right as a one-off negotiated role."""
        role_name = "negotiated-{}".format(req.request_id)
        role = Role(role_name).allow(req.artefact, req.right)
        self.policy.define(role)
        self.policy.assign(req.requester, role_name, at=self.env.now)

    def _expire(self, req: NegotiationRequest):
        yield self.env.timeout(req.deadline)
        if req.outcome is None:
            self._conclude(req, EXPIRED)
