"""Access control for collaborative environments (§4.2.1 "Security").

Baseline and alternative side by side:

* :mod:`~repro.access.matrix` — the classic access matrix with ACL and
  capability views, a single administrator and static (delayed)
  administration: the model the paper criticises.
* :mod:`~repro.access.roles` — dynamic roles with pattern-based,
  fine-grained rights and a visible specification.
* :mod:`~repro.access.shen_dewan` — Shen & Dewan's double-inheritance
  model with negative rights.
* :mod:`~repro.access.negotiation` — rights changes agreed by negotiation
  between the parties involved.
"""

from repro.access.matrix import (
    AccessMatrix,
    Capability,
    GRANT,
    READ,
    RIGHTS,
    WRITE,
)
from repro.access.negotiation import (
    AccessNegotiator,
    DENIED,
    EXPIRED,
    GRANTED,
    NegotiationRequest,
)
from repro.access.roles import (
    ANNOTATE,
    Role,
    RoleBasedPolicy,
    pattern_matches,
)
from repro.access.shen_dewan import Hierarchy, ShenDewanPolicy

__all__ = [
    "ANNOTATE",
    "AccessMatrix",
    "AccessNegotiator",
    "Capability",
    "DENIED",
    "EXPIRED",
    "GRANT",
    "GRANTED",
    "Hierarchy",
    "NegotiationRequest",
    "READ",
    "RIGHTS",
    "Role",
    "RoleBasedPolicy",
    "ShenDewanPolicy",
    "WRITE",
    "pattern_matches",
]
