"""Shen & Dewan's inheritance-based access model (CSCW'92; paper §4.2.1).

*"Shen and Dewan however describe a novel scheme featuring fine grain
control and multiple dynamic user roles."*

Their model arranges **subjects** (users and the roles/groups containing
them) and **objects** (documents and their parts) in hierarchies.  Rights
are specified for (subject, object) pairs — positively or negatively —
and inherited down both hierarchies; the most *specific* applicable entry
wins, with negative rights beating positive at equal specificity.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import AccessDenied, AccessPolicyError
from repro.sim import Counter


class Hierarchy:
    """A rooted tree of named nodes (subject groups or object parts)."""

    def __init__(self, root: str) -> None:
        self.root = root
        self._parent: Dict[str, Optional[str]] = {root: None}

    def add(self, name: str, parent: str) -> str:
        """Insert ``name`` under ``parent``."""
        if name in self._parent:
            raise AccessPolicyError("node {} already exists".format(name))
        if parent not in self._parent:
            raise AccessPolicyError("no parent named {}".format(parent))
        self._parent[name] = parent
        return name

    def __contains__(self, name: str) -> bool:
        return name in self._parent

    def move(self, name: str, new_parent: str) -> None:
        """Re-parent a node (dynamic role membership changes)."""
        if name not in self._parent or name == self.root:
            raise AccessPolicyError("cannot move {}".format(name))
        if new_parent not in self._parent:
            raise AccessPolicyError(
                "no parent named {}".format(new_parent))
        ancestor = new_parent
        while ancestor is not None:
            if ancestor == name:
                raise AccessPolicyError("move would create a cycle")
            ancestor = self._parent[ancestor]
        self._parent[name] = new_parent

    def chain(self, name: str) -> List[str]:
        """The node and its ancestors, most specific first."""
        if name not in self._parent:
            raise AccessPolicyError("no node named {}".format(name))
        result = []
        node: Optional[str] = name
        while node is not None:
            result.append(node)
            node = self._parent[node]
        return result

    def depth(self, name: str) -> int:
        """Distance from the root (root = 0)."""
        return len(self.chain(name)) - 1


class ShenDewanPolicy:
    """Double-inheritance rights with negative entries."""

    def __init__(self, subjects: Hierarchy, objects: Hierarchy) -> None:
        self.subjects = subjects
        self.objects = objects
        #: (subject, object, right) -> bool (True allow, False deny).
        self._entries: Dict[Tuple[str, str, str], bool] = {}
        self.counters = Counter()

    def grant(self, subject: str, obj: str, right: str) -> None:
        """Add a positive right for the (subject, object) pair."""
        self._set(subject, obj, right, True)

    def deny(self, subject: str, obj: str, right: str) -> None:
        """Add a negative right (overrides inherited positives)."""
        self._set(subject, obj, right, False)

    def clear(self, subject: str, obj: str, right: str) -> None:
        """Remove an explicit entry (inheritance resumes)."""
        self._entries.pop((subject, obj, right), None)

    def _set(self, subject: str, obj: str, right: str,
             allow: bool) -> None:
        if subject not in self.subjects:
            raise AccessPolicyError("unknown subject " + subject)
        if obj not in self.objects:
            raise AccessPolicyError("unknown object " + obj)
        self._entries[(subject, obj, right)] = allow

    def check(self, subject: str, obj: str, right: str) -> bool:
        """Resolve by most-specific entry over both hierarchies.

        Specificity of an entry is the pair (subject depth + object
        depth); higher is more specific.  At equal specificity a negative
        entry wins.  With no applicable entry, access is denied.
        """
        self.counters.incr("checks")
        best_specificity = -1
        best_allow = False
        examined = 0
        for s in self.subjects.chain(subject):
            s_depth = self.subjects.depth(s)
            for o in self.objects.chain(obj):
                examined += 1
                entry = self._entries.get((s, o, right))
                if entry is None:
                    continue
                specificity = s_depth + self.objects.depth(o)
                if specificity > best_specificity:
                    best_specificity = specificity
                    best_allow = entry
                elif specificity == best_specificity and not entry:
                    best_allow = False
        self.counters.incr("entries_examined", examined)
        return best_allow

    def require(self, subject: str, obj: str, right: str) -> None:
        if not self.check(subject, obj, right):
            raise AccessDenied(
                "{} lacks {} on {}".format(subject, right, obj))

    @property
    def entry_count(self) -> int:
        return len(self._entries)
