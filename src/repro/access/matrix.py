"""The classical access-control baseline (§4.2.1 "Security").

*"Most existing approaches to access control in distributed systems are
based on the classic Access Matrix.  Specific mechanisms derived from this
matrix include access control lists and capabilities."*

This module provides that baseline with the properties the paper
criticises built in deliberately: identity-based subjects, a **single
administrator**, and **static administration** — changes queue behind an
administrative delay before taking effect.  Experiment E5 measures the
consequence (time-to-effect of a rights change) against the dynamic
role-based model.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import AccessDenied, AccessPolicyError
from repro.sim import Counter, Environment

READ = "read"
WRITE = "write"
GRANT = "grant"

RIGHTS = (READ, WRITE, GRANT)

_capability_ids = itertools.count(1000)  # repro: allow-RPR005 (ids are labels, not behaviour)


class AccessMatrix:
    """Subjects × objects → rights, mutated only by the administrator."""

    def __init__(self, env: Environment, administrator: str,
                 admin_delay: float = 0.0) -> None:
        if admin_delay < 0:
            raise AccessPolicyError("admin_delay must be non-negative")
        self.env = env
        self.administrator = administrator
        self.admin_delay = admin_delay
        self._entries: Dict[Tuple[str, str], Set[str]] = {}
        self.counters = Counter()
        #: (effective_at, subject, object, right, add) — audit trail.
        self.change_log: List[Tuple[float, str, str, str, bool]] = []

    def check(self, subject: str, obj: str, right: str) -> bool:
        """Does ``subject`` currently hold ``right`` on ``obj``?"""
        self.counters.incr("checks")
        return right in self._entries.get((subject, obj), set())

    def require(self, subject: str, obj: str, right: str) -> None:
        """Raise :class:`AccessDenied` unless the right is held."""
        if not self.check(subject, obj, right):
            raise AccessDenied(
                "{} lacks {} on {}".format(subject, right, obj))

    def request_change(self, requester: str, subject: str, obj: str,
                       right: str, add: bool = True):
        """Administrator-only change; effective after the admin delay.

        Returns an event firing when the change has taken effect.
        """
        if requester != self.administrator:
            raise AccessDenied(
                "only {} may administer the matrix".format(
                    self.administrator))
        if right not in RIGHTS:
            raise AccessPolicyError("unknown right: " + right)
        event = self.env.event()
        self.counters.incr("change_requests")
        self.env.process(self._apply_later(subject, obj, right, add, event))
        return event

    def _apply_later(self, subject: str, obj: str, right: str,
                     add: bool, event) -> object:
        if self.admin_delay > 0:
            yield self.env.timeout(self.admin_delay)
        rights = self._entries.setdefault((subject, obj), set())
        if add:
            rights.add(right)
        else:
            rights.discard(right)
        self.change_log.append((self.env.now, subject, obj, right, add))
        self.counters.incr("changes_applied")
        event.succeed(self.env.now)

    # -- derived mechanisms ------------------------------------------------------

    def acl_of(self, obj: str) -> Dict[str, Set[str]]:
        """The column of the matrix: the object's access control list."""
        return {subject: set(rights)
                for (subject, o), rights in self._entries.items()
                if o == obj and rights}

    def capabilities_of(self, subject: str) -> List["Capability"]:
        """The row of the matrix, minted as capability tokens."""
        return [Capability(subject, obj, right)
                for (s, obj), rights in self._entries.items()
                if s == subject
                for right in sorted(rights)]


class Capability:
    """An unforgeable (token, object, right) handle minted from the matrix."""

    __slots__ = ("token", "holder", "obj", "right")

    def __init__(self, holder: str, obj: str, right: str) -> None:
        self.token = "cap-{}".format(next(_capability_ids))
        self.holder = holder
        self.obj = obj
        self.right = right

    def permits(self, obj: str, right: str) -> bool:
        """Does this capability cover the requested access?"""
        return self.obj == obj and self.right == right

    def __repr__(self) -> str:
        return "<Capability {} {} on {}>".format(
            self.token, self.right, self.obj)
