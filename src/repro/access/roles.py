"""Dynamic role-based access control for collaboration (§4.2.1).

The paper: *"It is now generally recognised in CSCW that access control
policies should be based on the concept of role.  Furthermore, it is
recognised that roles are dynamic, changing frequently during the course
of a collaboration... access models within CSCW systems should also
support dynamic changes to access control information."*

:class:`RoleBasedPolicy` supports exactly that: rights attach to roles
over artefact *patterns* (supporting fine granularity down to individual
lines); users take and shed roles at any instant with immediate effect;
the whole specification is visible and auditable (:meth:`describe`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import AccessDenied, AccessPolicyError
from repro.sim import Counter

READ = "read"
WRITE = "write"
ANNOTATE = "annotate"
GRANT = "grant"


def pattern_matches(pattern: str, artefact: str) -> bool:
    """Hierarchical pattern match on '/'-separated artefact paths.

    A trailing ``*`` segment matches any remainder: ``doc/sec:1/*``
    covers every paragraph and line under section 1.  ``*`` alone matches
    everything.
    """
    if pattern == "*":
        return True
    pattern_parts = pattern.split("/")
    artefact_parts = artefact.split("/")
    for i, part in enumerate(pattern_parts):
        if part == "*":
            return True
        if i >= len(artefact_parts) or artefact_parts[i] != part:
            return False
    return len(pattern_parts) == len(artefact_parts)


class Role:
    """A named bundle of (artefact pattern → rights) rules."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._rules: List[Tuple[str, Set[str]]] = []

    def allow(self, pattern: str, *rights: str) -> "Role":
        """Grant ``rights`` on artefacts matching ``pattern``."""
        if not rights:
            raise AccessPolicyError("allow() requires at least one right")
        self._rules.append((pattern, set(rights)))
        return self

    def permits(self, artefact: str, right: str) -> bool:
        """Does this role confer ``right`` on ``artefact``?"""
        return any(right in rights and pattern_matches(pattern, artefact)
                   for pattern, rights in self._rules)

    def rules(self) -> List[Tuple[str, Set[str]]]:
        """The visible specification of the role."""
        return [(pattern, set(rights)) for pattern, rights in self._rules]

    def __repr__(self) -> str:
        return "<Role {} rules={}>".format(self.name, len(self._rules))


class RoleBasedPolicy:
    """Users hold dynamic roles; checks consult the current bindings."""

    def __init__(self) -> None:
        self._roles: Dict[str, Role] = {}
        self._bindings: Dict[str, Set[str]] = {}
        self.counters = Counter()
        #: (at, user, role, assigned?) — the dynamic-change audit trail.
        self.change_log: List[Tuple[float, str, str, bool]] = []

    def define(self, role: Role) -> Role:
        """Register a role definition."""
        if role.name in self._roles:
            raise AccessPolicyError(
                "role {} already defined".format(role.name))
        self._roles[role.name] = role
        return role

    def role(self, name: str) -> Role:
        try:
            return self._roles[name]
        except KeyError:
            raise AccessPolicyError("no role named {}".format(name))

    def assign(self, user: str, role_name: str, at: float = 0.0) -> None:
        """Give ``user`` the role — effective immediately."""
        self.role(role_name)
        self._bindings.setdefault(user, set()).add(role_name)
        self.change_log.append((at, user, role_name, True))
        self.counters.incr("role_changes")

    def revoke(self, user: str, role_name: str, at: float = 0.0) -> None:
        """Remove the role — effective immediately."""
        holding = self._bindings.get(user, set())
        if role_name not in holding:
            raise AccessPolicyError(
                "{} does not hold role {}".format(user, role_name))
        holding.remove(role_name)
        self.change_log.append((at, user, role_name, False))
        self.counters.incr("role_changes")

    def roles_of(self, user: str) -> Set[str]:
        return set(self._bindings.get(user, set()))

    def check(self, user: str, artefact: str, right: str) -> bool:
        """Does any of the user's current roles confer the right?"""
        self.counters.incr("checks")
        return any(self._roles[name].permits(artefact, right)
                   for name in self._bindings.get(user, set()))

    def require(self, user: str, artefact: str, right: str) -> None:
        if not self.check(user, artefact, right):
            raise AccessDenied(
                "{} lacks {} on {} (roles: {})".format(
                    user, right, artefact,
                    sorted(self.roles_of(user)) or "none"))

    def describe(self) -> str:
        """A human-readable dump of the whole policy.

        The paper: *"it is important in CSCW environments that access
        rights are both visible and easy to understand."*
        """
        lines = []
        for name in sorted(self._roles):
            lines.append("role {}:".format(name))
            for pattern, rights in self._roles[name].rules():
                lines.append("  {} -> {}".format(
                    pattern, ", ".join(sorted(rights))))
        for user in sorted(self._bindings):
            roles = sorted(self._bindings[user])
            if roles:
                lines.append("user {}: {}".format(user, ", ".join(roles)))
        return "\n".join(lines)
