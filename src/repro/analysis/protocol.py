"""Sim-protocol checker: generator actors vs the kernel's contract.

The kernel (:mod:`repro.sim`) drives *actors* — generator functions that
yield :class:`~repro.sim.events.Event` objects and are resumed when the
event fires.  The contract is easy to break silently:

* an ``env.timeout(...)`` whose result is **not yielded** schedules a
  timer nobody waits for — the actor runs on without pausing;
* a **bare** ``yield`` (or a yield of a literal constant) suspends the
  actor forever: the kernel only resumes processes via event callbacks;
* calling ``succeed()`` / ``fail()`` / ``trigger()`` **twice** on the
  same event along one path raises ``SimulationError`` at runtime;
* calling ``env.run()`` / ``env.step()`` from *inside* an actor
  re-enters the event loop — and a ``# repro: fast-path`` marked
  function must not use context-manager resource claims (``with
  ...request()``), whose protocol overhead the marker exists to forbid
  (see ``Network._carry``).

========  =============================================================
code      violation
========  =============================================================
RPR201    event factory result discarded (never yielded)
RPR202    bare ``yield`` / yield of a non-event constant in an actor
RPR203    ``succeed``/``fail``/``trigger`` twice on one event in a path
RPR204    blocking construct in an actor or ``fast-path`` function
========  =============================================================

An *actor* here is a generator whose own body references the simulation
environment (an ``env`` parameter or an ``.env`` attribute); ordinary
iterator generators are exempt.  The ``return``-then-``yield`` idiom
that turns a plain function into a generator (``return`` followed by an
unreachable bare ``yield``) is recognised and allowed.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.callgraph import call_name
from repro.analysis.ir import FunctionInfo, RepoIndex, own_body
from repro.analysis.lint import Finding, node_span

#: Environment methods returning events an actor must yield.
_EVENT_FACTORIES = {"timeout", "event", "all_of", "any_of"}

#: Environment methods that re-enter the event loop.
_REENTRANT = {"run", "step", "run_all"}

#: Event methods that trigger an event (valid at most once).
_TRIGGERS = {"succeed", "fail", "trigger"}

RULE_META: Dict[str, Tuple[str, str, str]] = {
    "RPR201": ("event factory result discarded in an actor",
               "yield the event (or drop the call); an unawaited "
               "timeout never pauses the actor", "error"),
    "RPR202": ("yield of a non-event in an actor",
               "actors must yield Event objects; the kernel never "
               "resumes a process waiting on a bare yield", "error"),
    "RPR203": ("event triggered twice along one path",
               "an event may be succeeded or failed once; create a "
               "fresh event per round", "error"),
    "RPR204": ("blocking construct in an actor or fast-path function",
               "never re-enter the event loop from an actor; fast "
               "paths claim resources explicitly, not via 'with'",
               "error"),
}


def _references_env(info: FunctionInfo) -> bool:
    args = info.node.args
    params = [arg.arg for arg in
              list(getattr(args, "posonlyargs", [])) + args.args
              + args.kwonlyargs]
    if "env" in params:
        return True
    for node in own_body(info.node):
        if isinstance(node, ast.Name) and node.id == "env":
            return True
        if isinstance(node, ast.Attribute) and node.attr in ("env",
                                                             "_env"):
            return True
    return False


def is_actor(info: FunctionInfo) -> bool:
    """A generator whose own body touches the simulation environment."""
    return info.is_generator and _references_env(info)


def _env_call(parts: List[str], factories) -> bool:
    """Does the dotted call chain hit ``factories`` through ``env``?"""
    return len(parts) >= 2 and parts[-1] in factories \
        and ("env" in parts[:-1] or "_env" in parts[:-1])


def _finding(info: FunctionInfo, node: ast.AST, code: str,
             message: str) -> Finding:
    summary, hint, severity = RULE_META[code]
    start, end = node_span(node)
    return Finding(info.path, getattr(node, "lineno", info.lineno),
                   getattr(node, "col_offset", 0) + 1, code, message,
                   hint, severity=severity, end_line=end,
                   suppress_from=start, function=info.qualname)


# -- RPR201 / RPR202 / RPR204: structural walks ----------------------------

def _check_discarded_events(info: FunctionInfo) -> Iterator[Finding]:
    for node in own_body(info.node):
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            parts = call_name(node.value).split(".")
            if _env_call(parts, _EVENT_FACTORIES):
                yield _finding(
                    info, node.value, "RPR201",
                    "{}() result discarded — the actor never waits on "
                    "it".format(".".join(parts)))


def _check_yields(info: FunctionInfo) -> Iterator[Finding]:
    for body in _blocks(info.node):
        previous: Optional[ast.stmt] = None
        for stmt in body:
            if isinstance(stmt, ast.Expr) \
                    and isinstance(stmt.value, ast.Yield):
                value = stmt.value.value
                if value is None:
                    if not isinstance(previous, ast.Return):
                        yield _finding(
                            info, stmt.value, "RPR202",
                            "bare yield suspends the actor forever")
                elif isinstance(value, ast.Constant):
                    yield _finding(
                        info, stmt.value, "RPR202",
                        "yield of constant {!r} is not an event".format(
                            value.value))
            previous = stmt


def _check_blocking(info: FunctionInfo, actor: bool) -> Iterator[Finding]:
    for node in own_body(info.node):
        if actor and isinstance(node, ast.Call):
            parts = call_name(node).split(".")
            if _env_call(parts, _REENTRANT):
                yield _finding(
                    info, node, "RPR204",
                    "{}() re-enters the event loop from inside an "
                    "actor".format(".".join(parts)))
        if info.fast_path and isinstance(node, ast.With):
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call) \
                        and isinstance(expr.func, ast.Attribute) \
                        and expr.func.attr in ("request", "acquire"):
                    yield _finding(
                        info, expr, "RPR204",
                        "'with ...{}()' claim in a fast-path function; "
                        "claim and release explicitly".format(
                            expr.func.attr))


# -- RPR203: path-sensitive double trigger ---------------------------------

def _check_double_trigger(info: FunctionInfo) -> Iterator[Finding]:
    findings: List[Finding] = []
    reported: set = set()

    def assigned_names(stmt: ast.stmt) -> List[str]:
        names: List[str] = []
        targets: List[ast.AST] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        for target in targets:
            text = _target_text(target)
            if text:
                names.append(text)
        return names

    def trigger_calls(stmt: ast.stmt) -> List[Tuple[str, ast.Call]]:
        calls: List[Tuple[str, ast.Call]] = []
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _TRIGGERS:
                base = _target_text(node.func.value)
                if base:
                    calls.append((base, node))
        return calls

    def bump(stmt: ast.stmt, counts: Dict[str, int]) -> None:
        for base, node in trigger_calls(stmt):
            counts[base] = counts.get(base, 0) + 1
            key = (getattr(node, "lineno", 0),
                   getattr(node, "col_offset", 0), base)
            if counts[base] == 2 and key not in reported:
                reported.add(key)
                findings.append(_finding(
                    info, node, "RPR203",
                    "'{}' may already be triggered on this path; a "
                    "second {}() raises at runtime".format(
                        base, node.func.attr)))

    def join(first: Optional[Dict[str, int]],
             second: Optional[Dict[str, int]]
             ) -> Optional[Dict[str, int]]:
        if first is None:
            return second
        if second is None:
            return first
        return _merge(first, second)

    def scan(body: List[ast.stmt],
             counts: Dict[str, int]) -> Optional[Dict[str, int]]:
        """Path-sensitive trigger counting.

        Returns the counts flowing past the block, or ``None`` when
        every path through it terminates (``return``/``raise``/
        ``break``/``continue``) — a trigger followed by an exit cannot
        pair with triggers after the block.
        """
        for stmt in body:
            for name in assigned_names(stmt):
                counts[name] = 0
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(stmt, (ast.Return, ast.Raise, ast.Break,
                                 ast.Continue)):
                bump(stmt, counts)
                return None
            if isinstance(stmt, ast.If):
                merged = join(scan(list(stmt.body), dict(counts)),
                              scan(list(stmt.orelse), dict(counts))
                              if stmt.orelse else dict(counts))
                if merged is None:
                    return None
                counts = merged
                continue
            if isinstance(stmt, (ast.For, ast.While)):
                entry = dict(counts)
                for name in _loop_targets(stmt):
                    entry[name] = 0
                once = scan(list(stmt.body), entry)
                if once is not None:
                    # Second pass over the body: a trigger that does
                    # not exit the loop fires again next iteration.
                    again = dict(once)
                    for name in _loop_targets(stmt):
                        again[name] = 0
                    twice = scan(list(stmt.body), again)
                    counts = _merge(counts,
                                    once if twice is None else twice)
                if stmt.orelse:
                    merged = scan(list(stmt.orelse), dict(counts))
                    if merged is None:
                        return None
                    counts = merged
                continue
            if isinstance(stmt, ast.Try):
                branch = scan(list(stmt.body), dict(counts))
                for handler in stmt.handlers:
                    branch = join(
                        branch, scan(list(handler.body), dict(counts)))
                if branch is not None and stmt.orelse:
                    branch = scan(list(stmt.orelse), branch)
                if stmt.finalbody:
                    final = scan(list(stmt.finalbody),
                                 dict(counts if branch is None
                                      else branch))
                    if branch is None or final is None:
                        return None
                    counts = final
                    continue
                if branch is None:
                    return None
                counts = branch
                continue
            if isinstance(stmt, ast.With):
                inner = scan(list(stmt.body), dict(counts))
                if inner is None:
                    return None
                counts = inner
                continue
            bump(stmt, counts)
        return counts

    scan(list(info.node.body), {})
    return iter(findings)


def _loop_targets(stmt: ast.stmt) -> List[str]:
    """Names rebound by a ``for`` loop header on every iteration."""
    target = getattr(stmt, "target", None)
    if target is None:
        return []
    names: List[str] = []
    for node in ast.walk(target):
        text = _target_text(node)
        if text:
            names.append(text)
    return names


def _merge(first: Dict[str, int],
           second: Dict[str, int]) -> Dict[str, int]:
    merged = dict(first)
    for key, value in second.items():
        merged[key] = max(merged.get(key, 0), value)
    return merged


def _target_text(node: ast.AST) -> str:
    """Dotted text of a simple Name/Attribute chain (else ``""``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


# -- pass entry point ------------------------------------------------------

def analyse(index: RepoIndex) -> List[Finding]:
    """Run the protocol checker over every indexed function."""
    findings: List[Finding] = []
    for module in index.modules.values():
        for info in module.functions:
            actor = is_actor(info)
            if actor:
                findings.extend(_check_discarded_events(info))
                findings.extend(_check_yields(info))
                findings.extend(_check_double_trigger(info))
            if actor or info.fast_path:
                findings.extend(_check_blocking(info, actor))
    return findings


def _blocks(func_node: ast.AST) -> Iterator[List[ast.stmt]]:
    """Every statement list in the function's own body."""
    stack: List[ast.AST] = [func_node]
    while stack:
        node = stack.pop()
        for field in ("body", "orelse", "finalbody"):
            body = getattr(node, field, None)
            if isinstance(body, list) and body \
                    and isinstance(body[0], ast.stmt):
                yield body
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef, ast.Lambda,
                                      ast.ClassDef)):
                stack.append(child)
