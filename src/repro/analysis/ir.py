"""Shared AST index: parse the repo once, analyse it many times.

Every whole-repo pass (taint, protocol, lock-order — and the per-file
lint when driven through :mod:`repro.analysis.check`) works from one
:class:`RepoIndex`: each ``.py`` file is parsed exactly once and its
functions, classes, import table, suppression comments and fast-path
markers are tabulated up front.  That is what keeps the analyzer's
whole-repo wall time linear in repo size rather than linear in
``passes × files``.

Terminology used by the passes:

* a **function** is any ``def`` — module-level, method or nested
  (nested functions matter: most simulation actors are closures);
* a **generator** is a function whose *own* body contains ``yield`` /
  ``yield from`` (nested defs do not count);
* a function is **fast-path marked** when a ``# repro: fast-path``
  comment sits on its ``def`` line, a decorator line, or the line
  directly above — the annotation :mod:`repro.analysis.protocol`
  enforces a no-blocking contract on.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, Iterable, Iterator, List, Optional, Set

from repro.analysis.lint import iter_python_files, node_span, suppressions

_FAST_PATH_RE = re.compile(r"#\s*repro:\s*fast-path")

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                ast.ClassDef)


def own_body(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's own statements, not those of nested scopes.

    Nested ``def`` / ``class`` / ``lambda`` nodes are yielded (so a
    pass can see that they exist) but never descended into — their
    bodies belong to the nested scope's own :class:`FunctionInfo`.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, _SCOPE_NODES):
            stack.extend(ast.iter_child_nodes(child))


class FunctionInfo:
    """One ``def`` anywhere in the repo, with its analysis context."""

    __slots__ = ("qualname", "name", "cls", "module", "node", "lineno",
                 "end_lineno", "span_start", "is_generator", "fast_path")

    def __init__(self, qualname: str, name: str, cls: Optional[str],
                 module: "ModuleInfo", node: ast.AST) -> None:
        self.qualname = qualname
        self.name = name
        self.cls = cls
        self.module = module
        self.node = node
        self.span_start, self.end_lineno = node_span(node)
        self.lineno = node.lineno
        self.is_generator = any(
            isinstance(child, (ast.Yield, ast.YieldFrom))
            for child in own_body(node))
        # The marker attaches via the contiguous comment block directly
        # above the def (or a trailing comment on the def line itself).
        lines = module.source.splitlines()
        probe = self.span_start - 1
        while 0 < probe <= len(lines) \
                and lines[probe - 1].lstrip().startswith("#"):
            probe -= 1
        self.fast_path = any(
            line in module.fast_path_lines
            for line in range(probe + 1, self.lineno + 1))

    @property
    def path(self) -> str:
        return self.module.path

    def __repr__(self) -> str:
        return "<FunctionInfo {}>".format(self.qualname)


class ModuleInfo:
    """One parsed source file plus its per-line annotations."""

    __slots__ = ("path", "name", "tree", "source", "functions",
                 "suppressions", "fast_path_lines", "imports", "error")

    def __init__(self, path: str, source: str,
                 tree: Optional[ast.Module],
                 error: Optional[SyntaxError] = None) -> None:
        self.path = path
        self.name = module_name(path)
        self.source = source
        self.tree = tree
        self.error = error
        self.functions: List[FunctionInfo] = []
        self.suppressions = suppressions(source)
        self.fast_path_lines: Set[int] = {
            lineno for lineno, line in enumerate(source.splitlines(), 1)
            if _FAST_PATH_RE.search(line)}
        #: local name -> dotted target (module or module.symbol).
        self.imports: Dict[str, str] = {}
        if tree is not None:
            self._collect_imports(tree)

    def _collect_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    self.imports[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    self.imports[alias.asname or alias.name] = \
                        node.module + "." + alias.name

    def __repr__(self) -> str:
        return "<ModuleInfo {}>".format(self.name)


def module_name(path: str) -> str:
    """Dotted module name for a file path (``src/`` prefix stripped)."""
    normalized = path.replace(os.sep, "/")
    if normalized.endswith(".py"):
        normalized = normalized[:-3]
    parts = [part for part in normalized.split("/") if part not in ("", ".")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for anchor in ("src", "site-packages"):
        if anchor in parts:
            parts = parts[parts.index(anchor) + 1:]
            break
    return ".".join(parts)


class RepoIndex:
    """All parsed modules plus function lookup tables."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: simple name -> every module-level or nested function so named.
        self.by_name: Dict[str, List[FunctionInfo]] = {}
        #: method name -> every class method so named.
        self.methods: Dict[str, List[FunctionInfo]] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, paths: Iterable[str]) -> "RepoIndex":
        index = cls()
        for path in iter_python_files(paths):
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            index.add_source(source, path)
        return index

    def add_source(self, source: str, path: str) -> ModuleInfo:
        """Parse and index one module (the unit tests' entry point)."""
        try:
            tree: Optional[ast.Module] = ast.parse(source, filename=path)
            error: Optional[SyntaxError] = None
        except SyntaxError as exc:
            tree, error = None, exc
        module = ModuleInfo(path, source, tree, error)
        self.modules[path] = module
        if tree is not None:
            self._index_functions(module, tree, module.name, None)
        return module

    def _index_functions(self, module: ModuleInfo, scope: ast.AST,
                         prefix: str, cls: Optional[str]) -> None:
        for child in ast.iter_child_nodes(scope):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = prefix + "." + child.name
                info = FunctionInfo(qualname, child.name, cls, module,
                                    child)
                module.functions.append(info)
                self.functions[qualname] = info
                table = self.methods if cls is not None else self.by_name
                table.setdefault(child.name, []).append(info)
                self._index_functions(module, child, qualname, None)
            elif isinstance(child, ast.ClassDef):
                self._index_functions(module, child,
                                      prefix + "." + child.name,
                                      child.name)
            elif not isinstance(child, ast.Lambda):
                self._index_functions(module, child, prefix, cls)

    # -- queries -----------------------------------------------------------

    def function_at(self, path: str, lineno: int
                    ) -> Optional[FunctionInfo]:
        """The innermost function whose span contains ``lineno``."""
        module = self.modules.get(path)
        if module is None:
            return None
        best: Optional[FunctionInfo] = None
        for info in module.functions:
            if info.span_start <= lineno <= info.end_lineno:
                if best is None or info.span_start >= best.span_start:
                    best = info
        return best

    def generators(self) -> Iterator[FunctionInfo]:
        for module in self.modules.values():
            for info in module.functions:
                if info.is_generator:
                    yield info

    def __len__(self) -> int:
        return len(self.modules)

    def __repr__(self) -> str:
        return "<RepoIndex {} modules, {} functions>".format(
            len(self.modules), len(self.functions))
