"""Named, seeded workloads for the sanitizer and replay checker.

Each workload is a function ``(seed) -> dict`` returning a fully
JSON-serialisable result: the simulation's observable outcome plus the
sanitizer's access trace when one is enabled.  The same functions feed
``python -m repro.analysis.races`` (conflict report per lock style) and
``python -m repro.analysis.replay`` (determinism check), so the
property being replayed is exactly the property being measured.

The lock-style workload mirrors experiment E3 (§4.2.1): writers
repeatedly edit a shared section — sometimes going idle while holding
the lock — while readers follow along, under each of the four lock
styles.  Unlike the benchmark, every edit goes through a
:class:`~repro.concurrency.store.SharedStore`, so the sanitizer sees
the actual reads and writes the locks are (or are not) ordering.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict

from repro.analysis.hb import get_sanitizer
from repro.concurrency.locks import (
    EXCLUSIVE,
    LockTable,
    NOTIFICATION,
    SHARED,
    STYLES,
)
from repro.concurrency.store import SharedStore
from repro.sim import Environment, RandomStreams, Tally, exponential

WRITERS = 3
READERS = 2
ROUNDS = 12
THINK_MEAN = 1.5
EDIT_TIME = 1.0
IDLE_PROBABILITY = 0.3
IDLE_TIME = 8.0
TICKLE_GRACE = 2.0


def lock_style_workload(style: str, seed: int = 31) -> Dict[str, Any]:
    """The E3 contended-editing workload under one lock style."""
    env = Environment()
    table = LockTable(env, style=style, tickle_grace=TICKLE_GRACE)
    store = SharedStore("doc", keep_history=True)
    store.create("section", "")
    rng = RandomStreams(seed).stream("locks-" + style)
    wait = Tally("wait")
    completed = [0]

    def writer(env, name):
        for round_no in range(ROUNDS):
            yield env.timeout(exponential(rng, THINK_MEAN))
            start = env.now
            grant = yield table.acquire("section", name, EXCLUSIVE)
            wait.record(env.now - start)
            yield env.timeout(EDIT_TIME)
            store.write("section", "{}:{}".format(name, round_no),
                        writer=name, at=env.now)
            grant.touch()
            if style == NOTIFICATION:
                table.notify_write("section", name)
            completed[0] += 1
            if rng.random() < IDLE_PROBABILITY:
                # Distraction: hold the lock while idle (the situation
                # tickle locks exist for).
                yield env.timeout(IDLE_TIME)
            if not grant.revoked:
                grant.release()

    def reader(env, name):
        for _ in range(ROUNDS):
            yield env.timeout(exponential(rng, THINK_MEAN))
            start = env.now
            grant = yield table.acquire("section", name, SHARED)
            wait.record(env.now - start)
            yield env.timeout(EDIT_TIME / 2)
            store.read("section", reader=name, at=env.now)
            if not grant.revoked:
                grant.release()

    for i in range(WRITERS):
        name = "writer-{}".format(i)
        env.process(writer(env, name), name=name)
    for i in range(READERS):
        name = "reader-{}".format(i)
        env.process(reader(env, name), name=name)
    env.run()

    sanitizer = get_sanitizer()
    return {
        "workload": "locks-" + style,
        "seed": seed,
        "style": style,
        "completed": completed[0],
        "wait": wait.summary(),
        "lock_counters": table.counters.as_dict(),
        "store": {"reads": store.reads, "writes": store.writes,
                  "version": store.item("section").version},
        "env": env.stats(),
        "accesses": sanitizer.trace(),
        "conflicts": sanitizer.conflict_counts(),
    }


def _register_lock_styles() -> Dict[str, Callable[..., Dict[str, Any]]]:
    registry: Dict[str, Callable[..., Dict[str, Any]]] = {}
    for style in STYLES:
        registry["locks-" + style] = functools.partial(
            lock_style_workload, style)
    return registry


def _register_obs_demos() -> Dict[str, Callable[..., Dict[str, Any]]]:
    # Imported here so the telemetry demos (which pull in the whole
    # net/node stack) only load when the registry is actually used.
    from repro.obs.demo import (
        slo_burn_workload,
        timeline_demo_workload,
        traced_rpc_workload,
    )
    return {"traced-rpc": traced_rpc_workload,
            "slo-burn": slo_burn_workload,
            "timeline-demo": timeline_demo_workload}


def _register_chaos() -> Dict[str, Callable[..., Dict[str, Any]]]:
    # Imported here (like the obs demos) to keep the groups/sessions/
    # qos stack off the import path of modules that only need the
    # lock workloads — and to avoid closing the transport → policies
    # import cycle (see repro.faults.__init__).
    from repro.faults.chaos import (
        flaky_links_workload,
        fuzz_probe_workload,
        partition_recovery_workload,
    )
    return {"partition-recovery": partition_recovery_workload,
            "flaky-links": flaky_links_workload,
            "fuzz-probe": fuzz_probe_workload}


def _register_fuzz_corpus() -> Dict[str, Callable[..., Dict[str, Any]]]:
    # Every shrunk reproducer checked into the default fuzz corpus
    # becomes a ``fuzz-reg-<id>`` workload: the base workload run under
    # the stored minimal schedule, its oracle verdict in the result.
    # Regression coverage therefore rides the existing replay/flight
    # determinism gates automatically.  corpus.py must not be imported
    # by this module's importers eagerly — it reaches back into the
    # fuzz engine, which imports this registry at call time.
    from repro.faults.corpus import corpus_workloads
    return corpus_workloads()


#: Registry of named workloads for the races / replay / profile CLIs.
WORKLOADS: Dict[str, Callable[..., Dict[str, Any]]] = \
    _register_lock_styles()
WORKLOADS.update(_register_obs_demos())
WORKLOADS.update(_register_chaos())
WORKLOADS.update(_register_fuzz_corpus())


def run_workload(name: str, seed: int = 31) -> Dict[str, Any]:
    """Run the named workload (see :data:`WORKLOADS`) with ``seed``."""
    try:
        workload = WORKLOADS[name]
    except KeyError:
        raise KeyError("unknown workload {!r}; known: {}".format(
            name, ", ".join(sorted(WORKLOADS))))
    return workload(seed=seed)
