"""Races report: conflicts each lock style leaves to the social protocol.

Runs the E3 contended-editing workload under every lock style with the
happens-before sanitizer enabled and tabulates what each style left
unordered.  This is the paper's Figure 2 argument in numbers: hard
locks order everything (walling users off), soft locks order nothing
while surfacing every conflict, tickle and notification locks sit in
between::

    PYTHONPATH=src python -m repro.analysis.races
    PYTHONPATH=src python -m repro.analysis.races --seed 7 --format json

Exit status is non-zero when the *hard* lock style reports unresolved
conflicts: hard locks serialise every access by construction, so any
happens-before residue there is a sanitizer or lock-protocol regression
rather than CSCW-interesting behaviour — CI treats it as a failure.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Sequence

from repro.analysis.hb import ConflictSanitizer, use_sanitizer
from repro.analysis.workloads import run_workload
from repro.concurrency.locks import STYLES
from repro.obs.metrics import MetricsRegistry, use_metrics


def conflict_sweep(seed: int = 31,
                   styles: Sequence[str] = STYLES
                   ) -> Dict[str, Dict[str, Any]]:
    """Run the lock-style workload per style with a fresh sanitizer."""
    results: Dict[str, Dict[str, Any]] = {}
    for style in styles:
        with use_metrics(MetricsRegistry()):
            with use_sanitizer(ConflictSanitizer()) as sanitizer:
                result = run_workload("locks-" + style, seed=seed)
        result["summary"] = sanitizer.summary()
        results[style] = result
    return results


def render(results: Dict[str, Dict[str, Any]], out=None) -> None:
    out = out if out is not None else sys.stdout
    headers = ["style", "accesses", "write-write", "read-write",
               "unresolved", "lock conflicts", "takeovers", "mean wait"]
    rows = []
    for style, result in results.items():
        conflicts = result["conflicts"]
        counters = result["lock_counters"]
        rows.append([style, len(result["accesses"]),
                     conflicts["write-write"], conflicts["read-write"],
                     conflicts["total"], counters.get("conflicts", 0),
                     counters.get("takeovers", 0),
                     "{:.3g}".format(result["wait"]["mean"])])
    widths = [len(h) for h in headers]
    for row in rows:
        widths = [max(w, len(str(cell))) for w, cell in zip(widths, row)]
    line = "  ".join("{:<{w}}".format(h, w=w)
                     for h, w in zip(headers, widths))
    out.write("conflicts left to the social protocol, by lock style\n")
    out.write("-" * len(line) + "\n")
    out.write(line + "\n")
    for row in rows:
        out.write("  ".join("{:<{w}}".format(str(cell), w=w)
                            for cell, w in zip(row, widths)) + "\n")
    out.write("\nunresolved = concurrent conflicting accesses no lock "
              "grant,\nfloor possession or causal delivery ordered "
              "(happens-before).\n")


def hard_conflicts(results: Dict[str, Dict[str, Any]]) -> int:
    """Unresolved conflicts under the hard style (should be zero)."""
    hard = results.get("hard")
    if hard is None:
        return 0
    return int(hard["conflicts"]["total"])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.races",
        description="Report unresolved concurrent conflicts per lock "
                    "style (E3 workload, sanitizer enabled).")
    parser.add_argument("--seed", type=int, default=31,
                        help="experiment seed (default 31)")
    parser.add_argument("--styles", nargs="+", default=list(STYLES),
                        choices=list(STYLES), help="styles to sweep")
    parser.add_argument("--format", choices=("text", "json"),
                        default=None, dest="fmt",
                        help="output format (default text)")
    parser.add_argument("--json", action="store_true",
                        help="alias for --format json")
    options = parser.parse_args(argv)
    fmt = options.fmt or ("json" if options.json else "text")
    results = conflict_sweep(seed=options.seed, styles=options.styles)
    leaked = hard_conflicts(results)
    if fmt == "json":
        document = dict(results)
        document["_meta"] = {"seed": options.seed,
                             "hard_conflicts": leaked,
                             "ok": leaked == 0}
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        render(results)
        if leaked:
            print("ERROR: hard locks left {} conflict(s) unresolved — "
                  "sanitizer or lock-protocol regression".format(leaked))
    return 1 if leaked else 0


if __name__ == "__main__":
    sys.exit(main())
