"""Determinism lint: AST rules that keep the simulator replayable.

Every rule flags a construct that can silently break bit-for-bit
replay of a simulation run::

    PYTHONPATH=src python -m repro.analysis.lint src/

========  ==============================================================
code      hazard
========  ==============================================================
RPR001    wall-clock read (``time.time()``, ``datetime.now()``, …)
RPR002    RNG constructed or used outside :mod:`repro.sim.rng`
RPR003    iteration over an unordered ``set`` without ``sorted(...)``
RPR004    ``id()``-based ordering, comparison or hashing
RPR005    module-level mutable state (``itertools.count``, dict/list
          literals bound to non-constant names)
RPR006    float ``==`` / ``!=`` on simulated time (``env.now``)
========  ==============================================================

Findings on a line are suppressed by a trailing (or immediately
preceding) comment ``# repro: allow-RPRxxx`` — several codes may be
listed, comma-separated, and prose may follow::

    self._rng = rng or random.Random(0)  # repro: allow-RPR002 (seeded)

Rules are pluggable: registering a new one is decorating a generator of
``(node, message)`` pairs with :func:`rule`.  The CLI exits non-zero iff
any unsuppressed finding remains, so it can gate CI.
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import re
import sys
from typing import (Any, Callable, Dict, Iterable, Iterator, List,
                    Optional, Set, Tuple)

RuleCheck = Callable[[ast.Module, str], Iterator[Tuple[ast.AST, str]]]

#: Files exempt from RPR002 (the blessed RNG factory itself).
RNG_HOME = "sim/rng.py"

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow-((?:RPR\d+)(?:\s*,\s*RPR\d+)*)")


def node_span(node: ast.AST) -> Tuple[int, int]:
    """(first, last) source line of ``node``, decorators included.

    Decorator lines count as part of a ``def``'s span so a suppression
    comment above the decorators still covers a finding anchored at the
    ``def`` line.
    """
    start = getattr(node, "lineno", 0)
    end = getattr(node, "end_lineno", None) or start
    for decorator in getattr(node, "decorator_list", ()):
        start = min(start, decorator.lineno)
    return start, end


class Finding:
    """One analyzer hit: a rule violated at a source location.

    ``line``/``col`` anchor the report; ``suppress_from``/``end_line``
    bound the source span an ``# repro: allow-...`` comment may sit on
    (multi-line statements, decorated defs).  ``severity`` is ``error``
    or ``warning`` (the SARIF level).  Interprocedural findings carry a
    ``chain`` — ordered ``{path, line, note}`` steps from sink back to
    source.
    """

    __slots__ = ("path", "line", "col", "code", "message", "hint",
                 "severity", "end_line", "suppress_from", "chain",
                 "function")

    def __init__(self, path: str, line: int, col: int, code: str,
                 message: str, hint: str, severity: str = "error",
                 end_line: Optional[int] = None,
                 suppress_from: Optional[int] = None,
                 chain: Optional[List[Dict[str, Any]]] = None,
                 function: Optional[str] = None) -> None:
        self.path = path
        self.line = line
        self.col = col
        self.code = code
        self.message = message
        self.hint = hint
        self.severity = severity
        self.end_line = end_line if end_line is not None else line
        self.suppress_from = suppress_from if suppress_from is not None \
            else line
        self.chain = chain
        self.function = function

    def render(self) -> str:
        text = "{}:{}:{}: {} {} [fix: {}]".format(
            self.path, self.line, self.col, self.code, self.message,
            self.hint)
        if self.chain:
            for step in self.chain:
                text += "\n    {}:{}: {}".format(
                    step["path"], step["line"], step["note"])
        return text

    def to_dict(self) -> Dict[str, Any]:
        data = {"path": self.path, "line": self.line, "col": self.col,
                "code": self.code, "message": self.message,
                "hint": self.hint, "severity": self.severity}
        if self.chain is not None:
            data["chain"] = self.chain
        if self.function is not None:
            data["function"] = self.function
        return data

    def suppressed_by(self, allowed: Dict[int, Set[str]]) -> bool:
        """Is this finding waived by an allow-comment in its span?"""
        for lineno in range(self.suppress_from, self.end_line + 1):
            if self.code in allowed.get(lineno, ()):
                return True
        return False

    def __repr__(self) -> str:
        return "<Finding {} {}:{}>".format(self.code, self.path, self.line)


class Rule:
    """A registered lint rule: code, summary, fix-hint and checker."""

    __slots__ = ("code", "summary", "hint", "check")

    def __init__(self, code: str, summary: str, hint: str,
                 check: RuleCheck) -> None:
        self.code = code
        self.summary = summary
        self.hint = hint
        self.check = check

    def run(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node, message in self.check(tree, path):
            start, end = node_span(node)
            yield Finding(path, getattr(node, "lineno", 0),
                          getattr(node, "col_offset", 0) + 1,
                          self.code, message, self.hint,
                          end_line=end, suppress_from=start)

    def __repr__(self) -> str:
        return "<Rule {} {}>".format(self.code, self.summary)


RULES: List[Rule] = []


def rule(code: str, summary: str, hint: str) -> Callable[[RuleCheck],
                                                         RuleCheck]:
    """Register a checker under ``code`` (the pluggable-rule hook)."""
    def decorate(check: RuleCheck) -> RuleCheck:
        RULES.append(Rule(code, summary, hint, check))
        return check
    return decorate


# -- helpers ---------------------------------------------------------------

def _posix(path: str) -> str:
    return path.replace(os.sep, "/")


def _call_name(node: ast.AST) -> str:
    """Dotted name of a call target (``""`` when not a simple chain)."""
    if isinstance(node, ast.Call):
        node = node.func
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_set_expr(node: ast.AST) -> bool:
    """Is the expression syntactically an unordered set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _contains_id_call(node: ast.AST) -> bool:
    return any(isinstance(child, ast.Call)
               and isinstance(child.func, ast.Name)
               and child.func.id == "id"
               for child in ast.walk(node))


def _rng_import_aliases(tree: ast.Module) -> Set[str]:
    """Names bound by ``from random import ...`` in this module."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            for alias in node.names:
                aliases.add(alias.asname or alias.name)
    return aliases


# -- rules -----------------------------------------------------------------

_WALL_CLOCK_TIME = {
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "clock",
    "localtime", "gmtime", "sleep",
}
_WALL_CLOCK_DATETIME = {"now", "utcnow", "today"}


@rule("RPR001", "wall-clock read in simulator code",
      "take timestamps from Environment.now; the sim clock is the only "
      "clock")
def check_wall_clock(tree: ast.Module, path: str
                     ) -> Iterator[Tuple[ast.AST, str]]:
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)):
            continue
        base = node.func.value
        attr = node.func.attr
        if isinstance(base, ast.Name) and base.id == "time" \
                and attr in _WALL_CLOCK_TIME:
            yield node, "time.{}() reads the wall clock".format(attr)
        elif attr in _WALL_CLOCK_DATETIME and (
                (isinstance(base, ast.Name)
                 and base.id in ("datetime", "date"))
                or (isinstance(base, ast.Attribute)
                    and base.attr in ("datetime", "date"))):
            base_name = base.id if isinstance(base, ast.Name) else base.attr
            yield node, "{}.{}() reads the wall clock".format(
                base_name, attr)


@rule("RPR002", "random number source outside sim.rng",
      "draw from a named RandomStreams stream so one experiment seed "
      "governs every subsystem")
def check_foreign_rng(tree: ast.Module, path: str
                      ) -> Iterator[Tuple[ast.AST, str]]:
    if _posix(path).endswith(RNG_HOME):
        return
    aliases = _rng_import_aliases(tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name.startswith("random."):
            yield node, "{}() bypasses sim.rng.RandomStreams".format(name)
        elif isinstance(node.func, ast.Name) and node.func.id in aliases:
            yield node, ("{}() (imported from random) bypasses "
                         "sim.rng.RandomStreams".format(node.func.id))


#: Builtins whose result does not depend on their argument's iteration
#: order — a set (or hash-ordered materialisation of one) consumed by
#: these is deterministic, so RPR003 must not fire inside them.
_ORDER_INSENSITIVE = {"sorted", "min", "max", "sum", "len", "any", "all",
                      "set", "frozenset"}


def _order_insensitive_nodes(tree: ast.Module) -> Set[int]:
    """ids of nodes nested inside an order-insensitive consumer call.

    Covers the ``sorted(set(...))`` / ``sorted(list(set(...)))`` /
    ``sorted(d.items())`` wrapper family: everything syntactically
    inside ``sorted(...)``'s arguments is exempt from RPR003 because
    the wrapper imposes (or ignores) order.
    """
    exempt: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in _ORDER_INSENSITIVE:
            for arg in node.args:
                for child in ast.walk(arg):
                    exempt.add(id(child))
    return exempt


@rule("RPR003", "iteration over an unordered set",
      "wrap the set in sorted(...) before iterating; set order depends "
      "on PYTHONHASHSEED")
def check_unordered_iteration(tree: ast.Module, path: str
                              ) -> Iterator[Tuple[ast.AST, str]]:
    exempt = _order_insensitive_nodes(tree)
    for node in ast.walk(tree):
        if isinstance(node, ast.For) and _is_set_expr(node.iter):
            yield node.iter, "for-loop iterates over a set"
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for generator in node.generators:
                if _is_set_expr(generator.iter) \
                        and id(generator.iter) not in exempt:  # repro: allow-RPR004 (identity membership, not ordering)
                    yield generator.iter, \
                        "comprehension iterates over a set"
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Name) and \
                node.func.id in ("list", "tuple", "enumerate") and \
                node.args and _is_set_expr(node.args[0]) and \
                id(node) not in exempt:  # repro: allow-RPR004 (identity membership, not ordering)
            yield node, "{}() materialises a set in hash order".format(
                node.func.id)


@rule("RPR004", "id()-based ordering or hashing",
      "order by a stable attribute (name, sequence number); id() varies "
      "between runs")
def check_id_ordering(tree: ast.Module, path: str
                      ) -> Iterator[Tuple[ast.AST, str]]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            name = _call_name(node)
            is_sorter = (isinstance(node.func, ast.Name)
                         and node.func.id in ("sorted", "min", "max")) \
                or (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "sort")
            if is_sorter:
                for keyword in node.keywords:
                    if keyword.arg != "key":
                        continue
                    value = keyword.value
                    if (isinstance(value, ast.Name) and value.id == "id") \
                            or _contains_id_call(value):
                        yield node, \
                            "{} ordered by id()".format(name or "sort")
            elif isinstance(node.func, ast.Name) \
                    and node.func.id == "hash" and node.args \
                    and _contains_id_call(node.args[0]):
                yield node, "hash(id(...)) varies between runs"
        elif isinstance(node, ast.Compare):
            operands = [node.left] + list(node.comparators)
            if any(isinstance(op, ast.Call)
                   and isinstance(op.func, ast.Name)
                   and op.func.id == "id" for op in operands):
                yield node, "comparison of id() values"


_MUTABLE_FACTORIES = {
    "dict", "list", "set", "collections.defaultdict", "defaultdict",
    "collections.deque", "deque", "collections.OrderedDict",
    "OrderedDict", "collections.Counter",
}
_COUNTER_FACTORIES = {"itertools.count", "count", "iter"}


@rule("RPR005", "module-level mutable state",
      "move the state onto the owning object (a per-instance counter) "
      "so experiments in one process stay independent")
def check_module_state(tree: ast.Module, path: str
                       ) -> Iterator[Tuple[ast.AST, str]]:
    for statement in tree.body:
        if isinstance(statement, ast.Assign):
            targets = statement.targets
            value = statement.value
        elif isinstance(statement, ast.AnnAssign):
            targets = [statement.target]
            value = statement.value
        else:
            continue
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if not names or value is None:
            continue
        if all(n.startswith("__") and n.endswith("__") for n in names):
            continue
        name = _call_name(value)
        if name in _COUNTER_FACTORIES:
            yield statement, ("module-level {}() leaks state across "
                              "experiments in one process".format(name))
            continue
        if all(n == n.upper() for n in names):
            continue  # UPPER_CASE: constant by convention
        if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)) \
                or name in _MUTABLE_FACTORIES:
            yield statement, ("module-level mutable {} shared by every "
                              "experiment in the process".format(
                                  "literal" if name == "" else name))


@rule("RPR006", "float equality on simulated time",
      "compare simulated times with <=/>= bounds or an explicit "
      "tolerance")
def check_time_equality(tree: ast.Module, path: str
                        ) -> Iterator[Tuple[ast.AST, str]]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        operands = [node.left] + list(node.comparators)
        for operand in operands:
            if isinstance(operand, ast.Attribute) \
                    and operand.attr == "now":
                yield node, "== / != on the float simulation clock"
                break


# -- driving ---------------------------------------------------------------

def suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> codes allowed on that line.

    A suppression comment covers its own line and the line below, so it
    can sit at the end of the flagged statement or on its own just
    above.
    """
    allowed: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        codes = {code.strip() for code in match.group(1).split(",")}
        allowed.setdefault(lineno, set()).update(codes)
        allowed.setdefault(lineno + 1, set()).update(codes)
    return allowed


def lint_tree(tree: ast.Module, path: str) -> List[Finding]:
    """Run every lint rule over a pre-parsed module (no suppression).

    This is the entry point :mod:`repro.analysis.check` drives so the
    whole-repo analyzer parses each file exactly once; suppression and
    sorting are the caller's job there.
    """
    findings: List[Finding] = []
    for lint_rule in RULES:
        findings.extend(lint_rule.run(tree, path))
    return findings


def syntax_error_finding(path: str, error: SyntaxError) -> Finding:
    """The RPR000 finding for an unparseable file."""
    return Finding(path, error.lineno or 0, error.offset or 0,
                   "RPR000", "file does not parse: {}".format(error.msg),
                   "fix the syntax error")


def lint_source(source: str, path: str,
                respect_suppressions: bool = True) -> List[Finding]:
    """Lint one module's source text."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [syntax_error_finding(path, error)]
    allowed = suppressions(source) if respect_suppressions else {}
    findings = [finding for finding in lint_tree(tree, path)
                if not finding.suppressed_by(allowed)]
    findings.sort(key=lambda f: (f.line, f.col, f.code))
    return findings


def lint_file(path: str, respect_suppressions: bool = True
              ) -> List[Finding]:
    """Lint one file on disk."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path, respect_suppressions)


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames
                                 if not d.startswith(".")
                                 and d != "__pycache__")
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def lint_paths(paths: Iterable[str], respect_suppressions: bool = True
               ) -> List[Finding]:
    """Lint every python file under ``paths``."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, respect_suppressions))
    return findings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Determinism lint for repro simulator code.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format")
    parser.add_argument("--no-suppress", action="store_true",
                        help="ignore '# repro: allow-...' comments")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    options = parser.parse_args(argv)
    if options.list_rules:
        for lint_rule in RULES:
            print("{}  {}\n        fix: {}".format(
                lint_rule.code, lint_rule.summary, lint_rule.hint))
        return 0
    findings = lint_paths(options.paths,
                          respect_suppressions=not options.no_suppress)
    if options.format == "json":
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding.render())
        files = len({f.path for f in findings})
        print("{} finding(s) in {} file(s)".format(len(findings), files))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
