"""Static analysis and runtime sanitizers for the repro simulator.

Every experimental claim in this reproduction rests on the simulator
being bit-for-bit deterministic, and on conflicts between cooperating
users being *surfaced* rather than silently serialised (the paper's
Figure 2 argument: atomic transactions wall users off; CSCW needs the
conflict visible so a social protocol can resolve it).  This package
provides the tooling that turns both properties into checkable ones:

* **Determinism lint** (:mod:`repro.analysis.lint`) — an AST pass with
  pluggable rules (``RPR001``…) flagging nondeterminism hazards: wall
  clock reads, RNGs constructed outside :mod:`repro.sim.rng`, unordered
  set iteration, ``id()``-based ordering, module-level mutable state and
  float equality on simulated time.  Run it with::

      PYTHONPATH=src python -m repro.analysis.lint src/

* **Happens-before conflict sanitizer** (:mod:`repro.analysis.hb`) — a
  vector-clock tracker fed by lock, floor, RPC and shared-store
  operations.  It reports concurrent conflicting accesses that no lock
  grant, floor possession or causal delivery ordered — the residue left
  to the social protocol.  Summarise a lock-style sweep with::

      PYTHONPATH=src python -m repro.analysis.races

* **Replay checker** (:mod:`repro.analysis.replay`) — runs a workload
  twice with the same seed and diffs event-trace digests::

      PYTHONPATH=src python -m repro.analysis.replay locks-soft

* **Whole-repo analyzer** (:mod:`repro.analysis.check`) — multi-pass
  static analysis over one shared AST index and call graph
  (:mod:`repro.analysis.ir`, :mod:`repro.analysis.callgraph`):
  interprocedural nondeterminism taint (:mod:`repro.analysis.taint`,
  ``RPR1xx``), the sim-protocol checker
  (:mod:`repro.analysis.protocol`, ``RPR2xx``) and the lock-order
  deadlock detector (:mod:`repro.analysis.lockorder`, ``RPR3xx``),
  with text/JSON/SARIF output and a fingerprint baseline::

      PYTHONPATH=src python -m repro.analysis.check src/

The workload/replay/races helpers are resolved lazily (PEP 562): this
package is imported by low-level instrumentation sites (locks, the
shared store, transports), so its eager imports must stay leaf-only.
"""

from repro.analysis.hb import (
    Access,
    Conflict,
    ConflictSanitizer,
    HB_HEADER,
    NOOP_SANITIZER,
    NoopSanitizer,
    READ,
    WRITE,
    disable_sanitizer,
    enable_sanitizer,
    extract_clock,
    get_sanitizer,
    inject_clock,
    set_sanitizer,
    use_sanitizer,
)
#: Lazily resolved attribute -> home module (dodges the import cycle
#: through repro.concurrency, which the eager workload imports close;
#: lint stays lazy so ``python -m repro.analysis.lint`` does not warn
#: about the module pre-existing in sys.modules).
_LAZY = {
    "Finding": "repro.analysis.lint",
    "Rule": "repro.analysis.lint",
    "RULES": "repro.analysis.lint",
    "lint_file": "repro.analysis.lint",
    "lint_paths": "repro.analysis.lint",
    "WORKLOADS": "repro.analysis.workloads",
    "run_workload": "repro.analysis.workloads",
    "conflict_sweep": "repro.analysis.races",
    "replay": "repro.analysis.replay",
    "run_isolated": "repro.analysis.replay",
    "trace_digest": "repro.analysis.replay",
    "RepoIndex": "repro.analysis.ir",
    "CallGraph": "repro.analysis.callgraph",
    "run_passes": "repro.analysis.check",
    "rules_meta": "repro.analysis.check",
    "to_sarif": "repro.analysis.sarif",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            "module 'repro.analysis' has no attribute {!r}".format(name))
    import importlib
    return getattr(importlib.import_module(module_name), name)


__all__ = [
    "Access",
    "CallGraph",
    "Conflict",
    "ConflictSanitizer",
    "Finding",
    "HB_HEADER",
    "NOOP_SANITIZER",
    "NoopSanitizer",
    "READ",
    "RULES",
    "RepoIndex",
    "Rule",
    "WORKLOADS",
    "WRITE",
    "conflict_sweep",
    "disable_sanitizer",
    "enable_sanitizer",
    "extract_clock",
    "get_sanitizer",
    "inject_clock",
    "lint_file",
    "lint_paths",
    "replay",
    "rules_meta",
    "run_isolated",
    "run_passes",
    "run_workload",
    "set_sanitizer",
    "to_sarif",
    "trace_digest",
    "use_sanitizer",
]
