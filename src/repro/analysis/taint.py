"""Interprocedural nondeterminism taint: helpers that launder hazards.

The per-statement lint (RPR001-003) sees a wall-clock read, foreign RNG
or hash-ordered materialisation only at the line it happens.  A helper
that *returns* such a value hands the nondeterminism to every caller —
and the call site itself looks innocent::

    def stamp():                 # helper in a far-away module
        return time.time()       # RPR001 fires here...

    def log_op(self, op):
        self.entries.append((stamp(), op))   # ...but the flow lands here

This pass propagates taint through function returns over the shared
call graph and reports each **sink** — a call to a taint-returning
function from a function that is not itself one — with the full
source→sink call chain.

========  =============================================================
code      hazard reaching the sink
========  =============================================================
RPR101    wall-clock read laundered through helper return(s)
RPR102    foreign RNG draw laundered through helper return(s)
RPR103    hash-ordered set materialisation laundered through returns
========  =============================================================

Scope notes: a source that carries a justified ``# repro: allow-RPR00x``
suppression does not taint (the waiver covers its flow too), the
blessed RNG home :data:`repro.analysis.lint.RNG_HOME` never taints, and
call sites that discard the result (bare expression statements) are not
sinks.  Propagation is return-value only — by-reference parameter
mutation is out of scope — so every report comes with a concrete chain.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph, CallSite, call_name
from repro.analysis.ir import FunctionInfo, RepoIndex, own_body
from repro.analysis.lint import (
    Finding,
    RNG_HOME,
    _WALL_CLOCK_DATETIME,
    _WALL_CLOCK_TIME,
    _is_set_expr,
    _posix,
    _rng_import_aliases,
    node_span,
)

WALL_CLOCK = "wall-clock"
FOREIGN_RNG = "foreign-rng"
HASH_ORDER = "hash-order"

#: kind -> (code, message fragment, hint)
KINDS: Dict[str, Tuple[str, str, str]] = {
    WALL_CLOCK: (
        "RPR101", "a wall-clock read",
        "take timestamps from Environment.now and pass them in; the sim "
        "clock is the only clock"),
    FOREIGN_RNG: (
        "RPR102", "a foreign RNG draw",
        "draw from a named RandomStreams stream and pass the value (or "
        "the stream) in"),
    HASH_ORDER: (
        "RPR103", "a hash-ordered set materialisation",
        "sort before returning; hash order varies with PYTHONHASHSEED"),
}

#: Lint code whose line-suppression also waives the taint source.
_SOURCE_WAIVER = {WALL_CLOCK: "RPR001", FOREIGN_RNG: "RPR002",
                  HASH_ORDER: "RPR003"}


class Witness:
    """Why a function's return value is tainted.

    Either a direct ``source`` expression (``callee is None``) or a
    call to an already-tainted ``callee`` whose value flows to the
    return.
    """

    __slots__ = ("kind", "node", "callee", "note")

    def __init__(self, kind: str, node: ast.AST,
                 callee: Optional[FunctionInfo], note: str) -> None:
        self.kind = kind
        self.node = node
        self.callee = callee
        self.note = note


class _Summary:
    """Local dataflow result for one function."""

    __slots__ = ("direct", "return_calls")

    def __init__(self, direct: Optional[Witness],
                 return_calls: List[Tuple[ast.Call, FunctionInfo]]) -> None:
        #: Direct source reaching a return, if any.
        self.direct = direct
        #: Resolved calls whose result flows into a return.
        self.return_calls = return_calls


def _source_kind(node: ast.AST, rng_aliases: Set[str],
                 rng_home: bool) -> Optional[Tuple[str, str]]:
    """(kind, description) when ``node`` is a nondeterminism source."""
    if isinstance(node, ast.Call):
        name = call_name(node)
        if isinstance(node.func, ast.Attribute):
            base, attr = node.func.value, node.func.attr
            if isinstance(base, ast.Name) and base.id == "time" \
                    and attr in _WALL_CLOCK_TIME:
                return WALL_CLOCK, "time.{}()".format(attr)
            if attr in _WALL_CLOCK_DATETIME and (
                    (isinstance(base, ast.Name)
                     and base.id in ("datetime", "date"))
                    or (isinstance(base, ast.Attribute)
                        and base.attr in ("datetime", "date"))):
                return WALL_CLOCK, "{}()".format(name or attr)
        if not rng_home:
            if name.startswith("random."):
                return FOREIGN_RNG, "{}()".format(name)
            if isinstance(node.func, ast.Name) \
                    and node.func.id in rng_aliases:
                return FOREIGN_RNG, "{}() (imported from random)".format(
                    node.func.id)
        if isinstance(node.func, ast.Name) \
                and node.func.id in ("list", "tuple") \
                and node.args and _is_set_expr(node.args[0]):
            return HASH_ORDER, "{}(set(...))".format(node.func.id)
    return None


class TaintAnalysis:
    """Whole-repo return-taint fixpoint plus sink reporting."""

    def __init__(self, index: RepoIndex, graph: CallGraph) -> None:
        self.index = index
        self.graph = graph
        #: qualname -> Witness for every taint-returning function.
        self.tainted: Dict[str, Witness] = {}
        self._summaries: Dict[str, _Summary] = {}
        self._fixpoint()

    # -- local pass --------------------------------------------------------

    def _summarise(self, info: FunctionInfo) -> _Summary:
        cached = self._summaries.get(info.qualname)
        if cached is not None:
            return cached
        rng_aliases = _rng_import_aliases(info.module.tree) \
            if info.module.tree is not None else set()
        rng_home = _posix(info.path).endswith(RNG_HOME)
        suppressed = info.module.suppressions
        sites = {id(site.node): site
                 for site in self.graph.calls_from.get(info.qualname, ())
                 if site.callee is not None}

        tainted_names: Dict[str, Witness] = {}
        direct: Optional[Witness] = None
        return_calls: List[Tuple[ast.Call, FunctionInfo]] = []

        def expr_witness(expr: ast.AST) -> Optional[Witness]:
            """Direct-source or tainted-name witness inside ``expr``."""
            for node in ast.walk(expr):
                found = _source_kind(node, rng_aliases, rng_home)
                if found is not None:
                    kind, description = found
                    waiver = _SOURCE_WAIVER[kind]
                    line = getattr(node, "lineno", 0)
                    if waiver in suppressed.get(line, ()):
                        continue
                    return Witness(kind, node, None,
                                   "source: " + description)
                if isinstance(node, ast.Name) \
                        and node.id in tainted_names:
                    return tainted_names[node.id]
            return None

        def expr_calls(expr: ast.AST) -> List[Tuple[ast.Call,
                                                    FunctionInfo]]:
            """Resolved call sites appearing inside ``expr``."""
            found = []
            for node in ast.walk(expr):
                site = sites.get(id(node))
                if site is not None:
                    found.append((node, site.callee))
            return found

        for stmt in _statements(info.node):
            targets: List[str] = []
            value: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign):
                targets = [t.id for t in stmt.targets
                           if isinstance(t, ast.Name)]
                value = stmt.value
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(stmt.target, ast.Name):
                    targets = [stmt.target.id]
                value = stmt.value
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                witness = expr_witness(stmt.value)
                if witness is not None and direct is None:
                    direct = witness
                return_calls.extend(expr_calls(stmt.value))
                continue
            else:
                continue
            if value is None:
                continue
            witness = expr_witness(value)
            calls = expr_calls(value)
            tainted_call = next(
                ((node, callee) for node, callee in calls
                 if callee.qualname in self.tainted), None)
            for name in targets:
                if witness is not None:
                    tainted_names[name] = witness
                elif tainted_call is not None:
                    # Taint pends on the callee; re-checked each round.
                    node, callee = tainted_call
                    tainted_names[name] = Witness(
                        self.tainted[callee.qualname].kind, node,
                        callee, "via " + callee.name + "()")
                else:
                    tainted_names.pop(name, None)

        return _Summary(direct, return_calls)

    # -- fixpoint ----------------------------------------------------------

    def _fixpoint(self) -> None:
        functions = [info for module in self.index.modules.values()
                     for info in module.functions]
        for _ in range(32):
            changed = False
            self._summaries.clear()
            for info in functions:
                if info.qualname in self.tainted:
                    continue
                summary = self._summarise(info)
                self._summaries[info.qualname] = summary
                witness = summary.direct
                if witness is None:
                    for node, callee in summary.return_calls:
                        root = self.tainted.get(callee.qualname)
                        if root is not None:
                            witness = Witness(root.kind, node, callee,
                                              "via " + callee.name + "()")
                            break
                if witness is not None:
                    self.tainted[info.qualname] = witness
                    changed = True
            if not changed:
                break

    # -- reporting ---------------------------------------------------------

    def chain(self, qualname: str) -> List[Dict[str, object]]:
        """Witness steps from ``qualname`` down to the root source."""
        steps: List[Dict[str, object]] = []
        seen: Set[str] = set()
        current: Optional[str] = qualname
        while current is not None and current not in seen:
            seen.add(current)
            witness = self.tainted.get(current)
            info = self.index.functions.get(current)
            if witness is None or info is None:
                break
            if witness.callee is None:
                steps.append({
                    "path": info.path,
                    "line": getattr(witness.node, "lineno", info.lineno),
                    "note": "{} in {}()".format(witness.note, info.name),
                })
                return steps
            steps.append({
                "path": info.path,
                "line": getattr(witness.node, "lineno", info.lineno),
                "note": "{}() returns a value from {}()".format(
                    info.name, witness.callee.name),
            })
            current = witness.callee.qualname
        return steps

    def findings(self) -> List[Finding]:
        results: List[Finding] = []
        for module in self.index.modules.values():
            for info in module.functions:
                if info.qualname in self.tainted:
                    continue  # middle helper; its own callers report
                discarded = _discarded_calls(info.node)
                for site in self.graph.calls_from.get(info.qualname, ()):
                    if site.callee is None \
                            or site.callee.qualname not in self.tainted \
                            or id(site.node) in discarded:  # repro: allow-RPR004 (identity membership)
                        continue
                    root = self._root(site.callee.qualname)
                    code, fragment, hint = KINDS[root.kind]
                    chain = [{
                        "path": info.path,
                        "line": site.line,
                        "note": "sink: {}() uses the value of {}()".format(
                            info.name, site.callee.name),
                    }] + self.chain(site.callee.qualname)
                    start, end = node_span(site.node)
                    results.append(Finding(
                        info.path, site.line,
                        site.node.col_offset + 1, code,
                        "{}() returns {} ({} call-chain step{})".format(
                            site.callee.name, fragment, len(chain),
                            "" if len(chain) == 1 else "s"),
                        hint, end_line=end, suppress_from=start,
                        chain=chain, function=info.qualname))
        return results

    def _root(self, qualname: str) -> Witness:
        witness = self.tainted[qualname]
        seen = {qualname}
        while witness.callee is not None \
                and witness.callee.qualname not in seen:
            seen.add(witness.callee.qualname)
            nxt = self.tainted.get(witness.callee.qualname)
            if nxt is None:
                break
            witness = nxt
        return witness


def _statements(func_node: ast.AST) -> Iterable[ast.stmt]:
    """The function's own statements in source order (no nested defs)."""
    return [node for node in _ordered_own_body(func_node)
            if isinstance(node, ast.stmt)]


def _ordered_own_body(node: ast.AST) -> Iterable[ast.AST]:
    ordered: List[ast.AST] = []
    for child in ast.iter_child_nodes(node):
        ordered.append(child)
        if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda, ast.ClassDef)):
            ordered.extend(_ordered_own_body(child))
    return ordered


def _discarded_calls(func_node: ast.AST) -> Set[int]:
    """ids of Call nodes whose value a bare expression statement drops."""
    return {id(stmt.value) for stmt in own_body(func_node)
            if isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)}


def analyse(index: RepoIndex, graph: CallGraph) -> List[Finding]:
    """Run the taint pass and return its findings."""
    return TaintAnalysis(index, graph).findings()
