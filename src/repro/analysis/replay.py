"""Replay checker: "the sim is deterministic" as a testable property.

Runs a named workload twice with the same seed — each run under a fresh
metrics registry and a fresh conflict sanitizer — and compares SHA-256
digests of the full result: domain outcome, event-loop counters, the
sanitizer's ordered access trace and the conflict counts.  Any hidden
wall-clock read, foreign RNG or hash-order dependence shows up as a
digest mismatch::

    PYTHONPATH=src python -m repro.analysis.replay locks-soft
    PYTHONPATH=src python -m repro.analysis.replay --list

Exit status is 0 when the digests match, 1 when they differ.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from typing import Any, Dict, Tuple

from repro.analysis.hb import ConflictSanitizer, use_sanitizer
from repro.analysis.workloads import WORKLOADS, run_workload
from repro.obs.metrics import MetricsRegistry, use_metrics


def trace_digest(result: Any) -> str:
    """A canonical SHA-256 over a JSON-serialisable run result."""
    canonical = json.dumps(result, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def run_isolated(name: str, seed: int = 31) -> Dict[str, Any]:
    """One workload run under a fresh sanitizer and metrics registry."""
    with use_metrics(MetricsRegistry()):
        with use_sanitizer(ConflictSanitizer()):
            return run_workload(name, seed=seed)


def replay(name: str, seed: int = 31) -> Tuple[str, str, bool]:
    """Run ``name`` twice with ``seed``; returns (digest1, digest2, ok)."""
    first = trace_digest(run_isolated(name, seed))
    second = trace_digest(run_isolated(name, seed))
    return first, second, first == second


def _diff(name: str, seed: int, out) -> None:
    """Print the keys whose values differ between two runs."""
    first = run_isolated(name, seed)
    second = run_isolated(name, seed)
    for key in sorted(set(first) | set(second)):
        a, b = first.get(key), second.get(key)
        if a != b:
            out.write("  {}: {!r} != {!r}\n".format(key, a, b))


def _localize(name: str, seed: int, out) -> None:
    """Name the first divergent flight epoch and point at the localizer.

    Two more runs under the flight recorder (imported lazily — the
    happy path never touches it) compare chained per-epoch digests of
    kernel decisions; the divergence CLI can then re-journal just that
    epoch and print the first mismatched record with causal context.
    """
    from repro.obs.divergence import compare_digests

    report = compare_digests(name, seed)
    if report["diverged"]:
        out.write("first divergent flight epoch: {} (of {} / {})\n"
                  .format(report["epoch"], *report["epochs"]))
        out.write("localize it: PYTHONPATH=src python -m "
                  "repro.obs.divergence {} --seed {}\n".format(name, seed))
    else:
        out.write("flight digests agree ({} epoch(s)): the divergence "
                  "is outside the journalled channels (dispatch/rng/"
                  "net/locks/actors)\n".format(report["epochs"][0]))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.replay",
        description="Run a workload twice with one seed and diff the "
                    "event-trace digests.")
    parser.add_argument("workload", nargs="?",
                        help="workload name (see --list)")
    parser.add_argument("--seed", type=int, default=31,
                        help="experiment seed (default 31)")
    parser.add_argument("--list", action="store_true",
                        help="list known workloads and exit")
    options = parser.parse_args(argv)
    if options.list:
        for name in sorted(WORKLOADS):
            print(name)
        return 0
    if options.workload is None:
        parser.error("a workload name is required (see --list)")
    try:
        first, second, ok = replay(options.workload, seed=options.seed)
    except KeyError as error:
        print("error: {}".format(error.args[0]), file=sys.stderr)
        return 2
    print("run 1: {}".format(first))
    print("run 2: {}".format(second))
    if ok:
        print("REPLAY OK: {} (seed {}) is deterministic".format(
            options.workload, options.seed))
        return 0
    print("REPLAY MISMATCH: {} (seed {}) diverged between runs".format(
        options.workload, options.seed))
    _diff(options.workload, options.seed, sys.stdout)
    _localize(options.workload, options.seed, sys.stdout)
    return 1


if __name__ == "__main__":
    sys.exit(main())
