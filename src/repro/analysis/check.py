"""One front door for the whole-repo analyzer: lint + taint + protocol
+ lock-order over a shared AST index::

    PYTHONPATH=src python -m repro.analysis.check src/
    PYTHONPATH=src python -m repro.analysis.check src/ --format sarif --out analysis.sarif
    PYTHONPATH=src python -m repro.analysis.check src/ --baseline analysis-baseline.json
    PYTHONPATH=src python -m repro.analysis.check --list-passes

The repo is parsed exactly once (:class:`~repro.analysis.ir.RepoIndex`)
and every pass runs over that index, so whole-repo cost stays linear in
repo size.  All passes share the ``# repro: allow-RPRxxx`` suppression
syntax — covering the *whole span* of multi-line statements and
decorated defs — plus a fingerprint baseline file, and the CLI exits
non-zero iff any non-baselined finding remains, so it gates CI.  Output
formats: ``text`` (default), ``json``, and ``sarif`` (2.1.0, the shape
GitHub code scanning annotates PRs from).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis import baseline as baseline_mod
from repro.analysis import lockorder, protocol, taint
from repro.analysis.callgraph import CallGraph
from repro.analysis.ir import RepoIndex
from repro.analysis.lint import RULES, Finding
from repro.analysis.lint import syntax_error_finding
from repro.analysis.sarif import to_sarif

PASS_NAMES = ("lint", "taint", "protocol", "lockorder")


def _clock() -> float:
    """Wall time for pass timings (tooling, not simulation)."""
    return time.perf_counter()  # repro: allow-RPR001 (analyzer timing)


def rules_meta() -> Dict[str, Tuple[str, str, str]]:
    """``code -> (summary, hint, severity)`` across every pass."""
    meta: Dict[str, Tuple[str, str, str]] = {
        "RPR000": ("file does not parse", "fix the syntax error",
                   "error"),
    }
    for rule in RULES:
        meta[rule.code] = (rule.summary, rule.hint, "error")
    for kind, (code, fragment, hint) in sorted(taint.KINDS.items()):
        meta[code] = ("interprocedural taint: {} laundered through "
                      "helper returns".format(fragment), hint, "error")
    meta.update(protocol.RULE_META)
    meta.update(lockorder.RULE_META)
    return meta


def run_passes(paths: Iterable[str],
               passes: Optional[Iterable[str]] = None,
               respect_suppressions: bool = True,
               index: Optional[RepoIndex] = None
               ) -> Tuple[List[Finding], Dict[str, float], RepoIndex]:
    """Run the selected passes; returns (findings, timings, index).

    Findings are sorted and suppression-filtered; ``timings`` carries
    per-pass wall seconds plus ``index``/``callgraph`` build costs.
    """
    selected = list(passes) if passes is not None else list(PASS_NAMES)
    for name in selected:
        if name not in PASS_NAMES:
            raise ValueError("unknown pass: " + name)
    timings: Dict[str, float] = {}
    started = _clock()
    if index is None:
        index = RepoIndex.build(paths)
    timings["index"] = _clock() - started

    graph: Optional[CallGraph] = None
    if "taint" in selected or "lockorder" in selected:
        started = _clock()
        graph = CallGraph(index)
        timings["callgraph"] = _clock() - started

    findings: List[Finding] = []
    if "lint" in selected:
        started = _clock()
        from repro.analysis.lint import lint_tree
        for module in index.modules.values():
            if module.tree is None:
                findings.append(
                    syntax_error_finding(module.path, module.error))
            else:
                findings.extend(lint_tree(module.tree, module.path))
        timings["lint"] = _clock() - started
    if "taint" in selected:
        started = _clock()
        findings.extend(taint.analyse(index, graph))
        timings["taint"] = _clock() - started
    if "protocol" in selected:
        started = _clock()
        findings.extend(protocol.analyse(index))
        timings["protocol"] = _clock() - started
    if "lockorder" in selected:
        started = _clock()
        findings.extend(lockorder.analyse(index, graph))
        timings["lockorder"] = _clock() - started

    if respect_suppressions:
        findings = [
            finding for finding in findings
            if not (finding.path in index.modules
                    and finding.suppressed_by(
                        index.modules[finding.path].suppressions))]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings, timings, index


def _render_text(findings: List[Finding], baselined: int,
                 timings: Dict[str, float], show_timings: bool,
                 out) -> None:
    for finding in findings:
        out.write(finding.render() + "\n")
    files = len({finding.path for finding in findings})
    summary = "{} finding(s) in {} file(s)".format(len(findings), files)
    if baselined:
        summary += " ({} baselined)".format(baselined)
    out.write(summary + "\n")
    if show_timings:
        total = sum(timings.values())
        table = ", ".join("{} {:.3f}s".format(name, timings[name])
                          for name in sorted(timings))
        out.write("pass timings: {} (total {:.3f}s)\n".format(
            table, total))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.check",
        description="Whole-repo distributed-correctness analyzer "
                    "(lint + taint + protocol + lock-order).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyse")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="output format")
    parser.add_argument("--out", help="write output to this file "
                                      "instead of stdout")
    parser.add_argument("--passes",
                        default=",".join(PASS_NAMES),
                        help="comma-separated subset of: "
                             + ", ".join(PASS_NAMES))
    parser.add_argument("--baseline", default="analysis-baseline.json",
                        help="baseline file of waived fingerprints "
                             "(silently skipped when absent)")
    parser.add_argument("--write-baseline", metavar="PATH",
                        help="record current findings as the baseline "
                             "and exit 0")
    parser.add_argument("--no-suppress", action="store_true",
                        help="ignore '# repro: allow-...' comments")
    parser.add_argument("--timings", action="store_true",
                        help="print per-pass wall time")
    parser.add_argument("--list-passes", action="store_true",
                        help="print the pass/rule table and exit")
    options = parser.parse_args(argv)

    meta = rules_meta()
    if options.list_passes:
        groups = (("lint", "RPR0"), ("taint", "RPR1"),
                  ("protocol", "RPR2"), ("lockorder", "RPR3"))
        for name, prefix in groups:
            print(name)
            for code in sorted(meta):
                if code.startswith(prefix):
                    summary, hint, severity = meta[code]
                    print("  {} [{}] {}".format(code, severity, summary))
        return 0

    selected = [name for name in options.passes.split(",") if name]
    try:
        findings, timings, index = run_passes(
            options.paths, selected,
            respect_suppressions=not options.no_suppress)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2

    sources = {path: module.source
               for path, module in index.modules.items()}
    prints = baseline_mod.fingerprints(findings, sources)

    if options.write_baseline:
        count = baseline_mod.write(options.write_baseline, findings,
                                   prints)
        print("baseline: {} finding(s) recorded to {}".format(
            count, options.write_baseline))
        return 0

    known = baseline_mod.load(options.baseline)
    kept = baseline_mod.filter_findings(findings, prints, known)
    baselined = len(findings) - len(kept)

    out = open(options.out, "w", encoding="utf-8") if options.out \
        else sys.stdout
    try:
        if options.format == "sarif":
            document = to_sarif(kept, meta, fingerprints=prints,
                                timings=timings)
            json.dump(document, out, indent=2, sort_keys=True)
            out.write("\n")
        elif options.format == "json":
            document = {
                "findings": [finding.to_dict() for finding in kept],
                "baselined": baselined,
                "timings": {name: round(value, 4)
                            for name, value in sorted(timings.items())},
            }
            json.dump(document, out, indent=2, sort_keys=True)
            out.write("\n")
        else:
            _render_text(kept, baselined, timings, options.timings, out)
    finally:
        if options.out:
            out.close()
    return 1 if kept else 0


if __name__ == "__main__":
    sys.exit(main())
