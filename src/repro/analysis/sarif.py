"""SARIF 2.1.0 output for the whole-repo analyzer.

Emits the structural subset GitHub code scanning consumes: one run, a
tool driver with a rule table, and one result per finding with a
physical location, a stable partial fingerprint (shared with the
baseline file) and the source→sink chain as ``relatedLocations``.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.analysis.lint import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")
TOOL_NAME = "repro-analysis"
TOOL_URI = "https://example.invalid/repro/docs/analysis.md"

#: Finding severity -> SARIF result level.
_LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def _uri(path: str) -> str:
    """Repo-relative forward-slash URI for a findings path."""
    return os.path.relpath(path).replace(os.sep, "/")


def _location(path: str, line: int, col: int = 1,
              end_line: Optional[int] = None) -> Dict[str, Any]:
    region: Dict[str, Any] = {"startLine": max(line, 1),
                              "startColumn": max(col, 1)}
    if end_line is not None and end_line >= line:
        region["endLine"] = end_line
    return {"physicalLocation": {
        "artifactLocation": {"uri": _uri(path)},
        "region": region,
    }}


def rule_table(rules: Dict[str, Tuple[str, str, str]]
               ) -> List[Dict[str, Any]]:
    """SARIF ``tool.driver.rules`` from ``code -> (summary, hint,
    severity)``."""
    table = []
    for code in sorted(rules):
        summary, hint, severity = rules[code]
        table.append({
            "id": code,
            "name": code,
            "shortDescription": {"text": summary},
            "help": {"text": hint},
            "defaultConfiguration": {
                "level": _LEVELS.get(severity, "error")},
        })
    return table


def to_sarif(findings: Iterable[Finding],
             rules: Dict[str, Tuple[str, str, str]],
             fingerprints: Optional[Dict[int, str]] = None,
             timings: Optional[Dict[str, float]] = None
             ) -> Dict[str, Any]:
    """The complete SARIF document for one analyzer run.

    ``fingerprints`` optionally maps ``id(finding)`` to the baseline
    fingerprint recorded under ``partialFingerprints``.
    """
    rule_list = rule_table(rules)
    rule_index = {rule["id"]: position
                  for position, rule in enumerate(rule_list)}
    results: List[Dict[str, Any]] = []
    for finding in findings:
        result: Dict[str, Any] = {
            "ruleId": finding.code,
            "level": _LEVELS.get(finding.severity, "error"),
            "message": {"text": finding.message
                        + " [fix: " + finding.hint + "]"},
            "locations": [_location(finding.path, finding.line,
                                    finding.col, finding.end_line)],
        }
        if finding.code in rule_index:
            result["ruleIndex"] = rule_index[finding.code]
        if finding.chain:
            result["relatedLocations"] = [
                dict(_location(step["path"], step["line"]),
                     message={"text": step["note"]})
                for step in finding.chain]
        # repro: allow-RPR004 (identity dict key, not ordering)
        if fingerprints and id(finding) in fingerprints:
            result["partialFingerprints"] = {
                "reproAnalysis/v1": fingerprints[id(finding)]}
        results.append(result)
    run: Dict[str, Any] = {
        "tool": {"driver": {
            "name": TOOL_NAME,
            "informationUri": TOOL_URI,
            "rules": rule_list,
        }},
        "results": results,
        "columnKind": "utf16CodeUnits",
    }
    if timings is not None:
        run["invocations"] = [{
            "executionSuccessful": True,
            "properties": {"passTimingsSeconds": {
                name: round(value, 4)
                for name, value in sorted(timings.items())}},
        }]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [run],
    }
