"""Finding baseline: adopt the analyzer without stopping the world.

A baseline file records fingerprints of known findings so CI fails only
on *new* ones.  Fingerprints hash the file path, rule code and the
*text* of the flagged source line (plus an occurrence counter for
duplicates) — not the line number — so pure line drift above a finding
does not invalidate the baseline, while any edit to the flagged line
retires it.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.lint import Finding

BASELINE_SCHEMA = "repro-analysis-baseline/1"


def fingerprints(findings: Iterable[Finding],
                 sources: Dict[str, str]) -> Dict[int, str]:
    """``id(finding) -> fingerprint`` for a deterministic finding list.

    ``sources`` maps path -> module source text (the shared index has
    it already).  Findings must be passed in their final sorted order:
    the per-(path, code, line-text) occurrence counter is part of the
    fingerprint, so order defines which duplicate is which.
    """
    counters: Dict[str, int] = {}
    result: Dict[int, str] = {}
    for finding in findings:
        lines = sources.get(finding.path, "").splitlines()
        text = lines[finding.line - 1].strip() \
            if 0 < finding.line <= len(lines) else ""
        key = "|".join((finding.path.replace("\\", "/"), finding.code,
                        text))
        occurrence = counters.get(key, 0)
        counters[key] = occurrence + 1
        digest = hashlib.sha256(
            "{}|{}".format(key, occurrence).encode("utf-8")).hexdigest()
        result[id(finding)] = digest[:24]
    return result


def load(path: str) -> Set[str]:
    """The fingerprint set from a baseline file (empty if unreadable)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError):
        return set()
    if not isinstance(document, dict) \
            or document.get("schema") != BASELINE_SCHEMA:
        return set()
    entries = document.get("findings", [])
    return {entry["fingerprint"] for entry in entries
            if isinstance(entry, dict) and "fingerprint" in entry}


def write(path: str, findings: List[Finding],
          prints: Dict[int, str]) -> int:
    """Write the baseline for ``findings``; returns the entry count."""
    entries = [{
        "fingerprint": prints[id(finding)],
        "code": finding.code,
        "path": finding.path.replace("\\", "/"),
        "message": finding.message,
    } for finding in findings  # repro: allow-RPR004 (identity dict key)
        if id(finding) in prints]
    document = {"schema": BASELINE_SCHEMA, "findings": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(entries)


def filter_findings(findings: List[Finding], prints: Dict[int, str],
                    baseline: Optional[Set[str]]) -> List[Finding]:
    """Drop findings whose fingerprint the baseline already records."""
    if not baseline:
        return findings
    return [finding for finding in findings
            if prints.get(id(finding)) not in baseline]
