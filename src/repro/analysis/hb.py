"""The happens-before conflict sanitizer.

The paper's §4.2.1 point is that atomic transactions *prevent* conflict
by walling users off from each other, where cooperative work needs the
conflict *surfaced* so a social protocol can resolve it.  The sanitizer
makes that residue measurable: it tracks a vector clock per actor,
threads happens-before edges through the mechanisms that legitimately
order accesses — lock grant hand-offs, floor possession, causally
delivered messages (RPC headers) — and records every read/write of a
shared object.  Two accesses to the same object, at least one a write,
whose clocks are concurrent were ordered by *nothing*: they are exactly
the conflicts left for the humans.

Like the tracer and the metrics registry, the process default is a
no-op so instrumentation sites cost almost nothing::

    from repro import analysis

    sanitizer = analysis.enable_sanitizer()
    ... run a workload ...
    print(sanitizer.summary())
    analysis.disable_sanitizer()

Hooks live in :mod:`repro.concurrency.locks` (grant hand-off edges),
:mod:`repro.concurrency.store` (accesses), :mod:`repro.sessions.floor`
(floor possession edges) and :mod:`repro.net.transport` (clock
propagation in RPC headers).
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, List, Optional, TYPE_CHECKING, Union

from repro.obs.metrics import get_metrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.groups.clocks import VectorClock

#: Resolved lazily: importing :mod:`repro.groups` here would close an
#: import cycle (locks -> hb -> groups -> group -> transport -> hb), so
#: the class is fetched on first sanitizer use instead.
_vector_clock_class = None


def _clock_class():
    global _vector_clock_class
    if _vector_clock_class is None:
        from repro.groups.clocks import VectorClock as cls
        _vector_clock_class = cls
    return _vector_clock_class

#: Access kinds.
READ = "read"
WRITE = "write"

#: Packet-header key carrying a vector-clock snapshot.
HB_HEADER = "hb-clock"

#: Conflict kinds.
WRITE_WRITE = "write-write"
READ_WRITE = "read-write"


class Access:
    """One recorded read or write of a shared object."""

    __slots__ = ("obj", "actor", "kind", "at", "clock")

    def __init__(self, obj: str, actor: str, kind: str, at: float,
                 clock: "VectorClock") -> None:
        self.obj = obj
        self.actor = actor
        self.kind = kind
        self.at = at
        self.clock = clock

    def to_dict(self) -> Dict[str, Any]:
        return {"obj": self.obj, "actor": self.actor, "kind": self.kind,
                "at": self.at, "clock": self.clock.as_dict()}

    def __repr__(self) -> str:
        return "<Access {} {} by {} at {:.6g}>".format(
            self.kind, self.obj, self.actor, self.at)


class Conflict:
    """Two concurrent, conflicting accesses no mechanism ordered."""

    __slots__ = ("obj", "kind", "first", "second")

    def __init__(self, obj: str, kind: str, first: Access,
                 second: Access) -> None:
        self.obj = obj
        self.kind = kind
        self.first = first
        self.second = second

    @property
    def actors(self) -> List[str]:
        return [self.first.actor, self.second.actor]

    def to_dict(self) -> Dict[str, Any]:
        return {"obj": self.obj, "kind": self.kind,
                "first": self.first.to_dict(),
                "second": self.second.to_dict()}

    def __repr__(self) -> str:
        return "<Conflict {} on {}: {} vs {}>".format(
            self.kind, self.obj, self.first.actor, self.second.actor)


class ConflictSanitizer:
    """Vector-clock happens-before tracking over shared-object accesses.

    The tracker follows the classic FastTrack shape: per object it keeps
    the last write and the set of reads since that write, and compares
    each incoming access against them.  Ordering edges arrive through
    three channels:

    * :meth:`acquire` / :meth:`release` — possession hand-off (a lock
      grant or the session floor).  Releasing merges the releaser's
      clock into the scope; acquiring merges the scope into the
      acquirer, so successive critical sections are causally ordered.
    * :meth:`send` / :meth:`receive` — message causality (RPC request /
      response headers, causal multicast).
    * Every recorded access ticks its actor's own component.
    """

    enabled = True

    def __init__(self) -> None:
        self._clocks: Dict[str, VectorClock] = {}
        self._scopes: Dict[str, VectorClock] = {}
        self._last_write: Dict[str, Access] = {}
        self._reads: Dict[str, Dict[str, Access]] = {}
        self.accesses: List[Access] = []
        self.conflicts: List[Conflict] = []

    # -- clock plumbing ----------------------------------------------------

    def clock(self, actor: str) -> "VectorClock":
        """The actor's current clock (empty if never seen)."""
        existing = self._clocks.get(actor)
        return existing if existing is not None else _clock_class()()

    def _tick(self, actor: str) -> VectorClock:
        advanced = self.clock(actor).increment(actor)
        self._clocks[actor] = advanced
        return advanced

    # -- happens-before edges ----------------------------------------------

    def local(self, actor: str) -> None:
        """Record an internal event (advances the actor's clock)."""
        self._tick(actor)

    def send(self, actor: str) -> Dict[str, int]:
        """Tick and snapshot the clock for attachment to a message."""
        return self._tick(actor).as_dict()

    def receive(self, actor: str, clock: Optional[Dict[str, int]]) -> None:
        """Merge a received clock snapshot (causal-delivery edge)."""
        if clock:
            merged = self.clock(actor).merge(_clock_class()(clock))
            self._clocks[actor] = merged
        self._tick(actor)

    def acquire(self, scope: str, actor: str) -> None:
        """Order ``actor`` after every previous release of ``scope``.

        ``scope`` names the ordering mechanism instance — a lock key
        (``"lock:section"``) or a floor (``"floor:fcfs"``).
        """
        released = self._scopes.get(scope)
        if released is not None:
            self._clocks[actor] = self.clock(actor).merge(released)
        self._tick(actor)

    def release(self, scope: str, actor: str) -> None:
        """Publish ``actor``'s causal history into ``scope``."""
        clock = self._tick(actor)
        held = self._scopes.get(scope)
        self._scopes[scope] = clock if held is None else held.merge(clock)

    # -- accesses ----------------------------------------------------------

    def on_read(self, obj: str, actor: str, at: float = 0.0) -> None:
        """Record a read; conflicts against an unordered last write."""
        access = Access(obj, actor, READ, at, self._tick(actor))
        self.accesses.append(access)
        last_write = self._last_write.get(obj)
        if self._conflicts_with(last_write, access):
            self._report(READ_WRITE, last_write, access)
        self._reads.setdefault(obj, {})[actor] = access

    def on_write(self, obj: str, actor: str, at: float = 0.0) -> None:
        """Record a write; conflicts against unordered writes and reads."""
        access = Access(obj, actor, WRITE, at, self._tick(actor))
        self.accesses.append(access)
        last_write = self._last_write.get(obj)
        if self._conflicts_with(last_write, access):
            self._report(WRITE_WRITE, last_write, access)
        for reader, read in self._reads.get(obj, {}).items():
            if self._conflicts_with(read, access):
                self._report(READ_WRITE, read, access)
        self._last_write[obj] = access
        self._reads[obj] = {}

    def _conflicts_with(self, earlier: Optional[Access],
                        later: Access) -> bool:
        return (earlier is not None
                and earlier.actor != later.actor
                and earlier.clock.concurrent_with(later.clock))

    def _report(self, kind: str, first: Access, second: Access) -> None:
        self.conflicts.append(Conflict(first.obj, kind, first, second))
        get_metrics().counter(
            "analysis.conflicts", kind=kind, object=first.obj).add()

    # -- reporting ---------------------------------------------------------

    def conflict_counts(self) -> Dict[str, int]:
        """Conflicts by kind (plus ``"total"``)."""
        counts = {WRITE_WRITE: 0, READ_WRITE: 0}
        for conflict in self.conflicts:
            counts[conflict.kind] += 1
        counts["total"] = len(self.conflicts)
        return counts

    def summary(self) -> Dict[str, Any]:
        """One JSON-serialisable report of what the run left unordered."""
        by_object: Dict[str, int] = {}
        for conflict in self.conflicts:
            by_object[conflict.obj] = by_object.get(conflict.obj, 0) + 1
        return {
            "accesses": len(self.accesses),
            "actors": sorted(self._clocks),
            "conflicts": self.conflict_counts(),
            "conflicts_by_object": by_object,
        }

    def trace(self) -> List[List[Any]]:
        """The ordered access trace (digest material for replay)."""
        return [[access.at, access.actor, access.kind, access.obj]
                for access in self.accesses]

    def __repr__(self) -> str:
        return "<ConflictSanitizer accesses={} conflicts={}>".format(
            len(self.accesses), len(self.conflicts))


class NoopSanitizer:
    """The disabled sanitizer: every hook is a cheap no-op."""

    enabled = False
    accesses: List[Access] = []
    conflicts: List[Conflict] = []

    def clock(self, actor: str) -> "VectorClock":
        return _clock_class()()

    def local(self, actor: str) -> None:
        pass

    def send(self, actor: str) -> None:
        return None

    def receive(self, actor: str, clock: Any) -> None:
        pass

    def acquire(self, scope: str, actor: str) -> None:
        pass

    def release(self, scope: str, actor: str) -> None:
        pass

    def on_read(self, obj: str, actor: str, at: float = 0.0) -> None:
        pass

    def on_write(self, obj: str, actor: str, at: float = 0.0) -> None:
        pass

    def conflict_counts(self) -> Dict[str, int]:
        return {WRITE_WRITE: 0, READ_WRITE: 0, "total": 0}

    def summary(self) -> Dict[str, Any]:
        return {"accesses": 0, "actors": [],
                "conflicts": self.conflict_counts(),
                "conflicts_by_object": {}}

    def trace(self) -> List[List[Any]]:
        return []

    def __repr__(self) -> str:
        return "<NoopSanitizer>"


#: The shared disabled sanitizer (the process default).
NOOP_SANITIZER = NoopSanitizer()

_sanitizer: Union[ConflictSanitizer, NoopSanitizer] = NOOP_SANITIZER


def get_sanitizer() -> Union[ConflictSanitizer, NoopSanitizer]:
    """The process-wide sanitizer consulted by instrumentation sites."""
    return _sanitizer


def set_sanitizer(sanitizer: Optional[Union[ConflictSanitizer,
                                            NoopSanitizer]]
                  ) -> Union[ConflictSanitizer, NoopSanitizer]:
    """Install ``sanitizer`` (``None`` disables); returns the previous."""
    global _sanitizer
    previous = _sanitizer
    _sanitizer = sanitizer if sanitizer is not None else NOOP_SANITIZER
    return previous


def enable_sanitizer() -> ConflictSanitizer:
    """Install and return a fresh recording sanitizer."""
    sanitizer = ConflictSanitizer()
    set_sanitizer(sanitizer)
    return sanitizer


def disable_sanitizer() -> None:
    """Restore the zero-cost no-op default."""
    set_sanitizer(NOOP_SANITIZER)


@contextlib.contextmanager
def use_sanitizer(sanitizer: Union[ConflictSanitizer, NoopSanitizer]):
    """Scope ``sanitizer`` as the process default, restoring on exit."""
    previous = set_sanitizer(sanitizer)
    try:
        yield sanitizer
    finally:
        set_sanitizer(previous)


def inject_clock(headers: Dict[str, Any], actor: str) -> Dict[str, Any]:
    """Attach ``actor``'s clock snapshot to message ``headers``.

    A no-op (headers returned untouched) when the sanitizer is disabled,
    so packet contents are byte-identical in normal runs.
    """
    sanitizer = get_sanitizer()
    if sanitizer.enabled:
        headers[HB_HEADER] = sanitizer.send(actor)
    return headers


def extract_clock(headers: Dict[str, Any], actor: str) -> None:
    """Merge a clock snapshot out of received ``headers`` (if any)."""
    sanitizer = get_sanitizer()
    if sanitizer.enabled:
        clock = headers.get(HB_HEADER)
        if clock is not None:
            sanitizer.receive(actor, clock)
