"""Static lock-order deadlock detection across the concurrency layers.

Builds the repo-wide *lock acquisition graph*: a node per static lock
identity, an edge ``A -> B`` whenever some function acquires ``B``
while (on the static over-approximation) still holding ``A`` — either
directly or through a resolved callee.  Two findings come out of it:

========  =============================================================
code      hazard
========  =============================================================
RPR301    cycle in the lock acquisition graph (ABBA deadlock shape),
          including re-acquiring the *same* named lock while held
RPR302    remote invocation (``invoke`` / ``migrate`` / ``whereis``)
          issued while holding a lock — the RPC can block on a peer
          that needs the lock, stretching the hold across the network
========  =============================================================

A **lock identity** is ``<table>[<key>]``: the attribute chain the
``.acquire(...)`` is called on (with ``self.``/``cls.`` stripped) plus
the literal key argument when there is one, or ``*`` for a dynamic key.
Edges between two *dynamic* acquisitions of the same table
(``locks[*] -> locks[*]``, the transaction-manager shape) are ignored:
key order is unknowable statically, and the runtime wait-for-graph
deadlock detector owns that case.  Releases (``grant.release()``,
``table.release(grant)``, leaving a ``with`` block) end the hold;
otherwise a hold conservatively spans the rest of the function.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph, call_name
from repro.analysis.ir import FunctionInfo, RepoIndex
from repro.analysis.lint import Finding, node_span

#: Attribute names treated as remote (RPC-shaped) operations.
RPC_OPS = {"invoke", "migrate", "whereis", "call_remote", "rpc"}

RULE_META: Dict[str, Tuple[str, str, str]] = {
    "RPR301": ("lock-order cycle across the repo",
               "impose one global acquisition order (sort the keys, or "
               "acquire coarser locks first)", "error"),
    "RPR302": ("remote invocation while holding a lock",
               "release the lock before invoking, or move the remote "
               "call outside the critical section", "warning"),
}


class Acquire:
    """One static lock acquisition site."""

    __slots__ = ("lock", "node", "function", "names")

    def __init__(self, lock: str, node: ast.Call,
                 function: FunctionInfo, names: Set[str]) -> None:
        self.lock = lock
        self.node = node
        self.function = function
        #: Names the resulting grant/event is bound to (for release).
        self.names = names


class Edge:
    """``held -> acquired`` with the witness acquisition site."""

    __slots__ = ("held", "acquired", "held_site", "site")

    def __init__(self, held: str, acquired: str, held_site: Acquire,
                 site: Acquire) -> None:
        self.held = held
        self.acquired = acquired
        self.held_site = held_site
        self.site = site


def _lock_identity(node: ast.Call) -> Optional[str]:
    """``table[key]`` identity for an ``.acquire(...)`` call, if any."""
    if not (isinstance(node.func, ast.Attribute)
            and node.func.attr == "acquire"):
        return None
    dotted = call_name(node)
    if not dotted:
        return None  # computed receiver (e.g. get_sanitizer().acquire)
    base_parts = dotted.split(".")[:-1]
    while base_parts and base_parts[0] in ("self", "cls"):
        base_parts = base_parts[1:]
    if not base_parts:
        return None  # bare acquire() — not a table
    base = ".".join(base_parts)
    key = "*"
    if node.args:
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value,
                                                          str):
            key = first.value
    return "{}[{}]".format(base, key)


class LockOrderAnalysis:
    """Per-function scans folded into one repo-wide acquisition graph."""

    def __init__(self, index: RepoIndex, graph: CallGraph) -> None:
        self.index = index
        self.graph = graph
        self.edges: List[Edge] = []
        self.rpc_findings: List[Finding] = []
        self._acquires: Dict[str, List[Acquire]] = {}
        self._closure_memo: Dict[str, Set[str]] = {}
        for module in index.modules.values():
            for info in module.functions:
                self._acquires[info.qualname] = self._local_acquires(info)
        for module in index.modules.values():
            for info in module.functions:
                self._scan(info)

    # -- local collection --------------------------------------------------

    def _local_acquires(self, info: FunctionInfo) -> List[Acquire]:
        found: List[Acquire] = []
        for stmt, _depth in _walk_ordered(info.node):
            for node in _shallow_calls(stmt):
                lock = _lock_identity(node)
                if lock is not None:
                    found.append(Acquire(lock, node, info,
                                         _bound_names(stmt)))
        return found

    def closure(self, qualname: str) -> Set[str]:
        """Locks acquired by ``qualname`` or any transitive callee."""
        memo = self._closure_memo.get(qualname)
        if memo is not None:
            return memo
        self._closure_memo[qualname] = set()  # cycle guard
        locks = {acquire.lock
                 for acquire in self._acquires.get(qualname, ())}
        for callee in self.graph.callees(qualname):
            locks |= self.closure(callee.qualname)
        self._closure_memo[qualname] = locks
        return locks

    # -- the per-function hold scan ----------------------------------------

    def _scan(self, info: FunctionInfo) -> None:
        held: List[Acquire] = []

        def release_names(stmt: ast.stmt) -> None:
            for node in _shallow_calls(stmt):
                if not (isinstance(node.func, ast.Attribute)
                        and node.func.attr == "release"):
                    continue
                base = call_name(node).rsplit(".", 1)[0]
                arg = node.args[0].id if node.args \
                    and isinstance(node.args[0], ast.Name) else None
                held[:] = [acquire for acquire in held
                           if base not in acquire.names
                           and arg not in acquire.names]

        def on_acquire(acquire: Acquire) -> None:
            for holding in held:
                self._edge(holding, acquire)
            held.append(acquire)

        def handle_calls(stmt: ast.stmt) -> List[Acquire]:
            scoped: List[Acquire] = []
            for node in _shallow_calls(stmt):
                lock = _lock_identity(node)
                if lock is not None:
                    acquire = Acquire(lock, node, info,
                                      _bound_names(stmt))
                    on_acquire(acquire)
                    if isinstance(stmt, ast.With):
                        scoped.append(acquire)
                    continue
                if not held:
                    continue
                dotted = call_name(node)
                attr = dotted.rsplit(".", 1)[-1] if dotted else ""
                if attr in RPC_OPS:
                    self._rpc(held[-1], info, node, dotted)
                site = self._site_for(info, node)
                if site is not None and site.callee is not None:
                    for lock_id in sorted(
                            self.closure(site.callee.qualname)):
                        for holding in list(held):
                            self._edge(holding, Acquire(
                                lock_id, node, info, set()))
            return scoped

        def scan_block(body: List[ast.stmt]) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef,
                                     ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue
                release_names(stmt)
                scoped = handle_calls(stmt)
                for field in ("body", "orelse", "finalbody"):
                    nested = getattr(stmt, field, None)
                    if nested:
                        scan_block(nested)
                for handler in getattr(stmt, "handlers", ()):
                    scan_block(handler.body)
                for acquire in scoped:
                    # A with-scoped claim releases at block exit.
                    if acquire in held:
                        held.remove(acquire)

        scan_block(list(info.node.body))

    def _site_for(self, info: FunctionInfo, node: ast.Call):
        for site in self.graph.calls_from.get(info.qualname, ()):
            if site.node is node:
                return site
        return None

    def _edge(self, holding: Acquire, acquired: Acquire) -> None:
        if holding.lock == acquired.lock and holding.lock.endswith("[*]"):
            return  # dynamic keys: the runtime wait-for graph owns this
        self.edges.append(Edge(holding.lock, acquired.lock, holding,
                               acquired))

    def _rpc(self, holding: Acquire, info: FunctionInfo, node: ast.Call,
             dotted: str) -> None:
        summary, hint, severity = RULE_META["RPR302"]
        start, end = node_span(node)
        self.rpc_findings.append(Finding(
            info.path, node.lineno, node.col_offset + 1, "RPR302",
            "{}() issued while holding {} (acquired at line {})".format(
                dotted, holding.lock, holding.node.lineno),
            hint, severity=severity, end_line=end, suppress_from=start,
            chain=[
                {"path": info.path, "line": node.lineno,
                 "note": "remote call " + dotted + "()"},
                {"path": holding.function.path,
                 "line": holding.node.lineno,
                 "note": "holding " + holding.lock},
            ], function=info.qualname))

    # -- cycle reporting ---------------------------------------------------

    def findings(self) -> List[Finding]:
        results = list(self.rpc_findings)
        adjacency: Dict[str, Dict[str, Edge]] = {}
        for edge in self.edges:
            adjacency.setdefault(edge.held, {}).setdefault(
                edge.acquired, edge)
        for cycle in _cycles(adjacency):
            witness = adjacency[cycle[0]][cycle[1]]
            info = witness.site.function
            summary, hint, severity = RULE_META["RPR301"]
            start, end = node_span(witness.site.node)
            chain = []
            for held, acquired in zip(cycle, cycle[1:]):
                edge = adjacency[held][acquired]
                chain.append({
                    "path": edge.site.function.path,
                    "line": edge.site.node.lineno,
                    "note": "{} acquired while holding {} (in {}())".format(
                        edge.acquired, edge.held,
                        edge.site.function.name),
                })
            results.append(Finding(
                info.path, witness.site.node.lineno,
                witness.site.node.col_offset + 1, "RPR301",
                "lock-order cycle: " + " -> ".join(cycle),
                hint, severity=severity, end_line=end,
                suppress_from=start, chain=chain,
                function=info.qualname))
        return results


def _cycles(adjacency: Dict[str, Dict[str, Edge]]) -> List[List[str]]:
    """One representative cycle per distinct cyclic structure.

    Self-edges report as ``[A, A]``; longer cycles are found by BFS
    from each node back to itself and deduplicated by their canonical
    rotation (so ``A->B->A`` and ``B->A->B`` report once).
    """
    seen: Set[Tuple[str, ...]] = set()
    cycles: List[List[str]] = []
    for start in sorted(adjacency):
        if start in adjacency.get(start, {}):
            key = (start,)
            if key not in seen:
                seen.add(key)
                cycles.append([start, start])
            continue
        path = _shortest_cycle(adjacency, start)
        if path is None:
            continue
        nodes = path[:-1]
        pivot = nodes.index(min(nodes))
        key = tuple(nodes[pivot:] + nodes[:pivot])
        if key not in seen:
            seen.add(key)
            cycles.append(path)
    return cycles


def _shortest_cycle(adjacency: Dict[str, Dict[str, Edge]],
                    start: str) -> Optional[List[str]]:
    frontier: List[List[str]] = [[start]]
    visited: Set[str] = {start}
    while frontier:
        next_frontier: List[List[str]] = []
        for path in frontier:
            for target in sorted(adjacency.get(path[-1], {})):
                if target == start and len(path) > 1:
                    return path + [target]
                if target not in visited:
                    visited.add(target)
                    next_frontier.append(path + [target])
        frontier = next_frontier
    return None


# -- ordered statement walking ---------------------------------------------

def _walk_ordered(func_node: ast.AST) -> Iterator[Tuple[ast.stmt, int]]:
    """Own-body statements in source order, with nesting depth."""
    def walk(body: List[ast.stmt], depth: int):
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            yield stmt, depth
            for field in ("body", "orelse", "finalbody"):
                nested = getattr(stmt, field, None)
                if nested:
                    yield from walk(nested, depth + 1)
            for handler in getattr(stmt, "handlers", ()):
                yield from walk(handler.body, depth + 1)
    yield from walk(list(func_node.body), 0)


def _shallow_calls(stmt: ast.stmt) -> Iterator[ast.Call]:
    """Call nodes in a statement's own expressions (not nested blocks)."""
    skip: Set[int] = set()
    subtrees: List[ast.AST] = []
    for field in ("body", "orelse", "finalbody", "handlers"):
        value = getattr(stmt, field, None)
        if value:
            subtrees.extend(value)
    for node in ast.walk(stmt):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)) and node is not stmt:
            subtrees.append(node)
    for subtree in subtrees:
        for node in ast.walk(subtree):
            skip.add(id(node))
    for node in ast.walk(stmt):
        # repro: allow-RPR004 (identity membership, not ordering)
        if id(node) not in skip and isinstance(node, ast.Call):
            yield node


def _bound_names(stmt: ast.stmt) -> Set[str]:
    """Simple names the statement binds (assignment / with-as)."""
    names: Set[str] = set()
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        if isinstance(stmt.target, ast.Name):
            names.add(stmt.target.id)
    elif isinstance(stmt, ast.With):
        for item in stmt.items:
            if isinstance(item.optional_vars, ast.Name):
                names.add(item.optional_vars.id)
    return names


def analyse(index: RepoIndex, graph: CallGraph) -> List[Finding]:
    """Run the lock-order pass and return its findings."""
    return LockOrderAnalysis(index, graph).findings()
