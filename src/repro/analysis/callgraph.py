"""Static call graph over a :class:`~repro.analysis.ir.RepoIndex`.

Call resolution is deliberately conservative: an edge is recorded only
when the callee can be pinned down — same-module functions, sibling
nested functions, ``self.``/``cls.`` methods of the enclosing class,
import-table hits (``from m import f`` / ``import m as alias``), and
as a last resort a *unique* global match on the simple name.  An
ambiguous name (two classes defining ``acquire``) resolves to nothing
rather than to everything, so interprocedural passes built on top
(taint, lock-order) under-approximate instead of flooding the repo
with speculative findings.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from repro.analysis.ir import FunctionInfo, ModuleInfo, RepoIndex, own_body


def call_name(node: ast.AST) -> str:
    """Dotted name of a call target (``""`` when not a simple chain)."""
    if isinstance(node, ast.Call):
        node = node.func
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class CallSite:
    """One call expression inside a function, possibly resolved."""

    __slots__ = ("caller", "node", "name", "callee")

    def __init__(self, caller: FunctionInfo, node: ast.Call, name: str,
                 callee: Optional[FunctionInfo]) -> None:
        self.caller = caller
        self.node = node
        self.name = name
        self.callee = callee

    @property
    def line(self) -> int:
        return self.node.lineno

    def __repr__(self) -> str:
        return "<CallSite {} -> {}>".format(
            self.caller.qualname,
            self.callee.qualname if self.callee else self.name + "?")


class CallGraph:
    """Resolved call sites, indexed both ways."""

    def __init__(self, index: RepoIndex) -> None:
        self.index = index
        self.calls_from: Dict[str, List[CallSite]] = {}
        self.calls_to: Dict[str, List[CallSite]] = {}
        for module in index.modules.values():
            for info in module.functions:
                sites = [self._site(info, node)
                         for node in own_body(info.node)
                         if isinstance(node, ast.Call)]
                sites = [site for site in sites if site is not None]
                self.calls_from[info.qualname] = sites
                for site in sites:
                    if site.callee is not None:
                        self.calls_to.setdefault(
                            site.callee.qualname, []).append(site)

    # -- resolution --------------------------------------------------------

    def _site(self, caller: FunctionInfo,
              node: ast.Call) -> Optional[CallSite]:
        name = call_name(node)
        if not name:
            return CallSite(caller, node, "", None)
        return CallSite(caller, node, name,
                        self.resolve(caller, node, name))

    def resolve(self, caller: FunctionInfo, node: ast.Call,
                name: str) -> Optional[FunctionInfo]:
        module = caller.module
        parts = name.split(".")
        if len(parts) == 1:
            return self._resolve_bare(caller, module, name)
        if parts[0] in ("self", "cls") and len(parts) == 2 \
                and caller.cls is not None:
            method = self.index.functions.get(
                _class_prefix(caller) + "." + parts[1])
            if method is not None:
                return method
            return self._unique(self.index.methods.get(parts[1]))
        # Module-qualified calls through the import table:
        # ``import repro.analysis.lint as lint; lint.lint_paths(...)``.
        target = module.imports.get(parts[0])
        if target is not None:
            resolved = self.index.functions.get(
                ".".join([target] + parts[1:]))
            if resolved is not None:
                return resolved
        # Attribute call on an arbitrary object: accept only a unique
        # method (or unique function) of that simple name repo-wide.
        simple = parts[-1]
        candidates = list(self.index.methods.get(simple, ())) + \
            list(self.index.by_name.get(simple, ()))
        return self._unique(candidates)

    def _resolve_bare(self, caller: FunctionInfo, module: ModuleInfo,
                      name: str) -> Optional[FunctionInfo]:
        # Sibling nested function of the same enclosing def.
        parent = caller.qualname.rsplit(".", 1)[0]
        sibling = self.index.functions.get(parent + "." + name)
        if sibling is not None:
            return sibling
        # Module-level function of the caller's own module.
        local = self.index.functions.get(module.name + "." + name)
        if local is not None:
            return local
        # ``from other import helper``.
        target = module.imports.get(name)
        if target is not None:
            imported = self.index.functions.get(target)
            if imported is not None:
                return imported
        # Unique global match on the simple name.
        return self._unique(self.index.by_name.get(name))

    @staticmethod
    def _unique(candidates) -> Optional[FunctionInfo]:
        if candidates and len(candidates) == 1:
            return candidates[0]
        return None

    # -- queries -----------------------------------------------------------

    def callees(self, qualname: str) -> List[FunctionInfo]:
        return [site.callee for site in self.calls_from.get(qualname, ())
                if site.callee is not None]

    def callers(self, qualname: str) -> List[CallSite]:
        return list(self.calls_to.get(qualname, ()))

    def __repr__(self) -> str:
        edges = sum(len(sites) for sites in self.calls_to.values())
        return "<CallGraph {} functions, {} resolved edges>".format(
            len(self.calls_from), edges)


def _class_prefix(info: FunctionInfo) -> str:
    """Qualname prefix ``module.Class`` for a method's class."""
    return info.qualname.rsplit(".", 1)[0]
