"""Group invocation: one call fanned out to every member.

The paper (§4.2.2-iv) singles out *group invocation* — "for example if a
group of cameras are to be started simultaneously in a conference" — and
demands *bounded real-time performance*.  :class:`GroupInvoker` invokes a
method on every member and collects replies under a deadline with a
selectable quorum policy; the result records whether the real-time bound
was met and the per-member latencies.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import GroupError
from repro.net.network import Network
from repro.net.transport import RpcEndpoint
from repro.sim import Event

GROUP_RPC_PORT = 22

QUORUM_ALL = "all"
QUORUM_ANY = "any"
QUORUM_MAJORITY = "majority"


class GroupCallResult:
    """The outcome of one group invocation."""

    def __init__(self, results: Dict[str, Any], errors: Dict[str, str],
                 latencies: Dict[str, float], deadline: float,
                 quorum: str, quorum_met: bool) -> None:
        self.results = results
        self.errors = errors
        self.latencies = latencies
        self.deadline = deadline
        self.quorum = quorum
        self.quorum_met = quorum_met

    @property
    def replied(self) -> int:
        return len(self.results)

    @property
    def worst_latency(self) -> float:
        """Slowest reply observed (0.0 when nothing replied)."""
        return max(self.latencies.values()) if self.latencies else 0.0

    def __repr__(self) -> str:
        return "<GroupCallResult replied={} quorum_met={}>".format(
            self.replied, self.quorum_met)


class GroupInvoker:
    """Client-side fan-out invocation over a member list."""

    def __init__(self, network: Network, caller_node: str,
                 port: int = GROUP_RPC_PORT) -> None:
        self.network = network
        self.env = network.env
        self.caller_node = caller_node
        self.port = port
        self.rpc = RpcEndpoint(network.host(caller_node), port=port)

    def serve(self, node: str) -> RpcEndpoint:
        """Create a server endpoint on ``node`` for group-invoked methods."""
        return RpcEndpoint(self.network.host(node), port=self.port)

    def call(self, members: List[str], method: str, args: Any = None,
             deadline: float = 1.0,
             quorum: str = QUORUM_ALL) -> Event:
        """Invoke ``method`` on every member; fires with GroupCallResult."""
        if quorum not in (QUORUM_ALL, QUORUM_ANY, QUORUM_MAJORITY):
            raise GroupError("unknown quorum policy: " + quorum)
        if not members:
            raise GroupError("group invocation needs at least one member")
        done = self.env.event()
        self.env.process(
            self._call_proc(list(members), method, args, deadline,
                            quorum, done))
        return done

    def _required(self, quorum: str, population: int) -> int:
        if quorum == QUORUM_ALL:
            return population
        if quorum == QUORUM_ANY:
            return 1
        return population // 2 + 1

    def _call_proc(self, members: List[str], method: str, args: Any,
                   deadline: float, quorum: str, done: Event):
        from repro.sim import Store

        start = self.env.now
        results: Dict[str, Any] = {}
        errors: Dict[str, str] = {}
        latencies: Dict[str, float] = {}
        inbox = Store(self.env)
        for member in members:
            self.env.process(
                self._one_call(member, method, args, deadline, inbox))
        required = self._required(quorum, len(members))
        timer = self.env.timeout(deadline)
        outstanding = set(members)
        while outstanding:
            take = inbox.get()
            fired = yield self.env.any_of([take, timer])
            if take not in fired:
                # Deadline expired first: survivors are late.
                take.cancel()
                for member in outstanding:
                    errors.setdefault(member, "deadline")
                break
            member, ok, value = take.value
            outstanding.discard(member)
            latencies[member] = self.env.now - start
            if ok:
                results[member] = value
            else:
                errors[member] = value
            if len(results) >= required and quorum != QUORUM_ALL:
                break
        quorum_met = len(results) >= required \
            and all(latency <= deadline for latency in latencies.values())
        done.succeed(GroupCallResult(results, errors, latencies,
                                     deadline, quorum, quorum_met))

    def _one_call(self, member: str, method: str, args: Any,
                  deadline: float, inbox):
        try:
            value = yield self.rpc.call(member, method, args,
                                        timeout=deadline * 10)
            inbox.put((member, True, value))
        except Exception as error:  # noqa: BLE001 - collected per member
            inbox.put((member, False, str(error)))
