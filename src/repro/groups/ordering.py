"""Delivery-ordering protocols: unordered, FIFO, causal and total.

Each protocol is a pure hold-back buffer: ``on_receive(message)`` returns
the (possibly empty) list of messages that become deliverable, in delivery
order.  Keeping the logic network-free makes the ordering invariants
directly testable (including property-based tests over arbitrary arrival
permutations).

The paper's requirement (§4.2.2-iv and §3.1) is that group infrastructures
let applications pick the ordering/latency trade-off; experiment E11
measures that trade-off using these buffers over the simulated network.
"""

from __future__ import annotations

from typing import Dict, List

from repro.groups.clocks import VectorClock
from repro.groups.messages import GroupMessage


class UnorderedDelivery:
    """No constraints: every message is deliverable on arrival."""

    name = "unordered"

    def on_receive(self, message: GroupMessage) -> List[GroupMessage]:
        return [message]


class FifoDelivery:
    """Per-sender FIFO: deliver each sender's messages in send order.

    Requires ``message.seq`` to be the sender's 1-based send counter.
    """

    name = "fifo"

    def __init__(self) -> None:
        self._next: Dict[str, int] = {}
        self._held: Dict[str, Dict[int, GroupMessage]] = {}

    def on_receive(self, message: GroupMessage) -> List[GroupMessage]:
        if message.seq is None:
            raise ValueError("FIFO delivery requires per-sender seq")
        sender = message.sender
        expected = self._next.setdefault(sender, 1)
        held = self._held.setdefault(sender, {})
        if message.seq < expected:
            return []  # duplicate
        held[message.seq] = message
        deliverable: List[GroupMessage] = []
        while expected in held:
            deliverable.append(held.pop(expected))
            expected += 1
        self._next[sender] = expected
        return deliverable


class CausalDelivery:
    """Causal order via vector clocks (Birman-Schiper-Stephenson style).

    A message m from sender s with vector V is deliverable when the local
    delivered-vector D satisfies: D[s] == V[s] - 1 and D[p] >= V[p] for all
    p != s.  This also implies per-sender FIFO.
    """

    name = "causal"

    def __init__(self, local: str) -> None:
        self.local = local
        self.delivered = VectorClock()
        self._held: List[GroupMessage] = []

    def on_receive(self, message: GroupMessage) -> List[GroupMessage]:
        if message.vector is None:
            raise ValueError("causal delivery requires vector timestamps")
        self._held.append(message)
        deliverable: List[GroupMessage] = []
        progressed = True
        while progressed:
            progressed = False
            for held in list(self._held):
                if self._ready(held):
                    self._held.remove(held)
                    self.delivered = self.delivered.increment(held.sender)
                    deliverable.append(held)
                    progressed = True
        return deliverable

    def _ready(self, message: GroupMessage) -> bool:
        vector = message.vector
        sender = message.sender
        if vector.get(sender, 0) != self.delivered.get(sender) + 1:
            return False
        return all(self.delivered.get(p) >= t
                   for p, t in vector.items() if p != sender)

    @property
    def held_count(self) -> int:
        """Messages currently blocked awaiting their causal predecessors."""
        return len(self._held)


class TotalDelivery:
    """Total order: deliver strictly by the sequencer-assigned global_seq."""

    name = "total"

    def __init__(self) -> None:
        self._next = 1
        self._held: Dict[int, GroupMessage] = {}

    def on_receive(self, message: GroupMessage) -> List[GroupMessage]:
        if message.global_seq is None:
            raise ValueError("total delivery requires global_seq")
        if message.global_seq < self._next:
            return []  # duplicate
        self._held[message.global_seq] = message
        deliverable: List[GroupMessage] = []
        while self._next in self._held:
            deliverable.append(self._held.pop(self._next))
            self._next += 1
        return deliverable


ORDERINGS = {
    "unordered": UnorderedDelivery,
    "fifo": FifoDelivery,
    "causal": CausalDelivery,
    "total": TotalDelivery,
}


def make_ordering(name: str, local: str):
    """Instantiate the ordering protocol called ``name`` for one member."""
    if name not in ORDERINGS:
        raise ValueError("unknown ordering: {}".format(name))
    if name == "causal":
        return CausalDelivery(local)
    return ORDERINGS[name]()
