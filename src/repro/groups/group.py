"""Process groups: membership views, ordered broadcast, loopback delivery.

A :class:`ProcessGroup` names a set of member hosts and a delivery ordering
("unordered", "fifo", "causal" or "total").  Each member attaches a
:class:`GroupEndpoint`; broadcasts travel as unicasts to every other member
(the engineering could equally use the multicast service — experiment E9
compares transports; this layer is about *ordering* semantics).

Membership is coordinator-based: the first member is the coordinator; view
changes (join/leave/failure) install a new numbered view at every member.
The coordinator also acts as the sequencer for total ordering.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import GroupError, MembershipError
from repro.groups.messages import GroupMessage
from repro.groups.ordering import make_ordering
from repro.net.network import Host, Network
from repro.net.packet import Packet
from repro.net.transport import ReliableChannel
from repro.sim import Store

GROUP_PORT = 20


class GroupView:
    """An immutable numbered membership snapshot."""

    __slots__ = ("view_id", "members")

    def __init__(self, view_id: int, members: Tuple[str, ...]) -> None:
        self.view_id = view_id
        self.members = tuple(sorted(members))

    @property
    def coordinator(self) -> str:
        """The distinguished member (sequencer, membership manager)."""
        if not self.members:
            raise MembershipError("empty view has no coordinator")
        return self.members[0]

    def __contains__(self, member: str) -> bool:
        return member in self.members

    def __len__(self) -> int:
        return len(self.members)

    def __repr__(self) -> str:
        return "<View #{} {}>".format(self.view_id, list(self.members))


class GroupEndpoint:
    """One member's attachment to a process group."""

    def __init__(self, group: "ProcessGroup", host: Host) -> None:
        self.group = group
        self.host = host
        self.env = host.env
        self.name = host.name
        self._ordering = make_ordering(group.ordering, host.name)
        self._send_seq = itertools.count(1)
        self._sent_vector: Dict[str, int] = {}
        self.delivered: Store = Store(self.env)
        self.delivered_log: List[GroupMessage] = []
        self.view: Optional[GroupView] = None
        self._on_deliver: List[Callable[[GroupMessage], None]] = []
        #: Application state received on (late) join, if the group has a
        #: state provider.
        self.joined_state: Any = None
        self.state_received_at: Optional[float] = None
        host.on_packet(group.port, self._on_packet)
        self._reliable: Optional[ReliableChannel] = None
        if group.reliable:
            # A dedicated acknowledged channel per endpoint carries
            # group traffic over lossy links (port + 1 to keep the raw
            # datagram path distinct).
            self._reliable = ReliableChannel(
                host, port=group.port + 1,
                ack_timeout=group.ack_timeout,
                max_retries=group.max_retries)
            self.env.process(self._reliable_pump())

    # -- sending -------------------------------------------------------------

    def broadcast(self, payload: Any, size: int = 0) -> GroupMessage:
        """Send to every group member (including self, via loopback)."""
        if self.view is None or self.name not in self.view:
            raise MembershipError(
                "{} is not in the current view of {}".format(
                    self.name, self.group.name))
        message = GroupMessage(self.name, payload, size=size,
                               sent_at=self.env.now,
                               view_id=self.view.view_id)
        if self.group.ordering == "fifo":
            message.seq = next(self._send_seq)
        elif self.group.ordering == "causal":
            self._sent_vector[self.name] = \
                self._sent_vector.get(self.name, 0) + 1
            message.vector = dict(self._sent_vector)
        elif self.group.ordering == "total":
            # Route through the sequencer, which stamps and re-broadcasts.
            self._send_to(self.view.coordinator, "ord-req", message)
            return message
        self._fanout(message)
        return message

    def on_deliver(self, callback: Callable[[GroupMessage], None]) -> None:
        """Push-style delivery subscription (in addition to the store)."""
        self._on_deliver.append(callback)

    def receive(self):
        """An event yielding the next delivered message."""
        return self.delivered.get()

    # -- internals -------------------------------------------------------------

    def _fanout(self, message: GroupMessage) -> None:
        for member in self.view.members:
            if member == self.name:
                self._receive_message(message)
            else:
                self._send_to(member, "msg", message)

    def _send_to(self, member: str, kind: str,
                 message: GroupMessage) -> None:
        if self._reliable is not None:
            self._reliable.send(member, payload=(kind, message),
                                size=message.size).defuse()
        else:
            self.host.send(member, payload=message, size=message.size,
                           port=self.group.port, headers={"type": kind})

    def _reliable_pump(self):
        while True:
            packet = yield self._reliable.receive()
            kind, message = packet.payload
            if kind == "msg":
                self._receive_message(message)
            elif kind == "ord-req":
                self.group._sequence(message)

    def _on_packet(self, packet: Packet) -> None:
        kind = packet.headers.get("type")
        if kind == "msg":
            self._receive_message(packet.payload)
        elif kind == "view":
            self._install_view(packet.payload)
        elif kind == "ord-req":
            self.group._sequence(packet.payload)
        elif kind == "state":
            self.joined_state = packet.payload
            self.state_received_at = self.env.now

    def _receive_message(self, message: GroupMessage) -> None:
        for deliverable in self._ordering.on_receive(message):
            self._deliver(deliverable)

    def _deliver(self, message: GroupMessage) -> None:
        if self.group.ordering == "causal" and message.vector is not None:
            # Merge the delivered causal history into the send vector.
            for process, time in message.vector.items():
                if time > self._sent_vector.get(process, 0):
                    self._sent_vector[process] = time
        self.delivered_log.append(message)
        self.delivered.put(message)
        for callback in self._on_deliver:
            callback(message)

    def _install_view(self, view: GroupView) -> None:
        if self.view is not None and view.view_id <= self.view.view_id:
            return
        self.view = view

    def __repr__(self) -> str:
        return "<GroupEndpoint {}@{}>".format(self.name, self.group.name)


class ProcessGroup:
    """A named group with ordered broadcast and managed membership."""

    def __init__(self, network: Network, name: str,
                 ordering: str = "causal",
                 port: int = GROUP_PORT,
                 reliable: bool = False,
                 ack_timeout: float = 0.2,
                 max_retries: int = 30) -> None:
        if ordering not in ("unordered", "fifo", "causal", "total"):
            raise GroupError("unknown ordering: " + ordering)
        self.network = network
        self.env = network.env
        self.name = name
        self.ordering = ordering
        self.port = port
        #: With reliable=True, group traffic travels over acknowledged
        #: channels (exactly-once, per-pair FIFO) and survives lossy
        #: links; the default raw-datagram path assumes loss-free links.
        self.reliable = reliable
        self.ack_timeout = ack_timeout
        self.max_retries = max_retries
        self.endpoints: Dict[str, GroupEndpoint] = {}
        self.view = GroupView(0, ())
        self._global_seq = itertools.count(1)
        self._on_view: List[Callable[[GroupView], None]] = []
        #: Optional application-state provider for late-join transfer:
        #: () -> (snapshot, size_bytes).
        self._state_provider: Optional[Callable[[],
                                                Tuple[Any, int]]] = None

    def set_state_provider(
            self, provider: Callable[[], Tuple[Any, int]]) -> None:
        """Supply late joiners with application state on join.

        The provider returns ``(snapshot, size_bytes)``; the coordinator
        ships it to each new member across the network (state-transfer
        latency scales with the size).
        """
        self._state_provider = provider

    @property
    def coordinator(self) -> Optional[str]:
        """The current coordinator, if the group is non-empty."""
        return self.view.coordinator if len(self.view) else None

    def join(self, host_name: str) -> GroupEndpoint:
        """Add a member and install the new view everywhere."""
        if host_name in self.endpoints:
            raise MembershipError(
                "{} is already a member of {}".format(host_name, self.name))
        host = self.network.host(host_name)
        endpoint = GroupEndpoint(self, host)
        was_empty = len(self.view) == 0
        self.endpoints[host_name] = endpoint
        self._install(tuple(self.view.members) + (host_name,))
        if self._state_provider is not None and not was_empty:
            snapshot, size = self._state_provider()
            coordinator = self.endpoints[self.view.coordinator]
            if coordinator is not endpoint:
                coordinator.host.send(host_name, payload=snapshot,
                                      size=size, port=self.port,
                                      headers={"type": "state"})
        return endpoint

    def leave(self, host_name: str) -> None:
        """Remove a member and install the new view."""
        if host_name not in self.endpoints:
            raise MembershipError(
                "{} is not a member of {}".format(host_name, self.name))
        self.endpoints.pop(host_name)
        remaining = tuple(m for m in self.view.members if m != host_name)
        self._install(remaining)

    def fail_member(self, host_name: str) -> None:
        """Remove a member presumed crashed (failure-detector path)."""
        if host_name in self.endpoints:
            self.leave(host_name)

    def on_view(self, callback: Callable[[GroupView], None]) -> None:
        """Call ``callback(view)`` after each new view installs.

        Failure-detection and recovery experiments use this to timestamp
        view changes (e.g. measuring partition-to-recovery latency).
        """
        self._on_view.append(callback)

    def endpoint(self, host_name: str) -> GroupEndpoint:
        """The endpoint for ``host_name``."""
        try:
            return self.endpoints[host_name]
        except KeyError:
            raise MembershipError(
                "{} is not a member of {}".format(host_name, self.name))

    # -- internals -------------------------------------------------------------

    def _install(self, members: Tuple[str, ...]) -> None:
        self.view = GroupView(self.view.view_id + 1, members)
        # The membership manager installs the view at every member.  The
        # local update is immediate; remote members learn via the network
        # (we deliver directly here: view installation is control traffic
        # whose latency is not under test).
        for endpoint in self.endpoints.values():
            endpoint._install_view(self.view)
        for callback in self._on_view:
            callback(self.view)

    def _sequence(self, message: GroupMessage) -> None:
        """Sequencer role: stamp a total-order slot and re-broadcast."""
        message.global_seq = next(self._global_seq)
        sequencer = self.endpoints.get(self.view.coordinator)
        if sequencer is None:
            raise GroupError("sequencer has no endpoint")
        sequencer._fanout(message)
