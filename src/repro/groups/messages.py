"""Group message records shared by the ordering protocols."""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional

_message_ids = itertools.count(1)  # repro: allow-RPR005 (ids are labels, not behaviour)


class GroupMessage:
    """A message broadcast within a group.

    Ordering metadata is filled in by the protocol in use: ``seq`` is the
    per-sender FIFO number, ``vector`` the causal timestamp and
    ``global_seq`` the total-order slot assigned by the sequencer.
    """

    __slots__ = ("msg_id", "sender", "payload", "size", "sent_at",
                 "seq", "vector", "global_seq", "view_id")

    def __init__(self, sender: str, payload: Any, size: int = 0,
                 sent_at: float = 0.0, seq: Optional[int] = None,
                 vector: Optional[Dict[str, int]] = None,
                 global_seq: Optional[int] = None,
                 view_id: int = 0) -> None:
        self.msg_id = next(_message_ids)
        self.sender = sender
        self.payload = payload
        self.size = size
        self.sent_at = sent_at
        self.seq = seq
        self.vector = vector
        self.global_seq = global_seq
        self.view_id = view_id

    def __repr__(self) -> str:
        return "<GroupMessage #{} from {} seq={} gseq={}>".format(
            self.msg_id, self.sender, self.seq, self.global_seq)
