"""Heartbeat failure detection for process groups.

Each member periodically sends a heartbeat to the monitor; a member the
suspicion *strategy* gives up on is *suspected* and reported.  Wired to
:meth:`ProcessGroup.fail_member`, suspicion drives view changes — the
availability half of the paper's "reliability stems from the system as
a whole" observation (§2.3).

The suspicion decision is pluggable: the default
:class:`FixedTimeout` strategy reproduces the classic
"silent for ``suspect_after`` seconds" rule exactly, while
:class:`repro.faults.detector.PhiAccrualDetector` adapts the threshold
to the observed heartbeat arrival distribution (so latency storms do
not trigger false suspicions the way a fixed timeout does).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import GroupError
from repro.net.network import Host, Network
from repro.net.packet import Packet
from repro.sim import Environment

HEARTBEAT_PORT = 21


class FixedTimeout:
    """The classic suspicion rule: silent for ``suspect_after`` seconds.

    This is the default :class:`HeartbeatMonitor` strategy and preserves
    its historical behaviour bit for bit.
    """

    def __init__(self, suspect_after: float) -> None:
        if suspect_after <= 0:
            raise GroupError("suspect_after must be positive")
        self.suspect_after = suspect_after

    def watch(self, member: str, now: float) -> None:
        """A member came under observation at ``now``."""

    def forget(self, member: str) -> None:
        """A member left observation."""

    def observe(self, member: str, now: float) -> None:
        """A heartbeat from ``member`` arrived at ``now``."""

    def suspect(self, member: str, silent_for: float, now: float) -> bool:
        """Should ``member`` (silent for ``silent_for``) be suspected?"""
        return silent_for >= self.suspect_after

    def __repr__(self) -> str:
        return "<FixedTimeout {:g}s>".format(self.suspect_after)


class HeartbeatSender:
    """Emits heartbeats from a member host to the monitor host."""

    def __init__(self, host: Host, monitor_node: str,
                 interval: float = 1.0) -> None:
        if interval <= 0:
            raise GroupError("heartbeat interval must be positive")
        self.host = host
        self.env = host.env
        self.monitor_node = monitor_node
        self.interval = interval
        self.alive = True
        self.process = self.env.process(self._run())

    def stop(self) -> None:
        """Simulate the member crashing (heartbeats cease)."""
        self.alive = False

    def restart(self) -> None:
        """Bring a stopped member back (heartbeats resume)."""
        if self.alive:
            return
        self.alive = True
        self.process = self.env.process(self._run())

    def _run(self):
        while self.alive:
            self.host.send(self.monitor_node, payload=self.host.name,
                           size=16, port=HEARTBEAT_PORT,
                           headers={"type": "heartbeat"})
            yield self.env.timeout(self.interval)


class MonitoredMembership:
    """Wires heartbeat failure detection to a group's membership.

    Every member sends heartbeats to the coordinator's host; a member
    the strategy gives up on is suspected and removed from the view
    automatically (a clean ``leave`` through the group, so the view
    change installs everywhere).  Simulate a crash with :meth:`crash`;
    a recovered member rejoins the group via :meth:`restart`.
    """

    def __init__(self, group, interval: float = 0.5,
                 suspect_after: float = 2.0,
                 strategy=None) -> None:
        coordinator = group.coordinator
        if coordinator is None:
            raise GroupError("cannot monitor an empty group")
        self.group = group
        self.interval = interval
        monitor_host = group.endpoints[coordinator].host
        self.senders = {}
        members = [m for m in group.view.members]
        self.monitor = HeartbeatMonitor(
            monitor_host, [m for m in members if m != coordinator],
            suspect_after=suspect_after,
            check_interval=interval / 2,
            on_suspect=self._on_suspect,
            strategy=strategy)
        for member in members:
            if member == coordinator:
                continue
            self.senders[member] = HeartbeatSender(
                group.endpoints[member].host, coordinator,
                interval=interval)

    def watch_new_member(self, member: str) -> None:
        """Start monitoring a member that joined after construction."""
        if member in self.senders:
            return
        coordinator = self.group.coordinator
        self.monitor.watch(member)
        self.senders[member] = HeartbeatSender(
            self.group.endpoints[member].host, coordinator,
            interval=self.interval)

    def crash(self, member: str) -> None:
        """Simulate ``member`` failing (its heartbeats stop)."""
        sender = self.senders.get(member)
        if sender is None:
            raise GroupError("{} is not monitored".format(member))
        sender.stop()

    def restart(self, member: str) -> None:
        """Bring a previously suspected/crashed member back.

        If suspicion already removed the member from the view, it
        rejoins the group (installing a fresh view at every endpoint);
        either way its heartbeats resume and monitoring restarts.
        """
        if member not in self.group.endpoints:
            self.group.join(member)
        sender = self.senders.get(member)
        if sender is not None:
            sender.restart()
            self.monitor.watch(member)
        else:
            self.watch_new_member(member)

    def _on_suspect(self, member: str) -> None:
        self.monitor.unwatch(member)
        sender = self.senders.pop(member, None)
        if sender is not None:
            # Without this the suspected member's sender process keeps
            # emitting heartbeats forever (and a later restart would
            # double them up).
            sender.stop()
        self.group.fail_member(member)


class HeartbeatMonitor:
    """Watches heartbeats and reports suspected members.

    ``strategy`` decides *when* silence becomes suspicion; the default
    :class:`FixedTimeout` uses ``suspect_after`` unchanged.  Any object
    with ``watch/forget/observe/suspect`` methods (see
    :class:`FixedTimeout` for signatures) may be supplied instead —
    e.g. :class:`repro.faults.detector.PhiAccrualDetector`.
    """

    def __init__(self, host: Host, members: List[str],
                 suspect_after: float = 3.0,
                 check_interval: float = 0.5,
                 on_suspect: Optional[Callable[[str], None]] = None,
                 strategy=None) -> None:
        if suspect_after <= 0 or check_interval <= 0:
            raise GroupError("timeouts must be positive")
        self.host = host
        self.env = host.env
        self.suspect_after = suspect_after
        self.check_interval = check_interval
        self.on_suspect = on_suspect
        self.strategy = strategy if strategy is not None \
            else FixedTimeout(suspect_after)
        self.alive = True
        self.last_heard: Dict[str, float] = {
            member: self.env.now for member in members}
        for member in members:
            self.strategy.watch(member, self.env.now)
        self.suspected: List[str] = []
        host.on_packet(HEARTBEAT_PORT, self._on_heartbeat)
        self.process = self.env.process(self._run())

    def watch(self, member: str) -> None:
        """Start (or resume) watching a member."""
        self.last_heard[member] = self.env.now
        if member in self.suspected:
            self.suspected.remove(member)
        self.strategy.watch(member, self.env.now)

    def unwatch(self, member: str) -> None:
        """Stop watching a member (e.g. after a clean leave)."""
        self.last_heard.pop(member, None)
        if member in self.suspected:
            self.suspected.remove(member)
        self.strategy.forget(member)

    def stop(self) -> None:
        """Simulate the monitor itself crashing (checks cease)."""
        self.alive = False

    def is_suspected(self, member: str) -> bool:
        return member in self.suspected

    def _on_heartbeat(self, packet: Packet) -> None:
        if not self.alive:
            return
        member = packet.payload
        if member in self.last_heard:
            self.last_heard[member] = self.env.now
            self.strategy.observe(member, self.env.now)
            if member in self.suspected:
                # The member was wrongly suspected and has reappeared.
                self.suspected.remove(member)

    def _run(self):
        while self.alive:
            yield self.env.timeout(self.check_interval)
            if not self.alive:
                return
            now = self.env.now
            for member, heard in list(self.last_heard.items()):
                silent = now - heard
                if member not in self.suspected \
                        and self.strategy.suspect(member, silent, now):
                    self.suspected.append(member)
                    if self.on_suspect is not None:
                        self.on_suspect(member)
