"""Heartbeat failure detection for process groups.

Each member periodically sends a heartbeat to the monitor; a member not
heard from within ``suspect_after`` seconds is *suspected* and reported.
Wired to :meth:`ProcessGroup.fail_member`, suspicion drives view changes —
the availability half of the paper's "reliability stems from the system as
a whole" observation (§2.3).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import GroupError
from repro.net.network import Host, Network
from repro.net.packet import Packet
from repro.sim import Environment

HEARTBEAT_PORT = 21


class HeartbeatSender:
    """Emits heartbeats from a member host to the monitor host."""

    def __init__(self, host: Host, monitor_node: str,
                 interval: float = 1.0) -> None:
        if interval <= 0:
            raise GroupError("heartbeat interval must be positive")
        self.host = host
        self.env = host.env
        self.monitor_node = monitor_node
        self.interval = interval
        self.alive = True
        self.process = self.env.process(self._run())

    def stop(self) -> None:
        """Simulate the member crashing (heartbeats cease)."""
        self.alive = False

    def _run(self):
        while self.alive:
            self.host.send(self.monitor_node, payload=self.host.name,
                           size=16, port=HEARTBEAT_PORT,
                           headers={"type": "heartbeat"})
            yield self.env.timeout(self.interval)


class MonitoredMembership:
    """Wires heartbeat failure detection to a group's membership.

    Every member sends heartbeats to the coordinator's host; a silent
    member is suspected and removed from the view automatically (a clean
    ``leave`` through the group, so the view change installs everywhere).
    Simulate a crash with :meth:`crash`.
    """

    def __init__(self, group, interval: float = 0.5,
                 suspect_after: float = 2.0) -> None:
        coordinator = group.coordinator
        if coordinator is None:
            raise GroupError("cannot monitor an empty group")
        self.group = group
        self.interval = interval
        monitor_host = group.endpoints[coordinator].host
        self.senders = {}
        members = [m for m in group.view.members]
        self.monitor = HeartbeatMonitor(
            monitor_host, [m for m in members if m != coordinator],
            suspect_after=suspect_after,
            check_interval=interval / 2,
            on_suspect=self._on_suspect)
        for member in members:
            if member == coordinator:
                continue
            self.senders[member] = HeartbeatSender(
                group.endpoints[member].host, coordinator,
                interval=interval)

    def watch_new_member(self, member: str) -> None:
        """Start monitoring a member that joined after construction."""
        if member in self.senders:
            return
        coordinator = self.group.coordinator
        self.monitor.watch(member)
        self.senders[member] = HeartbeatSender(
            self.group.endpoints[member].host, coordinator,
            interval=self.interval)

    def crash(self, member: str) -> None:
        """Simulate ``member`` failing (its heartbeats stop)."""
        sender = self.senders.get(member)
        if sender is None:
            raise GroupError("{} is not monitored".format(member))
        sender.stop()

    def _on_suspect(self, member: str) -> None:
        self.monitor.unwatch(member)
        self.senders.pop(member, None)
        self.group.fail_member(member)


class HeartbeatMonitor:
    """Watches heartbeats and reports suspected members."""

    def __init__(self, host: Host, members: List[str],
                 suspect_after: float = 3.0,
                 check_interval: float = 0.5,
                 on_suspect: Optional[Callable[[str], None]] = None) -> None:
        if suspect_after <= 0 or check_interval <= 0:
            raise GroupError("timeouts must be positive")
        self.host = host
        self.env = host.env
        self.suspect_after = suspect_after
        self.check_interval = check_interval
        self.on_suspect = on_suspect
        self.last_heard: Dict[str, float] = {
            member: self.env.now for member in members}
        self.suspected: List[str] = []
        host.on_packet(HEARTBEAT_PORT, self._on_heartbeat)
        self.process = self.env.process(self._run())

    def watch(self, member: str) -> None:
        """Start watching an additional member."""
        self.last_heard[member] = self.env.now

    def unwatch(self, member: str) -> None:
        """Stop watching a member (e.g. after a clean leave)."""
        self.last_heard.pop(member, None)
        if member in self.suspected:
            self.suspected.remove(member)

    def is_suspected(self, member: str) -> bool:
        return member in self.suspected

    def _on_heartbeat(self, packet: Packet) -> None:
        member = packet.payload
        if member in self.last_heard:
            self.last_heard[member] = self.env.now
            if member in self.suspected:
                # The member was wrongly suspected and has reappeared.
                self.suspected.remove(member)

    def _run(self):
        while True:
            yield self.env.timeout(self.check_interval)
            now = self.env.now
            for member, heard in list(self.last_heard.items()):
                silent = now - heard
                if silent >= self.suspect_after \
                        and member not in self.suspected:
                    self.suspected.append(member)
                    if self.on_suspect is not None:
                        self.on_suspect(member)
