"""Group communication: ordering, membership, failure detection, group RPC.

This package supplies the group-interaction machinery the paper requires of
ODP (§4.2.2-iv): ordered group broadcast (unordered / FIFO / causal /
total), coordinator-managed membership views, heartbeat failure detection
and deadline-bounded group invocation.
"""

from repro.groups.clocks import LamportClock, VectorClock
from repro.groups.failure import (
    HEARTBEAT_PORT,
    FixedTimeout,
    HeartbeatMonitor,
    HeartbeatSender,
    MonitoredMembership,
)
from repro.groups.group import (
    GROUP_PORT,
    GroupEndpoint,
    GroupView,
    ProcessGroup,
)
from repro.groups.invocation import (
    GROUP_RPC_PORT,
    GroupCallResult,
    GroupInvoker,
    QUORUM_ALL,
    QUORUM_ANY,
    QUORUM_MAJORITY,
)
from repro.groups.messages import GroupMessage
from repro.groups.ordering import (
    CausalDelivery,
    FifoDelivery,
    ORDERINGS,
    TotalDelivery,
    UnorderedDelivery,
    make_ordering,
)

__all__ = [
    "CausalDelivery",
    "FifoDelivery",
    "GROUP_PORT",
    "GROUP_RPC_PORT",
    "GroupCallResult",
    "GroupEndpoint",
    "GroupInvoker",
    "GroupMessage",
    "GroupView",
    "HEARTBEAT_PORT",
    "FixedTimeout",
    "HeartbeatMonitor",
    "HeartbeatSender",
    "LamportClock",
    "MonitoredMembership",
    "ORDERINGS",
    "ProcessGroup",
    "QUORUM_ALL",
    "QUORUM_ANY",
    "QUORUM_MAJORITY",
    "TotalDelivery",
    "UnorderedDelivery",
    "VectorClock",
    "make_ordering",
]
