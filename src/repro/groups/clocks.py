"""Logical clocks: Lamport scalar clocks and vector clocks.

Vector clocks carry the causal history that the causal-ordering protocol
(§3.1 requirement: cooperative interactions must respect the order users
perceive) uses to hold back messages until their causes have arrived.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional


class LamportClock:
    """A scalar logical clock."""

    def __init__(self) -> None:
        self.time = 0

    def tick(self) -> int:
        """Advance for a local event; returns the new time."""
        self.time += 1
        return self.time

    def update(self, received: int) -> int:
        """Merge a received timestamp; returns the new local time."""
        self.time = max(self.time, received) + 1
        return self.time


class VectorClock:
    """A vector clock over named processes.

    Immutable-style API: operations return new instances, so snapshots can
    be attached to messages without defensive copying.
    """

    __slots__ = ("_clock",)

    def __init__(self, clock: Optional[Dict[str, int]] = None) -> None:
        self._clock: Dict[str, int] = dict(clock or {})

    def get(self, process: str) -> int:
        """The component for ``process`` (0 if never seen)."""
        return self._clock.get(process, 0)

    def increment(self, process: str) -> "VectorClock":
        """A new clock with ``process``'s component advanced by one."""
        clock = dict(self._clock)
        clock[process] = clock.get(process, 0) + 1
        return VectorClock(clock)

    def merge(self, other: "VectorClock") -> "VectorClock":
        """Component-wise maximum of the two clocks."""
        clock = dict(self._clock)
        for process, time in other._clock.items():
            if time > clock.get(process, 0):
                clock[process] = time
        return VectorClock(clock)

    def dominates(self, other: "VectorClock") -> bool:
        """True if self >= other component-wise."""
        return all(self.get(p) >= t for p, t in other._clock.items())

    def happened_before(self, other: "VectorClock") -> bool:
        """Strict causal precedence: self < other."""
        return other.dominates(self) and self != other

    def concurrent_with(self, other: "VectorClock") -> bool:
        """Neither clock precedes the other."""
        return not self.dominates(other) and not other.dominates(self)

    def as_dict(self) -> Dict[str, int]:
        """A snapshot of the components."""
        return dict(self._clock)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        processes = set(self._clock) | set(other._clock)
        return all(self.get(p) == other.get(p) for p in processes)

    def __hash__(self) -> int:
        return hash(frozenset(
            (p, t) for p, t in self._clock.items() if t > 0))

    def __repr__(self) -> str:
        inner = ", ".join("{}:{}".format(p, t)
                          for p, t in sorted(self._clock.items()))
        return "VC({})".format(inner)
