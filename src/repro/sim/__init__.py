"""Discrete-event simulation kernel underpinning the repro middleware.

The kernel provides the same generator-coroutine model popularised by SimPy:
an :class:`Environment` owns the clock and event queue; *processes* are
generators that yield :class:`Event` objects and resume when they fire.

>>> from repro.sim import Environment
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(3.0)
...     return env.now
>>> proc = env.process(hello(env))
>>> env.run(proc)
3.0
"""

from repro.sim.environment import Environment, drive
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from repro.sim.monitor import Counter, Tally, TimeSeries, histogram
from repro.sim.resources import (
    Container,
    PriorityResource,
    Resource,
    Store,
)
from repro.sim.rng import (
    RandomStreams,
    bounded_normal,
    exponential,
    weighted_choice,
    zipf_index,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Counter",
    "Environment",
    "Event",
    "Interrupt",
    "PriorityResource",
    "Process",
    "RandomStreams",
    "Resource",
    "Store",
    "Tally",
    "TimeSeries",
    "Timeout",
    "bounded_normal",
    "drive",
    "exponential",
    "histogram",
    "weighted_choice",
    "zipf_index",
]
