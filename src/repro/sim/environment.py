"""The simulation environment: clock, event queue and run loop.

The default event queue is a *ladder/calendar queue* (PR 10): the next
events live in one sorted "current run" list drained from the tail by
``list.pop()``, and future events are binned into unsorted buckets that
are sorted (C timsort) only when they become the current run.  Enqueue
and dequeue are O(1) amortised — no heap sifting — while the bucket
width re-anchors automatically from the observed event density, so
Zipf-skewed delay distributions keep near-target run lengths.  The
``(time, priority, eid)`` total order of the former binary heap is
preserved exactly, so replay digests are byte-identical; the heap
remains available as ``Environment(scheduler="heap")`` for A/B proofs
and same-machine baselines.
"""

from __future__ import annotations

import contextlib
from bisect import insort
from heapq import heappop, heappush
from typing import Any, Iterator, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    NORMAL,
    Process,
    Timeout,
)

Infinity = float("inf")

# Pre-bound allocator for Environment.timeout's fast path.
_new_timeout = Timeout.__new__

# Queue entries pack (priority, eid) into one int key: priority in the
# high bits, the schedule-order tiebreaker below.  Ordering is identical
# to the former (time, priority, eid, ...) tuples — priority dominates,
# then insertion order.  The calendar queue stores *negated* entries
# ``(-time, -key, event)`` so the current run sorts ascending yet pops
# the earliest event from the tail (an O(1) C ``list.pop()``, with no
# consumed prefix for in-run insorts to trip over).
_PRIORITY_SHIFT = 48
_NORMAL_BASE = NORMAL << _PRIORITY_SHIFT
_EID_MASK = (1 << _PRIORITY_SHIFT) - 1

# Calendar-queue tuning.  A promoted bucket near _RUN_TARGET entries
# keeps in-run insorts cheap (short memmoves) while amortising one C
# sort per ~target events; a bucket past _RUN_MAX with a nonzero time
# span is re-anchored with a finer width instead (Zipf bursts), and the
# bucket count is capped so sparse epochs never allocate huge arrays.
_RUN_TARGET = 64
_RUN_MAX = 2048
_BUCKET_CAP = 4096

#: Queue implementations selectable per environment (or process-wide
#: via :func:`set_default_scheduler` / :func:`use_scheduler`).
SCHEDULERS = ("calendar", "heap")

_default_scheduler = "calendar"


def set_default_scheduler(name: str) -> str:
    """Set the queue used by ``Environment()`` when none is passed.

    Returns the previous default.  The heap remains available so
    benches and A/B digest tests can run both schedulers interleaved in
    one process (see :func:`use_scheduler`).
    """
    if name not in SCHEDULERS:
        raise SimulationError("unknown scheduler: {!r}".format(name))
    global _default_scheduler
    previous = _default_scheduler
    _default_scheduler = name
    return previous


@contextlib.contextmanager
def use_scheduler(name: str) -> Iterator[str]:
    """Scope the default scheduler, restoring the previous on exit."""
    previous = set_default_scheduler(name)
    try:
        yield name
    finally:
        set_default_scheduler(previous)


def dispatch_parts(key: int) -> Tuple[int, int]:
    """Split a packed queue key into ``(priority, eid)``.

    The queue-agnostic accessor for dispatch journaling: consumers (the
    flight recorder, tests) receive unpacked values and never depend on
    how a particular scheduler stores its keys.
    """
    return key >> _PRIORITY_SHIFT, key & _EID_MASK


class EmptySchedule(SimulationError):
    """Raised internally when the event queue runs dry."""


class StopSimulation(Exception):
    """Raised to end :meth:`Environment.run` when its until-event fires."""


class Environment:
    """A discrete-event simulation environment.

    All simulated activity in the repro library — network packets, user
    think-times, stream frames, lock waits — is driven by one environment.
    Time is a float in seconds and only advances through :meth:`run`.
    """

    def __init__(self, initial_time: float = 0.0,
                 scheduler: Optional[str] = None) -> None:
        if scheduler is None:
            scheduler = _default_scheduler
        if scheduler not in SCHEDULERS:
            raise SimulationError(
                "unknown scheduler: {!r}".format(scheduler))
        self._now = float(initial_time)
        self._eid = 0
        self._active_process: Optional[Process] = None
        # Ladder/calendar queue state.  ``_qrun`` holds negated entries
        # sorted ascending (earliest event last); ``_qbuckets[j]`` holds
        # unsorted entries with int((t - _qstart) * _qinvw) == j for
        # j >= _qcursor (buckets below the cursor are always empty —
        # their window is the current run, reached via insort); and
        # ``_qover`` collects everything beyond the bucketed horizon,
        # re-anchored wholesale when the cursor exhausts the buckets.
        # The unanchored bootstrap (no buckets, _qinvw 0.0) routes every
        # push to the overflow until the first promote.
        self._qrun: List[Tuple[float, int, Event]] = []
        self._qbuckets: List[List[Tuple[float, int, Event]]] = []
        self._qcursor = 0
        self._qstart = 0.0
        self._qinvw = 0.0
        self._qover: List[Tuple[float, int, Event]] = []
        # Legacy binary heap: None selects the calendar queue; a list
        # makes every push/pop site take its heappush/heappop branch.
        self._heap: Optional[List[Tuple[float, int, Event]]] = \
            [] if scheduler == "heap" else None
        # Event-loop counter: a plain int so the hot path stays cheap.
        # (events_scheduled is derived from the schedule-order tiebreaker
        # ``_eid``, which advances in lockstep with it by construction.)
        self.events_processed = 0
        # Window-boundary hook (see set_window_hook): fired from inside
        # the event loop when the clock reaches each boundary, without
        # scheduling any events — so the scheduling counters the replay
        # digests cover are identical with or without a hook installed.
        # With no hook, ``_window_next`` is infinity and the loop pays
        # one float compare per event.
        self._window_hook: Optional[Any] = None
        self._window_interval = 0.0
        self._window_anchor = 0.0
        self._window_index = 0
        self._window_next = Infinity
        # Flight recorder (repro.obs.flight): bound once at construction
        # from the process-wide default — install one with use_flight()
        # *before* creating the environment.  The import is lazy (like
        # process()'s tracer lookup) so the kernel never pulls repro.obs
        # onto its import path; flight.py itself is stdlib-only.  With
        # no recorder both attributes are None and the run loop pays one
        # identity check per event, mirroring the window hook.
        from repro.obs.flight import get_flight
        flight = get_flight()
        if flight.enabled:
            self._flight: Optional[Any] = flight
            self._flight_dispatch: Optional[Any] = flight.on_dispatch
        else:
            self._flight = None
            self._flight_dispatch = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def scheduler(self) -> str:
        """Which queue implementation this environment runs on."""
        return "heap" if self._heap is not None else "calendar"

    @property
    def events_scheduled(self) -> int:
        """Events ever queued.

        The schedule-order tiebreaker ``_eid`` increments exactly once
        per queued event, so it doubles as this counter — one less
        attribute store on every schedule.
        """
        return self._eid

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being advanced, if any."""
        return self._active_process

    # -- event factories --------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    # repro: fast-path — the kernel's hottest allocation site; no
    # blocking claims here (repro.analysis.protocol enforces RPR204).
    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now.

        This is the kernel's hottest allocation site (one per packet hop,
        think-gap and retry timer), so the event is built field-by-field
        and queued inline — observably identical to ``Timeout(...)``,
        including the scheduling counters the replay digests cover.
        """
        if delay < 0:
            raise SimulationError("negative delay: {!r}".format(delay))
        event = _new_timeout(Timeout)
        event.env = self
        event.callbacks = []
        event._value = value
        event._exception = None
        event._ok = True
        event.defused = False
        event.delay = delay
        self._eid += 1
        time = self._now + delay
        heap = self._heap
        if heap is not None:
            heappush(heap, (time, _NORMAL_BASE + self._eid, event))
            return event
        # Inlined ladder push (sync: Environment._push carries the
        # reference copy of this logic and the ordering argument).
        j = int((time - self._qstart) * self._qinvw)
        if j < self._qcursor:
            insort(self._qrun, (-time, -_NORMAL_BASE - self._eid, event))
        else:
            buckets = self._qbuckets
            if j < len(buckets):
                buckets[j].append(
                    (-time, -_NORMAL_BASE - self._eid, event))
            else:
                self._qover.append(
                    (-time, -_NORMAL_BASE - self._eid, event))
        return event

    def process(self, generator, name: Optional[str] = None) -> Process:
        """Start a new process from a generator.

        ``name`` optionally labels the process as an *actor* for the
        sim-time profiler (:mod:`repro.obs.profile`): while a recording
        tracer is installed, the process's whole lifetime is wrapped in
        an ``actor.run`` span (exposed as ``process.span``), so per-actor
        simulated-time accounting — and parenting of the actor's own
        spans via ``env.active_process.span`` — comes for free.  Unnamed
        processes and runs without a tracer are completely unaffected.
        """
        process = Process(self, generator)
        if name is not None:
            from repro.obs.tracer import get_tracer
            tracer = get_tracer()
            if tracer.enabled:
                span = tracer.start_span("actor.run", at=self._now,
                                         actor=name)
                process.span = span
                process.callbacks.append(
                    lambda _event: span.finish(at=self._now))
            flight = self._flight
            if flight is not None and flight.journal_actors:
                flight.record_spawn(name)
                process.callbacks.append(
                    lambda event: flight.record_exit(name, event._ok))
        return process

    def all_of(self, events) -> AllOf:
        """An event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """An event that fires when any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------

    def schedule(self, event: Event, priority: int = NORMAL,
                 delay: float = 0.0) -> None:
        """Queue ``event`` to fire ``delay`` seconds from now."""
        self._eid += 1
        key = (priority << _PRIORITY_SHIFT) + self._eid
        time = self._now + delay
        heap = self._heap
        if heap is not None:
            heappush(heap, (time, key, event))
        else:
            self._push(time, key, event)

    # repro: fast-path — ladder enqueue; hot call sites in sim/net
    # inline the common branches of this exact logic (sync notices at
    # each site point back here).
    def _push(self, time: float, key: int, event: Event) -> None:
        """Ladder enqueue preserving the exact ``(time, key)`` order.

        The bucket index is computed *only* from ``int((time - start) *
        invw)`` — never from a separately-derived boundary — so two
        entries with the same time can never be routed inconsistently by
        float rounding.  Entries mapping below the cursor belong to the
        current run's window (or, for ``j < 0``, precede the anchor
        entirely) and are insorted into the sorted run; entries beyond
        the bucketed horizon collect in the overflow until a re-anchor.
        ``time`` at or beyond ~1e308 (or infinity) would overflow the
        index arithmetic; those park in the overflow, whose re-anchor
        degenerates to a single sorted run.
        """
        entry = (-time, -key, event)
        try:
            j = int((time - self._qstart) * self._qinvw)
        except (OverflowError, ValueError):
            self._qover.append(entry)
            return
        if j < self._qcursor:
            insort(self._qrun, entry)
        else:
            buckets = self._qbuckets
            if j < len(buckets):
                buckets[j].append(entry)
            else:
                self._qover.append(entry)

    def _promote(self) -> bool:
        """Make the current run non-empty; False when the queue is dry.

        Advances the bucket cursor to the next non-empty bucket and
        sorts it into place as the run (one C sort per ~_RUN_TARGET
        events).  Oversized buckets with a nonzero time span re-anchor
        at a finer width — remaining buckets demote to the overflow
        first, so one dense window cannot starve the epoch.  When the
        buckets are exhausted the overflow re-anchors wholesale with a
        width chosen from its own density (span * target / count):
        sparse epochs widen, dense epochs narrow, no manual tuning.
        """
        while True:
            if self._qrun:
                return True
            buckets = self._qbuckets
            j = self._qcursor
            n = len(buckets)
            while j < n and not buckets[j]:
                j += 1
            if j < n:
                bucket = buckets[j]
                buckets[j] = []
                self._qcursor = j + 1
                if len(bucket) > _RUN_MAX:
                    times = [entry[0] for entry in bucket]
                    lo, hi = -max(times), -min(times)
                    if lo < hi < Infinity:
                        over = self._qover
                        for rest in buckets[self._qcursor:]:
                            if rest:
                                over.extend(rest)
                        self._reanchor(bucket, lo, hi)
                        continue
                    # Zero span (a dense same-time burst): no width can
                    # split it; sort once and serve it as one run.
                bucket.sort()
                self._qrun = bucket
                return True
            over = self._qover
            if not over:
                # Fully drained: back to the unanchored bootstrap so
                # later pushes can't index stale windows.
                self._qbuckets = []
                self._qcursor = 0
                self._qstart = 0.0
                self._qinvw = 0.0
                return False
            self._qover = []
            times = [entry[0] for entry in over]
            lo, hi = -max(times), -min(times)
            if -Infinity < lo < hi < Infinity:
                self._reanchor(over, lo, hi)
                continue
            # Single-instant or non-finite epoch: serve it as one
            # sorted run; cursor 1 + zero inverse width routes every
            # push (j == 0 < 1) into the run until it drains.
            over.sort()
            self._qrun = over
            self._qbuckets = []
            self._qcursor = 1
            self._qstart = 0.0
            self._qinvw = 0.0
            return True

    def _reanchor(self, entries: List[Tuple[float, int, Event]],
                  lo: float, hi: float) -> None:
        """Rebuild the buckets over ``entries`` spanning [lo, hi].

        Width targets ~_RUN_TARGET entries per bucket at the observed
        density; the bucket count is capped so a sparse far-future tail
        cannot allocate unbounded arrays (the tail simply lands in the
        last bucket and re-splits on its own promote).
        """
        count = len(entries)
        span = hi - lo
        width = span * _RUN_TARGET / count
        buckets_needed = int(span / width) + 2
        if buckets_needed > _BUCKET_CAP:
            buckets_needed = _BUCKET_CAP
            width = span / (buckets_needed - 1)
        try:
            invw = 1.0 / width
        except ZeroDivisionError:
            invw = Infinity
        if not 0.0 < invw < Infinity:
            # Degenerate width (subnormal span or overflow): same
            # single-sorted-run fallback as a zero-span epoch.
            entries.sort()
            self._qrun = entries
            self._qbuckets = []
            self._qcursor = 1
            self._qstart = 0.0
            self._qinvw = 0.0
            return
        buckets: List[List[Tuple[float, int, Event]]] = \
            [[] for _ in range(buckets_needed)]
        last = buckets_needed - 1
        for entry in entries:
            j = int((-entry[0] - lo) * invw)
            if j > last:
                j = last
            elif j < 0:
                j = 0
            buckets[j].append(entry)
        self._qbuckets = buckets
        self._qcursor = 0
        self._qstart = lo
        self._qinvw = invw

    def _queue_depth(self) -> int:
        """Pending events across run, buckets and overflow."""
        if self._heap is not None:
            return len(self._heap)
        return len(self._qrun) + sum(map(len, self._qbuckets)) \
            + len(self._qover)

    # -- window-boundary hook ----------------------------------------------

    def set_window_hook(self, interval: float, callback,
                        start: Optional[float] = None) -> None:
        """Call ``callback(boundary_time)`` at fixed sim-time boundaries.

        Boundaries are ``start + k*interval`` for ``k = 1, 2, ...``
        (``start`` defaults to the current time).  The hook fires from
        inside the event loop, *before* the callbacks of the event that
        reached the boundary run, so a flush at boundary ``B`` observes
        exactly the effects of events with ``t < B`` — a deterministic
        cut of the timeline.  No events are scheduled on its behalf:
        ``events_scheduled`` / ``events_processed`` are identical with
        or without a hook, which is what keeps timeline recording
        invisible to replay digests.  The callback must not advance the
        clock; scheduling new events from it is allowed but defeats
        that invisibility.

        Only one hook may be installed at a time (the timeline recorder
        owns it); installing over an existing one raises.
        """
        if interval <= 0:
            raise SimulationError(
                "window interval must be positive: {!r}".format(interval))
        if self._window_hook is not None:
            raise SimulationError("a window hook is already installed")
        self._window_hook = callback
        self._window_interval = float(interval)
        self._window_anchor = self._now if start is None else float(start)
        self._window_index = 1
        self._window_next = self._window_anchor + self._window_interval

    def clear_window_hook(self) -> None:
        """Uninstall the window hook (idempotent)."""
        self._window_hook = None
        self._window_interval = 0.0
        self._window_anchor = 0.0
        self._window_index = 0
        self._window_next = Infinity

    def _fire_window_hook(self) -> None:
        """Fire the hook for every boundary the clock has reached.

        Boundaries are computed as ``anchor + index*interval`` (not by
        repeated addition), so long runs do not accumulate float drift.
        """
        hook = self._window_hook
        while self._now >= self._window_next:
            boundary = self._window_next
            self._window_index += 1
            self._window_next = self._window_anchor \
                + self._window_index * self._window_interval
            hook(boundary)

    def peek(self) -> float:
        """Time of the next scheduled event, or infinity if none."""
        heap = self._heap
        if heap is not None:
            return heap[0][0] if heap else Infinity
        if not self._qrun and not self._promote():
            return Infinity
        return -self._qrun[-1][0]

    def step(self) -> None:
        """Process the single next event, advancing the clock to it."""
        heap = self._heap
        if heap is not None:
            try:
                self._now, key, event = heappop(heap)
            except IndexError:
                raise EmptySchedule("no more events")
        else:
            if not self._qrun and not self._promote():
                raise EmptySchedule("no more events")
            neg_time, neg_key, event = self._qrun.pop()
            self._now = -neg_time
            key = -neg_key
        if self._flight_dispatch is not None:
            self._flight_dispatch(self._now, key >> _PRIORITY_SHIFT,
                                  key & _EID_MASK)
        if self._now >= self._window_next:
            self._fire_window_hook()
        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event.defused:
            raise event._exception

    # repro: fast-path — the drain loop below is step() inlined; no
    # blocking claims here (repro.analysis.protocol enforces RPR204).
    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue is empty), a number
        (run until that simulated time) or an :class:`Event` (run until it
        fires, returning its value).
        """
        until_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                until_event = until
            else:
                at = float(until)
                if at < self._now:
                    raise SimulationError(
                        "until ({}) is in the past (now={})".format(
                            at, self._now))
                until_event = Event(self)
                until_event._ok = True
                until_event._value = None
                self.schedule(until_event, priority=0, delay=at - self._now)
            if until_event.callbacks is None:
                # The event has already been processed; nothing to run.
                return until_event.value if until_event.ok else None
            until_event.callbacks.append(_stop_simulation)
        # The drain loop is step() inlined: at hundreds of thousands of
        # events per run the per-call overhead of dispatching to step()
        # is itself a measurable slice of wall time.  Behaviour
        # (counters, exception escalation, StopSimulation) is identical.
        #
        # The flight dispatch hook is hoisted into a local like the
        # queue: it journals (time, priority, eid) per event and drives
        # the recorder's epoch clock, scheduling zero events — replay
        # digests are identical with or without it (the O2 bench
        # asserts this).  None (the default) costs one check per event.
        #
        # The processed count is batched in a local and flushed once on
        # the way out (including via exceptions): nothing observes
        # ``events_processed`` while run() is on the stack — stats() is
        # only read between runs — and the attribute store per event is
        # measurable at storm scale.
        flight_dispatch = self._flight_dispatch
        processed = 0
        try:
            if self._heap is not None:
                queue = self._heap
                pop = heappop
                while True:
                    try:
                        self._now, key, event = pop(queue)
                    except IndexError:
                        raise EmptySchedule("no more events")
                    if flight_dispatch is not None:
                        flight_dispatch(self._now,
                                        key >> _PRIORITY_SHIFT,
                                        key & _EID_MASK)
                    if self._now >= self._window_next:
                        self._fire_window_hook()
                    processed += 1
                    callbacks, event.callbacks = event.callbacks, None
                    for callback in callbacks:
                        callback(event)
                    if event._ok is False and not event.defused:
                        raise event._exception
            # Calendar drain: pop the earliest entry off the tail of the
            # sorted run (O(1), physically removed — in-run insorts from
            # callbacks always land among *pending* entries), promoting
            # the next bucket whenever the run empties.  ``while run``
            # re-checks after every event because callbacks may insort
            # into the very list being drained.  The loop body comes in
            # a with-flight and a without-flight variant so the common
            # (no recorder) case skips even the per-event None check,
            # and single-callback events — the overwhelming majority:
            # one waiter per timeout/claim — dispatch without the
            # for-loop setup.
            run = self._qrun
            pop = run.pop
            while True:
                if flight_dispatch is None:
                    while run:
                        neg_time, neg_key, event = pop()
                        self._now = now = -neg_time
                        if now >= self._window_next:
                            self._fire_window_hook()
                        processed += 1
                        callbacks, event.callbacks = event.callbacks, None
                        if len(callbacks) == 1:
                            callbacks[0](event)
                        else:
                            for callback in callbacks:
                                callback(event)
                        if event._ok is False and not event.defused:
                            raise event._exception
                else:
                    while run:
                        neg_time, neg_key, event = pop()
                        self._now = now = -neg_time
                        key = -neg_key
                        flight_dispatch(now, key >> _PRIORITY_SHIFT,
                                        key & _EID_MASK)
                        if now >= self._window_next:
                            self._fire_window_hook()
                        processed += 1
                        callbacks, event.callbacks = event.callbacks, None
                        if len(callbacks) == 1:
                            callbacks[0](event)
                        else:
                            for callback in callbacks:
                                callback(event)
                        if event._ok is False and not event.defused:
                            raise event._exception
                if not self._promote():
                    raise EmptySchedule("no more events")
                run = self._qrun
                pop = run.pop
        except StopSimulation as stop:
            return stop.args[0].value if stop.args[0]._ok else None
        except EmptySchedule:
            if until_event is not None and not until_event.triggered:
                raise SimulationError(
                    "simulation ran out of events before 'until' fired")
            return None
        finally:
            self.events_processed += processed

    # -- convenience -------------------------------------------------------

    def stats(self) -> dict:
        """Event-loop counters (for the observability snapshot)."""
        return {
            "now": self._now,
            "events_scheduled": self.events_scheduled,
            "events_processed": self.events_processed,
            "queue_depth": self._queue_depth(),
        }

    def run_all(self, limit: float = 1e9) -> None:
        """Drain the queue, guarding against runaway simulations."""
        while True:
            head = self.peek()
            if head > limit or head == Infinity:
                return
            self.step()


def _stop_simulation(event: Event) -> None:
    raise StopSimulation(event)


def drive(root_factory, until: Any = None) -> Any:
    """Run a fresh environment around a single root process.

    ``root_factory`` is called with the new environment and must return a
    generator, which becomes the root process.  Returns that process's
    return value (or ``None`` if ``until`` cut the run short).
    """
    env = Environment()
    proc = env.process(root_factory(env))
    env.run(proc if until is None else until)
    return proc.value if proc.triggered and proc.ok else None
