"""The simulation environment: clock, event queue and run loop."""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Iterator, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    NORMAL,
    Process,
    Timeout,
)

Infinity = float("inf")

# Pre-bound allocator for Environment.timeout's fast path.
_new_timeout = Timeout.__new__

# Queue entries are (time, key, event) where key packs (priority, eid)
# into one int: priority in the high bits, the schedule-order tiebreaker
# below.  Ordering is identical to the former (time, priority, eid, ...)
# tuples — priority dominates, then insertion order — but entries are a
# quarter smaller and heap sifts compare one int instead of two.
_PRIORITY_SHIFT = 48
_NORMAL_BASE = NORMAL << _PRIORITY_SHIFT


class EmptySchedule(SimulationError):
    """Raised internally when the event queue runs dry."""


class StopSimulation(Exception):
    """Raised to end :meth:`Environment.run` when its until-event fires."""


class Environment:
    """A discrete-event simulation environment.

    All simulated activity in the repro library — network packets, user
    think-times, stream frames, lock waits — is driven by one environment.
    Time is a float in seconds and only advances through :meth:`run`.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        # Event-loop counter: a plain int so the hot path stays cheap.
        # (events_scheduled is derived from the schedule-order tiebreaker
        # ``_eid``, which advances in lockstep with it by construction.)
        self.events_processed = 0
        # Window-boundary hook (see set_window_hook): fired from inside
        # the event loop when the clock reaches each boundary, without
        # scheduling any events — so the scheduling counters the replay
        # digests cover are identical with or without a hook installed.
        # With no hook, ``_window_next`` is infinity and the loop pays
        # one float compare per event.
        self._window_hook: Optional[Any] = None
        self._window_interval = 0.0
        self._window_anchor = 0.0
        self._window_index = 0
        self._window_next = Infinity
        # Flight recorder (repro.obs.flight): bound once at construction
        # from the process-wide default — install one with use_flight()
        # *before* creating the environment.  The import is lazy (like
        # process()'s tracer lookup) so the kernel never pulls repro.obs
        # onto its import path; flight.py itself is stdlib-only.  With
        # no recorder both attributes are None and the run loop pays one
        # identity check per event, mirroring the window hook.
        from repro.obs.flight import get_flight
        flight = get_flight()
        if flight.enabled:
            self._flight: Optional[Any] = flight
            self._flight_dispatch: Optional[Any] = flight.on_dispatch
        else:
            self._flight = None
            self._flight_dispatch = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_scheduled(self) -> int:
        """Events ever queued.

        The schedule-order tiebreaker ``_eid`` increments exactly once
        per queued event, so it doubles as this counter — one less
        attribute store on every schedule.
        """
        return self._eid

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being advanced, if any."""
        return self._active_process

    # -- event factories --------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now.

        This is the kernel's hottest allocation site (one per packet hop,
        think-gap and retry timer), so the event is built field-by-field
        and queued inline — observably identical to ``Timeout(...)``,
        including the scheduling counters the replay digests cover.
        """
        if delay < 0:
            raise SimulationError("negative delay: {!r}".format(delay))
        event = _new_timeout(Timeout)
        event.env = self
        event.callbacks = []
        event._value = value
        event._exception = None
        event._ok = True
        event.defused = False
        event.delay = delay
        self._eid += 1
        heappush(self._queue,
                 (self._now + delay, _NORMAL_BASE + self._eid, event))
        return event

    def process(self, generator, name: Optional[str] = None) -> Process:
        """Start a new process from a generator.

        ``name`` optionally labels the process as an *actor* for the
        sim-time profiler (:mod:`repro.obs.profile`): while a recording
        tracer is installed, the process's whole lifetime is wrapped in
        an ``actor.run`` span (exposed as ``process.span``), so per-actor
        simulated-time accounting — and parenting of the actor's own
        spans via ``env.active_process.span`` — comes for free.  Unnamed
        processes and runs without a tracer are completely unaffected.
        """
        process = Process(self, generator)
        if name is not None:
            from repro.obs.tracer import get_tracer
            tracer = get_tracer()
            if tracer.enabled:
                span = tracer.start_span("actor.run", at=self._now,
                                         actor=name)
                process.span = span
                process.callbacks.append(
                    lambda _event: span.finish(at=self._now))
            flight = self._flight
            if flight is not None and flight.journal_actors:
                flight.record_spawn(name)
                process.callbacks.append(
                    lambda event: flight.record_exit(name, event._ok))
        return process

    def all_of(self, events) -> AllOf:
        """An event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """An event that fires when any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------

    def schedule(self, event: Event, priority: int = NORMAL,
                 delay: float = 0.0) -> None:
        """Queue ``event`` to fire ``delay`` seconds from now."""
        self._eid += 1
        heappush(self._queue,
                 (self._now + delay,
                  (priority << _PRIORITY_SHIFT) + self._eid, event))

    # -- window-boundary hook ----------------------------------------------

    def set_window_hook(self, interval: float, callback,
                        start: Optional[float] = None) -> None:
        """Call ``callback(boundary_time)`` at fixed sim-time boundaries.

        Boundaries are ``start + k*interval`` for ``k = 1, 2, ...``
        (``start`` defaults to the current time).  The hook fires from
        inside the event loop, *before* the callbacks of the event that
        reached the boundary run, so a flush at boundary ``B`` observes
        exactly the effects of events with ``t < B`` — a deterministic
        cut of the timeline.  No events are scheduled on its behalf:
        ``events_scheduled`` / ``events_processed`` are identical with
        or without a hook, which is what keeps timeline recording
        invisible to replay digests.  The callback must not advance the
        clock; scheduling new events from it is allowed but defeats
        that invisibility.

        Only one hook may be installed at a time (the timeline recorder
        owns it); installing over an existing one raises.
        """
        if interval <= 0:
            raise SimulationError(
                "window interval must be positive: {!r}".format(interval))
        if self._window_hook is not None:
            raise SimulationError("a window hook is already installed")
        self._window_hook = callback
        self._window_interval = float(interval)
        self._window_anchor = self._now if start is None else float(start)
        self._window_index = 1
        self._window_next = self._window_anchor + self._window_interval

    def clear_window_hook(self) -> None:
        """Uninstall the window hook (idempotent)."""
        self._window_hook = None
        self._window_interval = 0.0
        self._window_anchor = 0.0
        self._window_index = 0
        self._window_next = Infinity

    def _fire_window_hook(self) -> None:
        """Fire the hook for every boundary the clock has reached.

        Boundaries are computed as ``anchor + index*interval`` (not by
        repeated addition), so long runs do not accumulate float drift.
        """
        hook = self._window_hook
        while self._now >= self._window_next:
            boundary = self._window_next
            self._window_index += 1
            self._window_next = self._window_anchor \
                + self._window_index * self._window_interval
            hook(boundary)

    def peek(self) -> float:
        """Time of the next scheduled event, or infinity if none."""
        if not self._queue:
            return Infinity
        return self._queue[0][0]

    def step(self) -> None:
        """Process the single next event, advancing the clock to it."""
        try:
            self._now, key, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no more events")
        if self._flight_dispatch is not None:
            self._flight_dispatch(self._now, key)
        if self._now >= self._window_next:
            self._fire_window_hook()
        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event.defused:
            raise event._exception

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue is empty), a number
        (run until that simulated time) or an :class:`Event` (run until it
        fires, returning its value).
        """
        until_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                until_event = until
            else:
                at = float(until)
                if at < self._now:
                    raise SimulationError(
                        "until ({}) is in the past (now={})".format(
                            at, self._now))
                until_event = Event(self)
                until_event._ok = True
                until_event._value = None
                self.schedule(until_event, priority=0, delay=at - self._now)
            if until_event.callbacks is None:
                # The event has already been processed; nothing to run.
                return until_event.value if until_event.ok else None
            until_event.callbacks.append(_stop_simulation)
        # The drain loop is step() inlined: at hundreds of thousands of
        # events per run the per-call overhead of dispatching to step()
        # is itself a measurable slice of wall time.  Behaviour
        # (counters, exception escalation, StopSimulation) is identical.
        queue = self._queue
        pop = heappop
        # The flight dispatch hook is hoisted into a local like ``pop``:
        # it journals (time, eid, priority) per event and drives the
        # recorder's epoch clock, scheduling zero events — replay
        # digests are identical with or without it (the O2 bench
        # asserts this).  None (the default) costs one check per event.
        flight_dispatch = self._flight_dispatch
        # The processed count is batched in a local and flushed once on
        # the way out (including via exceptions): nothing observes
        # ``events_processed`` while run() is on the stack — stats() is
        # only read between runs — and the attribute store per event is
        # measurable at storm scale.
        processed = 0
        try:
            while True:
                try:
                    self._now, key, event = pop(queue)
                except IndexError:
                    raise EmptySchedule("no more events")
                if flight_dispatch is not None:
                    flight_dispatch(self._now, key)
                if self._now >= self._window_next:
                    self._fire_window_hook()
                processed += 1
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if event._ok is False and not event.defused:
                    raise event._exception
        except StopSimulation as stop:
            return stop.args[0].value if stop.args[0]._ok else None
        except EmptySchedule:
            if until_event is not None and not until_event.triggered:
                raise SimulationError(
                    "simulation ran out of events before 'until' fired")
            return None
        finally:
            self.events_processed += processed

    # -- convenience -------------------------------------------------------

    def stats(self) -> dict:
        """Event-loop counters (for the observability snapshot)."""
        return {
            "now": self._now,
            "events_scheduled": self.events_scheduled,
            "events_processed": self.events_processed,
            "queue_depth": len(self._queue),
        }

    def run_all(self, limit: float = 1e9) -> None:
        """Drain the queue, guarding against runaway simulations."""
        while self._queue and self.peek() <= limit:
            self.step()


def _stop_simulation(event: Event) -> None:
    raise StopSimulation(event)


def drive(root_factory, until: Any = None) -> Any:
    """Run a fresh environment around a single root process.

    ``root_factory`` is called with the new environment and must return a
    generator, which becomes the root process.  Returns that process's
    return value (or ``None`` if ``until`` cut the run short).
    """
    env = Environment()
    proc = env.process(root_factory(env))
    env.run(proc if until is None else until)
    return proc.value if proc.triggered and proc.ok else None
