"""Shared-resource primitives built on the simulation kernel.

These are the queueing building blocks for the middleware layers: capacity-
limited :class:`Resource` (e.g. a CPU or a lock), :class:`PriorityResource`
(with optional preemption via interrupt), :class:`Store` (a producer/consumer
buffer used for message queues) and :class:`Container` (continuous quantity,
used e.g. for link bandwidth accounting).
"""

from __future__ import annotations

import itertools
from heapq import heappop, heappush
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError
from repro.sim.events import Event
from repro.sim.environment import Environment, _NORMAL_BASE


def _metrics():
    # Imported lazily: repro.obs.metrics itself imports repro.sim, so a
    # module-level import here would close a package-import cycle.
    from repro.obs.metrics import get_metrics
    return get_metrics()


class Request(Event):
    """A pending claim on a :class:`Resource`; fires when granted."""

    __slots__ = ("resource", "requested_at", "usage_since")

    def __init__(self, resource: "Resource") -> None:
        # Event.__init__ inlined: one request per packet hop makes this
        # the busiest event constructor in the simulator.
        env = resource.env
        self.env = env
        self.callbacks = []
        self._value = None
        self._exception = None
        self._ok = None
        self.defused = False
        self.resource = resource
        self.requested_at = env._now
        self.usage_since: Optional[float] = None
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release the claim (or withdraw the pending request)."""
        self.resource.release(self)


class Resource:
    """A resource with finite capacity and a FIFO wait queue.

    Give the resource a ``name`` to register observability hooks: a
    ``resource.queue_depth`` gauge sampled on every queue change and a
    ``resource.wait`` histogram of request-to-grant delays, both
    labelled with the name.  Unnamed resources record nothing, so hot
    anonymous queues stay cheap.
    """

    def __init__(self, env: Environment, capacity: int = 1,
                 name: Optional[str] = None) -> None:
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.users: List[Request] = []
        self.queue: List[Request] = []

    @property
    def count(self) -> int:
        """Number of requests currently holding the resource."""
        return len(self.users)

    def request(self) -> Request:
        """Claim the resource; the returned event fires when granted."""
        return Request(self)

    def release(self, request: Request) -> None:
        """Return the resource (or withdraw a queued request)."""
        # Held claims are the overwhelmingly common case (one per packet
        # hop), so try the remove directly instead of scanning with ``in``
        # first; the queued/unknown cases fall through unchanged.
        try:
            self.users.remove(request)
        except ValueError:
            if request in self.queue:
                self.queue.remove(request)
                self._sample_queue()
        self._grant_waiters()

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self.capacity:
            self._grant(request)
        else:
            self.queue.append(request)
            self._sample_queue()

    def _grant(self, request: Request) -> None:
        self.users.append(request)
        env = self.env
        request.usage_since = env._now
        if self.name is not None:
            _metrics().histogram("resource.wait", resource=self.name) \
                .record(env._now - request.requested_at)
        # request.succeed(request) inlined (one grant per packet hop);
        # a double trigger still raises, via schedule-time state instead.
        if request._ok is not None:
            raise SimulationError("event already triggered")
        request._ok = True
        request._value = request
        env._eid += 1
        heappush(env._queue, (env._now, _NORMAL_BASE + env._eid, request))

    def _grant_waiters(self) -> None:
        granted = False
        while self.queue and len(self.users) < self.capacity:
            self._grant(self._pop_next())
            granted = True
        if granted:
            self._sample_queue()

    def _pop_next(self) -> Request:
        return self.queue.pop(0)

    def _sample_queue(self) -> None:
        if self.name is not None:
            _metrics().gauge("resource.queue_depth",
                             resource=self.name) \
                .set(len(self.queue), at=self.env.now)


class PriorityRequest(Request):
    """A claim with a priority (lower value = more important).

    Ties break by request creation order, so equal-priority claims are
    strictly FIFO (deterministic simulation).  The tie-break sequence
    lives on the resource, not the module, so experiments sharing one
    process cannot perturb each other.
    """

    __slots__ = ("priority", "time", "seq")

    def __init__(self, resource: "PriorityResource", priority: int) -> None:
        # Request.__init__ (and the Event fields) inlined: one priority
        # claim per packet hop makes the super() chain measurable.
        env = resource.env
        self.env = env
        self.callbacks = []
        self._value = None
        self._exception = None
        self._ok = None
        self.defused = False
        self.resource = resource
        self.requested_at = env._now
        self.usage_since = None
        self.priority = priority
        self.time = env._now
        self.seq = next(resource._ticket)
        # _do_request's grant branch inlined for the uncontended case (a
        # fresh request can never be already-triggered, so _grant's
        # double-trigger guard is vacuous here).  Contended requests take
        # the regular queueing path.
        if len(resource.users) < resource.capacity:
            resource.users.append(self)
            self.usage_since = env._now
            if resource.name is not None:
                _metrics().histogram("resource.wait",
                                     resource=resource.name).record(0.0)
            self._ok = True
            self._value = self
            env._eid += 1
            heappush(env._queue, (env._now, _NORMAL_BASE + env._eid, self))
        else:
            resource._do_request(self)

    def __lt__(self, other: "PriorityRequest") -> bool:
        return (self.priority, self.time, self.seq) < \
            (other.priority, other.time, other.seq)


class PriorityResource(Resource):
    """A resource whose wait queue is ordered by request priority."""

    def __init__(self, env: Environment, capacity: int = 1,
                 name: Optional[str] = None) -> None:
        super().__init__(env, capacity, name)
        self._ticket = itertools.count(1)

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        return PriorityRequest(self, priority)

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self.capacity:
            self._grant(request)
        else:
            heappush(self.queue, request)  # type: ignore[arg-type]
            self._sample_queue()

    def _pop_next(self) -> Request:
        return heappop(self.queue)  # type: ignore[arg-type]


class StoreGet(Event):
    """A pending take from a :class:`Store`; fires with the item."""

    __slots__ = ("filter", "store", "requested_at")

    def __init__(self, store: "Store",
                 filter: Optional[Callable[[Any], bool]] = None) -> None:
        # Event.__init__ inlined: one take per received packet.
        env = store.env
        self.env = env
        self.callbacks = []
        self._value = None
        self._exception = None
        self._ok = None
        self.defused = False
        self.filter = filter
        self.store = store
        self.requested_at = env._now
        store._getters.append(self)
        store._dispatch()

    def cancel(self) -> None:
        """Withdraw the pending take."""
        if self in self.store._getters:
            self.store._getters.remove(self)


class StorePut(Event):
    """A pending put into a :class:`Store`; fires when accepted."""

    __slots__ = ("item", "store")

    def __init__(self, store: "Store", item: Any) -> None:
        # Event.__init__ inlined: one put per delivered packet.
        self.env = store.env
        self.callbacks = []
        self._value = None
        self._exception = None
        self._ok = None
        self.defused = False
        self.item = item
        self.store = store
        store._putters.append(self)
        store._dispatch()


class Store:
    """A FIFO buffer of items with optional capacity.

    ``get`` accepts an optional filter predicate, which turns the store into
    a ``FilterStore`` (take the first matching item).
    """

    def __init__(self, env: Environment,
                 capacity: float = float("inf"),
                 name: Optional[str] = None) -> None:
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.items: List[Any] = []
        self._getters: List[StoreGet] = []
        self._putters: List[StorePut] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Add ``item``; the returned event fires once there is room."""
        return StorePut(self, item)

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        """Take the first (matching) item; fires when one is available."""
        return StoreGet(self, filter)

    def _dispatch(self) -> None:
        env = self.env
        progressed = True
        while progressed:
            progressed = False
            # Move accepted puts into the buffer.  succeed() is inlined
            # for both puts and gets (one of each per delivered message):
            # a put/get being dispatched is by construction untriggered.
            while self._putters and len(self.items) < self.capacity:
                put = self._putters.pop(0)
                self.items.append(put.item)
                put._ok = True
                env._eid += 1
                heappush(env._queue,
                         (env._now, _NORMAL_BASE + env._eid, put))
                progressed = True
            # Satisfy getters from the buffer.
            if not self._getters:
                continue
            for getter in list(self._getters):
                item = self._find(getter)
                if item is _NOTHING:
                    continue
                self.items.remove(item)
                self._getters.remove(getter)
                if self.name is not None:
                    _metrics().histogram("store.wait", store=self.name) \
                        .record(env._now - getter.requested_at)
                getter._ok = True
                getter._value = item
                env._eid += 1
                heappush(env._queue,
                         (env._now, _NORMAL_BASE + env._eid, getter))
                progressed = True
        if self.name is not None:
            _metrics().gauge("store.depth", store=self.name) \
                .set(len(self.items), at=self.env.now)

    def _find(self, getter: StoreGet) -> Any:
        if getter.filter is None:
            return self.items[0] if self.items else _NOTHING
        for item in self.items:
            if getter.filter(item):
                return item
        return _NOTHING


class _Nothing:
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<nothing>"


_NOTHING = _Nothing()


class _Amount(Event):
    """A pending :class:`Container` put/get carrying its quantity."""

    __slots__ = ("amount",)

    def __init__(self, env: Environment, amount: float) -> None:
        super().__init__(env)
        self.amount = amount


class Container:
    """A continuous quantity with blocking put/get (e.g. buffer space)."""

    def __init__(self, env: Environment, capacity: float = float("inf"),
                 init: float = 0.0) -> None:
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise SimulationError("init must be within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: List[_Amount] = []
        self._putters: List[_Amount] = []

    @property
    def level(self) -> float:
        """Current quantity held."""
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; fires once it fits under capacity."""
        if amount <= 0:
            raise SimulationError("amount must be positive")
        event = _Amount(self.env, amount)
        self._putters.append(event)
        self._dispatch()
        return event

    def get(self, amount: float) -> Event:
        """Remove ``amount``; fires once that much is available."""
        if amount <= 0:
            raise SimulationError("amount must be positive")
        event = _Amount(self.env, amount)
        self._getters.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                put = self._putters[0]
                if self._level + put.amount <= self.capacity:
                    self._putters.pop(0)
                    self._level += put.amount
                    put.succeed()
                    progressed = True
            if self._getters:
                get = self._getters[0]
                if self._level >= get.amount:
                    self._getters.pop(0)
                    self._level -= get.amount
                    get.succeed()
                    progressed = True
