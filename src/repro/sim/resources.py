"""Shared-resource primitives built on the simulation kernel.

These are the queueing building blocks for the middleware layers: capacity-
limited :class:`Resource` (e.g. a CPU or a lock), :class:`PriorityResource`
(with optional preemption via interrupt), :class:`Store` (a producer/consumer
buffer used for message queues) and :class:`Container` (continuous quantity,
used e.g. for link bandwidth accounting).
"""

from __future__ import annotations

import itertools
from bisect import insort
from heapq import heappop, heappush
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError
from repro.sim.events import Event
from repro.sim.environment import Environment, _NORMAL_BASE


def _metrics():
    # Imported lazily: repro.obs.metrics itself imports repro.sim, so a
    # module-level import here would close a package-import cycle.
    from repro.obs.metrics import get_metrics
    return get_metrics()


def _push_now(env: Environment, key: int, event: Event) -> None:
    """Queue ``event`` at the current instant on either scheduler.

    The store dispatch loop schedules a couple of events per delivered
    message; this shares the scheduler branch instead of repeating it
    at each site (sync: Environment._push carries the ladder's ordering
    argument).
    """
    heap = env._heap
    if heap is not None:
        heappush(heap, (env._now, key, event))
        return
    time = env._now
    j = int((time - env._qstart) * env._qinvw)
    if j < env._qcursor:
        insort(env._qrun, (-time, -key, event))
    else:
        buckets = env._qbuckets
        if j < len(buckets):
            buckets[j].append((-time, -key, event))
        else:
            env._qover.append((-time, -key, event))


class Request(Event):
    """A pending claim on a :class:`Resource`; fires when granted.

    ``grant_delay`` (default 0) fuses the claim with the usage that
    follows it: instead of firing at grant time and having the waiter
    immediately schedule a ``grant_delay`` timeout (two events per
    claim), the request fires once at ``grant_time + grant_delay``.
    The elided immediate-grant event is *virtually accounted* — the
    grant still consumes its eid and bumps ``events_processed`` at the
    instant it would have fired — so the scheduling counters the replay
    digests cover are byte-identical to the unfused two-event shape.
    ``usage_since`` still records the grant instant, so holders can
    recover when their usage actually began.
    """

    __slots__ = ("resource", "requested_at", "usage_since", "grant_delay")

    def __init__(self, resource: "Resource") -> None:
        # Event.__init__ inlined: one request per packet hop makes this
        # the busiest event constructor in the simulator.
        env = resource.env
        self.env = env
        self.callbacks = []
        self._value = None
        self._exception = None
        self._ok = None
        self.defused = False
        self.resource = resource
        self.requested_at = env._now
        self.usage_since: Optional[float] = None
        self.grant_delay = 0.0
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release the claim (or withdraw the pending request)."""
        self.resource.release(self)


class Resource:
    """A resource with finite capacity and a FIFO wait queue.

    Give the resource a ``name`` to register observability hooks: a
    ``resource.queue_depth`` gauge sampled on every queue change and a
    ``resource.wait`` histogram of request-to-grant delays, both
    labelled with the name.  Unnamed resources record nothing, so hot
    anonymous queues stay cheap.
    """

    def __init__(self, env: Environment, capacity: int = 1,
                 name: Optional[str] = None) -> None:
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.users: List[Request] = []
        self.queue: List[Request] = []

    @property
    def count(self) -> int:
        """Number of requests currently holding the resource."""
        return len(self.users)

    def request(self) -> Request:
        """Claim the resource; the returned event fires when granted."""
        return Request(self)

    def release(self, request: Request) -> None:
        """Return the resource (or withdraw a queued request)."""
        # Held claims are the overwhelmingly common case (one per packet
        # hop), so try the remove directly instead of scanning with ``in``
        # first; the queued/unknown cases fall through unchanged.
        try:
            self.users.remove(request)
        except ValueError:
            if request in self.queue:
                self.queue.remove(request)
                self._sample_queue()
        self._grant_waiters()

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self.capacity:
            self._grant(request)
        else:
            self.queue.append(request)
            self._sample_queue()

    def _grant(self, request: Request) -> None:
        self.users.append(request)
        env = self.env
        request.usage_since = env._now
        if self.name is not None:
            _metrics().histogram("resource.wait", resource=self.name) \
                .record(env._now - request.requested_at)
        # request.succeed(request) inlined (one grant per packet hop);
        # a double trigger still raises, via schedule-time state instead.
        if request._ok is not None:
            raise SimulationError("event already triggered")
        request._ok = True
        request._value = request
        delay = request.grant_delay
        if delay:
            # Claim+usage fusion: the immediate-grant event is elided
            # and virtually accounted (its eid and processed count land
            # at this instant, exactly where the unfused grant would
            # have popped as a resume), and the request itself fires at
            # grant + delay — one queued event instead of two.
            env._eid += 2
            env.events_processed += 1
            time = env._now + delay
        else:
            env._eid += 1
            time = env._now
        key = _NORMAL_BASE + env._eid
        heap = env._heap
        if heap is not None:
            heappush(heap, (time, key, request))
            return
        # Inlined ladder push (sync: Environment._push).
        j = int((time - env._qstart) * env._qinvw)
        if j < env._qcursor:
            insort(env._qrun, (-time, -key, request))
        else:
            buckets = env._qbuckets
            if j < len(buckets):
                buckets[j].append((-time, -key, request))
            else:
                env._qover.append((-time, -key, request))

    def _grant_waiters(self) -> None:
        granted = False
        while self.queue and len(self.users) < self.capacity:
            self._grant(self._pop_next())
            granted = True
        if granted:
            self._sample_queue()

    def _pop_next(self) -> Request:
        return self.queue.pop(0)

    def _sample_queue(self) -> None:
        if self.name is not None:
            _metrics().gauge("resource.queue_depth",
                             resource=self.name) \
                .set(len(self.queue), at=self.env.now)


class PriorityRequest(Request):
    """A claim with a priority (lower value = more important).

    Ties break by request creation order, so equal-priority claims are
    strictly FIFO (deterministic simulation).  The tie-break sequence
    lives on the resource, not the module, so experiments sharing one
    process cannot perturb each other.
    """

    __slots__ = ("priority", "time", "seq")

    # repro: fast-path — one claim per packet hop; no blocking
    # constructs here (repro.analysis.protocol enforces RPR204).
    def __init__(self, resource: "PriorityResource", priority: int,
                 grant_delay: float = 0.0) -> None:
        # Request.__init__ (and the Event fields) inlined: one priority
        # claim per packet hop makes the super() chain measurable.
        env = resource.env
        self.env = env
        self.callbacks = []
        self._value = None
        self._exception = None
        self._ok = None
        self.defused = False
        self.resource = resource
        self.requested_at = env._now
        self.usage_since = None
        self.grant_delay = grant_delay
        self.priority = priority
        self.time = env._now
        self.seq = next(resource._ticket)
        # _do_request's grant branch inlined for the uncontended case (a
        # fresh request can never be already-triggered, so _grant's
        # double-trigger guard is vacuous here).  Contended requests take
        # the regular queueing path (whose eventual _grant honours
        # grant_delay the same way).
        if len(resource.users) < resource.capacity:
            resource.users.append(self)
            self.usage_since = env._now
            if resource.name is not None:
                _metrics().histogram("resource.wait",
                                     resource=resource.name).record(0.0)
            self._ok = True
            self._value = self
            if grant_delay:
                # Claim+usage fusion — see Resource._grant: the elided
                # immediate grant is virtually accounted here.
                env._eid += 2
                env.events_processed += 1
                time = env._now + grant_delay
            else:
                env._eid += 1
                time = env._now
            key = _NORMAL_BASE + env._eid
            heap = env._heap
            if heap is not None:
                heappush(heap, (time, key, self))
                return
            # Inlined ladder push (sync: Environment._push).
            j = int((time - env._qstart) * env._qinvw)
            if j < env._qcursor:
                insort(env._qrun, (-time, -key, self))
            else:
                buckets = env._qbuckets
                if j < len(buckets):
                    buckets[j].append((-time, -key, self))
                else:
                    env._qover.append((-time, -key, self))
        else:
            resource._do_request(self)

    def __lt__(self, other: "PriorityRequest") -> bool:
        return (self.priority, self.time, self.seq) < \
            (other.priority, other.time, other.seq)


class PriorityResource(Resource):
    """A resource whose wait queue is ordered by request priority."""

    def __init__(self, env: Environment, capacity: int = 1,
                 name: Optional[str] = None) -> None:
        super().__init__(env, capacity, name)
        self._ticket = itertools.count(1)

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        return PriorityRequest(self, priority)

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self.capacity:
            self._grant(request)
        else:
            heappush(self.queue, request)  # type: ignore[arg-type]
            self._sample_queue()

    def _pop_next(self) -> Request:
        return heappop(self.queue)  # type: ignore[arg-type]


class StoreGet(Event):
    """A pending take from a :class:`Store`; fires with the item."""

    __slots__ = ("filter", "store", "requested_at")

    def __init__(self, store: "Store",
                 filter: Optional[Callable[[Any], bool]] = None) -> None:
        # Event.__init__ inlined: one take per received packet.
        env = store.env
        self.env = env
        self.callbacks = []
        self._value = None
        self._exception = None
        self._ok = None
        self.defused = False
        self.filter = filter
        self.store = store
        self.requested_at = env._now
        store._getters.append(self)
        store._dispatch()

    def cancel(self) -> None:
        """Withdraw the pending take."""
        if self in self.store._getters:
            self.store._getters.remove(self)


class StorePut(Event):
    """A pending put into a :class:`Store`; fires when accepted."""

    __slots__ = ("item", "store")

    def __init__(self, store: "Store", item: Any) -> None:
        # Event.__init__ inlined: one put per delivered packet.
        self.env = store.env
        self.callbacks = []
        self._value = None
        self._exception = None
        self._ok = None
        self.defused = False
        self.item = item
        self.store = store
        store._putters.append(self)
        store._dispatch()


class Store:
    """A FIFO buffer of items with optional capacity.

    ``get`` accepts an optional filter predicate, which turns the store into
    a ``FilterStore`` (take the first matching item).
    """

    def __init__(self, env: Environment,
                 capacity: float = float("inf"),
                 name: Optional[str] = None) -> None:
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.items: List[Any] = []
        self._getters: List[StoreGet] = []
        self._putters: List[StorePut] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Add ``item``; the returned event fires once there is room."""
        return StorePut(self, item)

    # repro: fast-path — one put per delivered packet; no blocking
    # constructs here (repro.analysis.protocol enforces RPR204).
    def put_fast(self, item: Any) -> Optional[StorePut]:
        """Fire-and-forget put with the accepted-put event elided.

        For callers that discard the put event (the network's inbox
        delivery): when the put would be accepted immediately — room in
        an unnamed store with no queued putters — nobody can ever
        subscribe to it, so popping it later is a guaranteed no-op.
        The event is elided and *virtually accounted* (eid + processed
        bump at this instant, exactly where the real put would have
        been scheduled and popped), keeping the counters replay digests
        cover byte-identical; waiting getters are then matched through
        the regular dispatch so their events keep the same eids.  Named
        stores, full stores and stores with queued putters fall back to
        the generic :meth:`put`.
        """
        if self._putters or self.name is not None \
                or len(self.items) >= self.capacity:
            return StorePut(self, item)
        env = self.env
        env._eid += 1
        env.events_processed += 1
        self.items.append(item)
        if self._getters:
            self._dispatch()
        return None

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        """Take the first (matching) item; fires when one is available."""
        return StoreGet(self, filter)

    def _dispatch(self) -> None:
        env = self.env
        progressed = True
        while progressed:
            progressed = False
            # Move accepted puts into the buffer.  succeed() is inlined
            # for both puts and gets (one of each per delivered message):
            # a put/get being dispatched is by construction untriggered.
            while self._putters and len(self.items) < self.capacity:
                put = self._putters.pop(0)
                self.items.append(put.item)
                put._ok = True
                env._eid += 1
                _push_now(env, _NORMAL_BASE + env._eid, put)
                progressed = True
            # Satisfy getters from the buffer.
            if not self._getters:
                continue
            for getter in list(self._getters):
                item = self._find(getter)
                if item is _NOTHING:
                    continue
                self.items.remove(item)
                self._getters.remove(getter)
                if self.name is not None:
                    _metrics().histogram("store.wait", store=self.name) \
                        .record(env._now - getter.requested_at)
                getter._ok = True
                getter._value = item
                env._eid += 1
                _push_now(env, _NORMAL_BASE + env._eid, getter)
                progressed = True
        if self.name is not None:
            _metrics().gauge("store.depth", store=self.name) \
                .set(len(self.items), at=self.env.now)

    def _find(self, getter: StoreGet) -> Any:
        if getter.filter is None:
            return self.items[0] if self.items else _NOTHING
        for item in self.items:
            if getter.filter(item):
                return item
        return _NOTHING


class _Nothing:
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<nothing>"


_NOTHING = _Nothing()


class _Amount(Event):
    """A pending :class:`Container` put/get carrying its quantity."""

    __slots__ = ("amount",)

    def __init__(self, env: Environment, amount: float) -> None:
        super().__init__(env)
        self.amount = amount


class Container:
    """A continuous quantity with blocking put/get (e.g. buffer space)."""

    def __init__(self, env: Environment, capacity: float = float("inf"),
                 init: float = 0.0) -> None:
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise SimulationError("init must be within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: List[_Amount] = []
        self._putters: List[_Amount] = []

    @property
    def level(self) -> float:
        """Current quantity held."""
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; fires once it fits under capacity."""
        if amount <= 0:
            raise SimulationError("amount must be positive")
        event = _Amount(self.env, amount)
        self._putters.append(event)
        self._dispatch()
        return event

    def get(self, amount: float) -> Event:
        """Remove ``amount``; fires once that much is available."""
        if amount <= 0:
            raise SimulationError("amount must be positive")
        event = _Amount(self.env, amount)
        self._getters.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                put = self._putters[0]
                if self._level + put.amount <= self.capacity:
                    self._putters.pop(0)
                    self._level += put.amount
                    put.succeed()
                    progressed = True
            if self._getters:
                get = self._getters[0]
                if self._level >= get.amount:
                    self._getters.pop(0)
                    self._level -= get.amount
                    get.succeed()
                    progressed = True
