"""Measurement probes: tallies, time series and time-weighted averages.

Benchmarks and tests use these to turn simulated activity into the summary
statistics recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple


class Tally:
    """Accumulates scalar observations and reports summary statistics."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.values: List[float] = []

    def record(self, value: float) -> None:
        """Add one observation."""
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        if not self.values:
            return 0.0
        return sum(self.values) / len(self.values)

    @property
    def minimum(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def maximum(self) -> float:
        return max(self.values) if self.values else 0.0

    @property
    def stddev(self) -> float:
        """Population standard deviation (0.0 with <2 observations)."""
        n = len(self.values)
        if n < 2:
            return 0.0
        mean = self.mean
        return math.sqrt(sum((v - mean) ** 2 for v in self.values) / n)

    def percentile(self, q: float) -> float:
        """The q-th percentile (0..100) by linear interpolation."""
        if not self.values:
            return 0.0
        if not 0 <= q <= 100:
            raise ValueError("q must be in [0, 100]")
        ordered = sorted(self.values)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return ordered[low]
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac

    @property
    def median(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def summary(self) -> Dict[str, float]:
        """All headline statistics as a dict (for table printing)."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "median": self.median,
            "p95": self.p95,
            "stddev": self.stddev,
        }

    def __repr__(self) -> str:
        return "<Tally {} n={} mean={:.6g}>".format(
            self.name or "?", self.count, self.mean)


class Counter:
    """A set of named monotonically increasing counters."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def incr(self, key: str, by: int = 1) -> None:
        """Increase ``key`` by ``by`` (creating it at zero)."""
        self._counts[key] = self._counts.get(key, 0) + by

    def __getitem__(self, key: str) -> int:
        return self._counts.get(key, 0)

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of all counters."""
        return dict(self._counts)


class TimeSeries:
    """(time, value) samples, e.g. queue length or skew over time."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.samples: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        """Append one sample; times must be non-decreasing."""
        if self.samples and time < self.samples[-1][0]:
            raise ValueError("time went backwards in series " + self.name)
        self.samples.append((float(time), float(value)))

    @property
    def count(self) -> int:
        return len(self.samples)

    def values(self) -> List[float]:
        """Just the sampled values, in time order."""
        return [v for _, v in self.samples]

    def time_weighted_mean(self, until: Optional[float] = None) -> float:
        """Mean of the step function defined by the samples."""
        if not self.samples:
            return 0.0
        end = until if until is not None else self.samples[-1][0]
        area = 0.0
        for (t0, v0), (t1, _) in zip(self.samples, self.samples[1:]):
            area += v0 * (t1 - t0)
        last_t, last_v = self.samples[-1]
        if end > last_t:
            area += last_v * (end - last_t)
        span = end - self.samples[0][0]
        if span <= 0:
            return self.samples[-1][1]
        return area / span

    def max(self) -> float:
        return max(self.values()) if self.samples else 0.0


def histogram(values: Sequence[float], bins: int = 10,
              low: Optional[float] = None,
              high: Optional[float] = None) -> List[Tuple[float, float, int]]:
    """Bin ``values`` into (lo, hi, count) triples for plain-text display.

    When an explicit ``low``/``high`` range is narrower than the data,
    out-of-range values are *not* silently clamped into the edge bins:
    they are reported in extra ``(-inf, low)`` / ``(high, inf)``
    underflow/overflow bins (present only when non-empty).  Values equal
    to ``high`` land in the last regular bin.
    """
    if bins <= 0:
        raise ValueError("bins must be positive")
    if not values:
        return []
    lo = min(values) if low is None else low
    hi = max(values) if high is None else high
    if hi <= lo:
        hi = lo
        inside = [v for v in values if v == lo] if low is not None \
            or high is not None else list(values)
        underflow = sum(1 for v in values if v < lo)
        overflow = len(values) - underflow - len(inside)
        result = [(lo, hi, len(inside))]
        if underflow:
            result.insert(0, (float("-inf"), lo, underflow))
        if overflow:
            result.append((hi, float("inf"), overflow))
        return result
    width = (hi - lo) / bins
    counts = [0] * bins
    underflow = 0
    overflow = 0
    for value in values:
        if value < lo:
            underflow += 1
            continue
        if value > hi:
            overflow += 1
            continue
        index = int((value - lo) / width)
        if index >= bins:
            index = bins - 1
        counts[index] += 1
    result = [(lo + i * width, lo + (i + 1) * width, counts[i])
              for i in range(bins)]
    if underflow:
        result.insert(0, (float("-inf"), lo, underflow))
    if overflow:
        result.append((hi, float("inf"), overflow))
    return result
