"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic generator-coroutine design: a *process* is a
generator that yields :class:`Event` objects and is resumed when the yielded
event fires.  Events carry a value (delivered as the result of the ``yield``)
or an exception (raised at the ``yield``).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, TYPE_CHECKING

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.environment import Environment

#: Sort key priorities for events scheduled at the same instant.
URGENT = 0
NORMAL = 1


class Event:
    """A happening at a point in simulated time.

    An event starts *pending*, becomes *triggered* when given a value (or
    failure) and scheduled, and *processed* once its callbacks have run.
    Processes wait on events by yielding them.
    """

    __slots__ = ("env", "callbacks", "_value", "_exception", "_ok",
                 "defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._ok: Optional[bool] = None
        #: Set when a failure has been handled (yielded or defused) so the
        #: environment does not escalate it at the end of the run.
        self.defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled to fire."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception for failed events)."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._exception if not self._ok else self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._exception = exception
        self.env.schedule(self)
        return self

    def defuse(self) -> "Event":
        """Mark failures of this event as handled (fire-and-forget use)."""
        self.defused = True
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (callback helper)."""
        self._ok = event._ok
        self._value = event._value
        self._exception = event._exception
        self.env.schedule(self)

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return "<{} {}>".format(type(self).__name__, state)


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float,
                 value: Any = None) -> None:
        if delay < 0:
            raise SimulationError("negative delay: {!r}".format(delay))
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)


class Initialize(Event):
    """Internal event that starts a process when it is created."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        env.schedule(self, priority=URGENT)


class Interruption(Event):
    """Internal event delivering an :class:`Interrupt` into a process."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.env)
        if process.triggered:
            raise SimulationError("cannot interrupt a finished process")
        if process is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        self.callbacks.append(self._interrupt)
        self._ok = False
        self._exception = Interrupt(cause)
        self.defused = True
        self.process = process
        self.env.schedule(self, priority=URGENT)

    def _interrupt(self, event: "Event") -> None:
        if self.process.triggered:
            return  # process finished in the meantime; drop the interrupt
        # Unsubscribe the process from whatever it was waiting for and
        # resume it with the interrupt exception instead.
        target = self.process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self.process._resume)
            except ValueError:
                pass
        self.process._resume(self)


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    def __init__(self, cause: Any) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        """The value the interrupter supplied."""
        return self.args[0]


class Process(Event):
    """A running generator coroutine; also an event that fires on return."""

    __slots__ = ("_generator", "_target", "span", "_detached")

    def __init__(self, env: "Environment", generator) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                "process requires a generator, got {!r}".format(generator))
        # Event.__init__ for both the process and its Initialize event is
        # inlined: process creation is per-packet in the network layer.
        self.env = env
        self.callbacks = []
        self._value = None
        self._exception = None
        self._ok = None
        self.defused = False
        self._generator = generator
        #: ``actor.run`` span when the process was named under a recording
        #: tracer (set by :meth:`Environment.process`); ``None`` otherwise.
        self.span = None
        #: Fire-and-forget marker (set by owners that discard the process,
        #: e.g. network carriers): when still True at a *successful* end
        #: with no subscribers, the end event is elided and virtually
        #: accounted — popping it could only ever be a no-op.  Failures
        #: always schedule, so error escalation is unchanged.
        self._detached = False
        init = Initialize.__new__(Initialize)
        init.env = env
        init.callbacks = [self._resume]
        init._value = None
        init._exception = None
        init._ok = True
        init.defused = False
        env.schedule(init, priority=URGENT)
        self._target: Optional[Event] = init

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._ok is None

    @property
    def name(self) -> str:
        """Best-effort name of the underlying generator function."""
        return getattr(self._generator, "__name__", repr(self._generator))

    def interrupt(self, cause: Any = None) -> None:
        """Interrupt the process, raising :class:`Interrupt` inside it."""
        Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the fired event's value."""
        env = self.env
        # Saved and restored (not reset to None): a synchronously
        # started process (Network.transmit's burst path) resumes nested
        # inside its creator's _resume, which must stay the active
        # process afterwards.  For top-level dispatches the saved value
        # is None, exactly what the old reset stored.
        outer = env._active_process
        env._active_process = self
        generator = self._generator
        while True:
            try:
                if event._ok:
                    next_event = generator.send(event._value)
                else:
                    event.defused = True
                    next_event = generator.throw(event._exception)
            except StopIteration as stop:
                self._ok = True
                self._value = getattr(stop, "value", None)
                if self._detached and not self.callbacks:
                    # Nobody can observe the end event fire (detached,
                    # no subscribers), so it is elided and virtually
                    # accounted: the eid and processed count land at
                    # this instant, exactly where the real end event
                    # would have been scheduled and popped as a no-op —
                    # replay-digest counters stay byte-identical.
                    env._eid += 1
                    env.events_processed += 1
                    self.callbacks = None
                else:
                    env.schedule(self)
                break
            except BaseException as error:
                self._ok = False
                self._exception = error
                self.defused = False
                env.schedule(self)
                break

            if not isinstance(next_event, Event):
                error = SimulationError(
                    "process {!r} yielded a non-event: {!r}".format(
                        self.name, next_event))
                generator.close()
                self._ok = False
                self._exception = error
                env.schedule(self)
                break

            if next_event.callbacks is not None:
                # The event is still pending or triggered-but-unprocessed:
                # subscribe and stop advancing until it fires.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # The event was already processed: continue immediately with
            # its stored value / exception.
            event = next_event

        env._active_process = outer


class Condition(Event):
    """An event that fires when a predicate over child events is met."""

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(self, env: "Environment", evaluate, events) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("events from different environments")
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    @staticmethod
    def all_events(events, count: int) -> bool:
        """Predicate: every child event has fired."""
        return len(events) == count

    @staticmethod
    def any_events(events, count: int) -> bool:
        """Predicate: at least one child event has fired."""
        return count > 0 or len(events) == 0

    def _collect_values(self) -> dict:
        return {event: event._value
                for event in self._events if event.callbacks is None}

    def _check(self, event: Event) -> None:
        if self._ok is not None:
            return
        self._count += 1
        if not event._ok:
            event.defused = True
            self.fail(event._exception)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())


class AllOf(Condition):
    """Fires when *all* of the given events have fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Fires when *any* of the given events has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events) -> None:
        super().__init__(env, Condition.any_events, events)
