"""Deterministic random-number streams for reproducible experiments.

Every stochastic element in the simulator draws from a named stream derived
from a single experiment seed, so runs are reproducible and changing one
subsystem's draw pattern cannot silently perturb another's.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterator, List, Sequence, TypeVar

T = TypeVar("T")


class _JournalledRandom(random.Random):
    """A stream that journals its draws to the flight recorder.

    Only ``random()`` and ``getrandbits()`` are overridden — the two
    primitives every other ``random.Random`` method (gauss, expovariate,
    uniform, randrange, shuffle via ``_randbelow``) routes through.
    Because both appear in the subclass dict, CPython selects the same
    ``_randbelow_with_getrandbits`` strategy as the base class, so the
    underlying Mersenne-Twister draw sequence — and therefore every
    replay digest — is bit-identical to an unjournalled stream.
    """

    def __init__(self, seed: int, flight, name: str) -> None:
        random.Random.__init__(self, seed)
        self._flight = flight
        self._stream_name = name

    def random(self) -> float:
        value = random.Random.random(self)
        self._flight.record_rng(self._stream_name, "random", value)
        return value

    def getrandbits(self, k: int) -> int:
        value = random.Random.getrandbits(self, k)
        self._flight.record_rng(self._stream_name, "getrandbits", value)
        return value


class RandomStreams:
    """A factory of independent, named :class:`random.Random` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically.

        While a flight recorder is enabled (:mod:`repro.obs.flight`,
        imported lazily to keep it off the kernel's import path), new
        streams journal every draw; seeding and the draw sequence are
        unchanged either way.
        """
        if name not in self._streams:
            digest = hashlib.sha256(
                "{}:{}".format(self.seed, name).encode()).digest()
            seed = int.from_bytes(digest[:8], "big")
            from repro.obs.flight import get_flight
            flight = get_flight()
            if flight.enabled and flight.journal_rng:
                self._streams[name] = _JournalledRandom(seed, flight, name)
            else:
                self._streams[name] = random.Random(seed)
        return self._streams[name]

    def fork(self, name: str) -> "RandomStreams":
        """Derive a child factory (for nested components)."""
        digest = hashlib.sha256(
            "fork:{}:{}".format(self.seed, name).encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))


def exponential(rng: random.Random, mean: float) -> float:
    """An exponential draw with the given mean (mean<=0 returns 0)."""
    if mean <= 0:
        return 0.0
    return rng.expovariate(1.0 / mean)


def bounded_normal(rng: random.Random, mean: float, std: float,
                   low: float = 0.0, high: float = float("inf")) -> float:
    """A normal draw clamped into [low, high]."""
    return min(high, max(low, rng.gauss(mean, std)))


def zipf_index(rng: random.Random, n: int, skew: float = 1.0) -> int:
    """A Zipf-distributed index in [0, n) — models hot-spot access.

    ``skew`` = 0 degenerates to uniform; larger values concentrate access on
    low indices (the "hot" items).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if skew <= 0:
        return rng.randrange(n)
    weights = [1.0 / ((i + 1) ** skew) for i in range(n)]
    total = sum(weights)
    point = rng.random() * total
    acc = 0.0
    for i, weight in enumerate(weights):
        acc += weight
        if point <= acc:
            return i
    return n - 1


def weighted_choice(rng: random.Random, items: Sequence[T],
                    weights: Sequence[float]) -> T:
    """Choose one of ``items`` proportionally to ``weights``."""
    if len(items) != len(weights) or not items:
        raise ValueError("items and weights must be equal-length, non-empty")
    total = sum(weights)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    point = rng.random() * total
    acc = 0.0
    for item, weight in zip(items, weights):
        acc += weight
        if point <= acc:
            return item
    return items[-1]
