"""CSCW toolkits (§3.3.1): rapid construction of cooperative applications.

*"a growing focus of research has been in the development of toolkits
which allow the rapid construction of applications"* — two of the cited
architectures, reproduced:

* :mod:`~repro.toolkit.oval` — OVAL's objects / views / agents / links,
  the radically tailorable end-user composition model;
* :mod:`~repro.toolkit.alv` — Rendezvous' Abstraction-Link-View split
  for multi-user interfaces with relaxed WYSIWIS and private view state.
"""

from repro.toolkit.alv import (
    MultiUserApplication,
    SharedAbstraction,
    UserView,
    ViewLink,
    identity_render,
)
from repro.toolkit.oval import (
    Agent,
    ON_ARRIVAL,
    ON_CHANGE,
    ON_CREATE,
    OvalObject,
    OvalSystem,
    Workspace,
    arrived_kind,
    file_into,
    forward_to,
    kind_is,
)

__all__ = [
    "Agent",
    "MultiUserApplication",
    "ON_ARRIVAL",
    "ON_CHANGE",
    "ON_CREATE",
    "OvalObject",
    "OvalSystem",
    "SharedAbstraction",
    "UserView",
    "ViewLink",
    "Workspace",
    "arrived_kind",
    "file_into",
    "forward_to",
    "identity_render",
    "kind_is",
]
