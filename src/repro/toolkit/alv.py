"""Rendezvous-style ALV architecture for multi-user interfaces (§3.3.1).

Patterson et al.'s Rendezvous separated a multi-user application into a
shared **Abstraction**, per-user **Views**, and the **Links** (declarative
constraints) connecting them.  One abstraction, many simultaneous views —
each user's presentation can differ (relaxed WYSIWIS) and carries private
state (selection, scroll position) that is *not* shared.

:class:`SharedAbstraction` holds the application state; a
:class:`ViewLink` maps abstraction values into a user's presentation and
maps user input back; a :class:`UserView` combines a set of links with
private local state.  Changing the abstraction re-renders every attached
view automatically — the constraint-maintenance the toolkit provided.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError

Render = Callable[[Any, Dict[str, Any]], Any]
Accept = Callable[[Any, Any], Any]


def identity_render(value: Any, local: Dict[str, Any]) -> Any:
    """The WYSIWIS default: present the abstraction value unchanged."""
    return value


class SharedAbstraction:
    """The single underlying application state all users share."""

    def __init__(self, name: str = "abstraction") -> None:
        self.name = name
        self._state: Dict[str, Any] = {}
        self._views: List["UserView"] = []
        self.changes = 0

    def get(self, key: str, default: Any = None) -> Any:
        return self._state.get(key, default)

    def keys(self) -> List[str]:
        return sorted(self._state)

    def set(self, user: str, key: str, value: Any) -> None:
        """Change shared state; every attached view re-renders."""
        self._state[key] = value
        self.changes += 1
        for view in self._views:
            view._refresh(key)

    def _attach(self, view: "UserView") -> None:
        self._views.append(view)
        for key in self._state:
            view._refresh(key)

    def _detach(self, view: "UserView") -> None:
        if view in self._views:
            self._views.remove(view)


class ViewLink:
    """A constraint between one abstraction key and its presentation.

    ``render(value, local_state)`` computes the user-facing presentation;
    ``accept(presented_input, current_value)`` maps a user's input back
    to a new abstraction value (None = the view is read-only).
    """

    def __init__(self, key: str, render: Optional[Render] = None,
                 accept: Optional[Accept] = None) -> None:
        self.key = key
        self.render = render or identity_render
        self.accept = accept


class UserView:
    """One user's live presentation of the shared abstraction."""

    def __init__(self, abstraction: SharedAbstraction, user: str,
                 links: Optional[List[ViewLink]] = None) -> None:
        self.abstraction = abstraction
        self.user = user
        self._links: Dict[str, ViewLink] = {}
        #: Private, unshared state: selection, scroll position, colour
        #: preferences — Rendezvous kept these strictly per-user.
        self.local: Dict[str, Any] = {}
        self.presented: Dict[str, Any] = {}
        self.render_count = 0
        for link in links or []:
            self.add_link(link)
        abstraction._attach(self)

    def add_link(self, link: ViewLink) -> None:
        """Connect (or replace) the link for one abstraction key."""
        self._links[link.key] = link
        if link.key in self.abstraction.keys():
            self._refresh(link.key)

    def set_local(self, key: str, value: Any) -> None:
        """Change private view state and re-render affected keys."""
        self.local[key] = value
        for key_ in list(self._links):
            self._refresh(key_)

    def input(self, key: str, presented_value: Any) -> None:
        """User input through the view, mapped back to the abstraction."""
        link = self._links.get(key)
        if link is None or link.accept is None:
            raise ReproError(
                "view of {} has no editable link for {}".format(
                    self.user, key))
        new_value = link.accept(presented_value,
                                self.abstraction.get(key))
        self.abstraction.set(self.user, key, new_value)

    def close(self) -> None:
        """Detach from the abstraction (the user leaves)."""
        self.abstraction._detach(self)

    # -- internals --------------------------------------------------------------

    def _refresh(self, key: str) -> None:
        link = self._links.get(key)
        if link is None:
            return
        self.presented[key] = link.render(self.abstraction.get(key),
                                          self.local)
        self.render_count += 1


class MultiUserApplication:
    """Rapid-construction scaffold: one abstraction, a view per user."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.abstraction = SharedAbstraction(name)
        self.views: Dict[str, UserView] = {}
        self._default_links: List[ViewLink] = []

    def define_link(self, link: ViewLink) -> None:
        """A link every joining user's view starts with."""
        self._default_links.append(link)
        for view in self.views.values():
            view.add_link(link)

    def join(self, user: str) -> UserView:
        """Give a user a live view of the application."""
        if user in self.views:
            raise ReproError("{} already joined".format(user))
        view = UserView(self.abstraction, user,
                        links=list(self._default_links))
        self.views[user] = view
        return view

    def leave(self, user: str) -> None:
        view = self.views.pop(user, None)
        if view is not None:
            view.close()
