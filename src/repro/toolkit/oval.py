"""OVAL: a radically tailorable tool for cooperative work (§3.3.1).

Malone, Lai & Fry's OVAL built cooperative applications from four user-
composable primitives — **O**bjects (semi-structured), **V**iews (named
queries over objects), **A**gents (rules that fire on events) and
**L**inks (between objects).  End users assembled mail sorters, issue
trackers and Coordinator-like conversation tools *without programming*.

This module reproduces that composition model: an :class:`OvalSystem`
hosts per-user :class:`Workspace` objects; objects move between users by
``send``; agents run automatically on arrival or change events and can
modify, file or forward objects — the tailoring mechanism.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError

_object_ids = itertools.count(1)  # repro: allow-RPR005 (ids are labels, not behaviour)

ON_ARRIVAL = "arrival"
ON_CHANGE = "change"
ON_CREATE = "create"

EVENTS = (ON_ARRIVAL, ON_CHANGE, ON_CREATE)


class OvalObject:
    """A semi-structured object: a kind, fields, and links to others."""

    def __init__(self, kind: str,
                 fields: Optional[Dict[str, Any]] = None) -> None:
        self.object_id = "oval-{}".format(next(_object_ids))
        self.kind = kind
        self.fields: Dict[str, Any] = dict(fields or {})
        self.links: List[Tuple[str, "OvalObject"]] = []
        self.history: List[Tuple[str, str]] = []

    def link(self, relation: str, other: "OvalObject") -> None:
        """Attach a typed link to another object."""
        self.links.append((relation, other))

    def linked(self, relation: str) -> List["OvalObject"]:
        return [obj for rel, obj in self.links if rel == relation]

    def __repr__(self) -> str:
        return "<OvalObject {} kind={}>".format(self.object_id,
                                                self.kind)


Query = Callable[[OvalObject], bool]
Trigger = Callable[[OvalObject, str], bool]
Action = Callable[["Workspace", OvalObject], None]


class Agent:
    """A user-authored rule: when the trigger matches, run the action."""

    def __init__(self, name: str, trigger: Trigger,
                 action: Action) -> None:
        self.name = name
        self.trigger = trigger
        self.action = action
        self.fired = 0

    def consider(self, workspace: "Workspace", obj: OvalObject,
                 event: str) -> bool:
        if self.trigger(obj, event):
            self.fired += 1
            self.action(workspace, obj)
            return True
        return False


class Workspace:
    """One user's objects, views and agents."""

    def __init__(self, system: "OvalSystem", user: str) -> None:
        self.system = system
        self.user = user
        self.objects: List[OvalObject] = []
        self._views: Dict[str, Query] = {"inbox": lambda obj: True}
        self._agents: List[Agent] = []

    # -- objects ------------------------------------------------------------

    def create(self, kind: str,
               fields: Optional[Dict[str, Any]] = None) -> OvalObject:
        """Create an object in this workspace."""
        obj = OvalObject(kind, fields)
        obj.history.append((self.user, "created"))
        self.objects.append(obj)
        self._dispatch(obj, ON_CREATE)
        return obj

    def update(self, obj: OvalObject, **field_changes: Any) -> None:
        """Change fields; agents see a change event."""
        if obj not in self.objects:
            raise ReproError(
                "object {} is not in {}'s workspace".format(
                    obj.object_id, self.user))
        obj.fields.update(field_changes)
        obj.history.append((self.user, "updated"))
        self._dispatch(obj, ON_CHANGE)

    def send(self, obj: OvalObject, to_user: str) -> None:
        """Move the object to a colleague's workspace (their agents run)."""
        if obj not in self.objects:
            raise ReproError(
                "object {} is not in {}'s workspace".format(
                    obj.object_id, self.user))
        target = self.system.workspace(to_user)
        self.objects.remove(obj)
        obj.history.append((self.user, "sent to " + to_user))
        target.objects.append(obj)
        target._dispatch(obj, ON_ARRIVAL)

    # -- views ---------------------------------------------------------------

    def define_view(self, name: str, query: Query) -> None:
        """A named query over the workspace's objects (tailorable)."""
        self._views[name] = query

    def view(self, name: str) -> List[OvalObject]:
        """The objects currently matching the named view."""
        try:
            query = self._views[name]
        except KeyError:
            raise ReproError("no view named {}".format(name))
        return [obj for obj in self.objects if query(obj)]

    def view_names(self) -> List[str]:
        return sorted(self._views)

    # -- agents --------------------------------------------------------------

    def add_agent(self, name: str, trigger: Trigger,
                  action: Action) -> Agent:
        """Install a rule; returns it for inspection."""
        agent = Agent(name, trigger, action)
        self._agents.append(agent)
        return agent

    def remove_agent(self, name: str) -> None:
        self._agents = [agent for agent in self._agents
                        if agent.name != name]

    # -- internals ------------------------------------------------------------

    def _dispatch(self, obj: OvalObject, event: str) -> None:
        for agent in list(self._agents):
            if obj not in self.objects:
                break  # an earlier agent moved it on
            agent.consider(self, obj, event)


class OvalSystem:
    """The community of workspaces objects travel between."""

    def __init__(self) -> None:
        self._workspaces: Dict[str, Workspace] = {}

    def workspace(self, user: str) -> Workspace:
        """Fetch (or create) a user's workspace."""
        if user not in self._workspaces:
            self._workspaces[user] = Workspace(self, user)
        return self._workspaces[user]

    def users(self) -> List[str]:
        return sorted(self._workspaces)


# -- pre-built tailorings (what OVAL's "radical tailorability" produced) --------

def kind_is(kind: str) -> Trigger:
    """Trigger: the object has the given kind (any event)."""
    return lambda obj, event: obj.kind == kind


def arrived_kind(kind: str) -> Trigger:
    """Trigger: an object of the given kind just arrived."""
    return lambda obj, event: event == ON_ARRIVAL and obj.kind == kind


def file_into(view_field: str, value: Any) -> Action:
    """Action: stamp a field (views typically query on it)."""
    def action(workspace: Workspace, obj: OvalObject) -> None:
        obj.fields[view_field] = value
    return action


def forward_to(user: str) -> Action:
    """Action: pass the object on to a colleague."""
    def action(workspace: Workspace, obj: OvalObject) -> None:
        workspace.send(obj, user)
    return action
