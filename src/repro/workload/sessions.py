"""Session-churn workload: members joining and leaving over time."""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ReproError
from repro.sim import RandomStreams, exponential


class ChurnEvent:
    """One membership change."""

    __slots__ = ("at", "user", "kind")

    def __init__(self, at: float, user: str, kind: str) -> None:
        self.at = at
        self.user = user
        self.kind = kind  # "join" | "leave"

    def __repr__(self) -> str:
        return "<ChurnEvent {} {} @{:.2f}>".format(
            self.kind, self.user, self.at)


class SessionChurn:
    """Each user alternates presence and absence, exponentially timed."""

    def __init__(self, users: Sequence[str],
                 mean_present: float = 120.0, mean_absent: float = 60.0,
                 duration: float = 600.0, seed: int = 0) -> None:
        if not users:
            raise ReproError("churn needs at least one user")
        if mean_present <= 0 or mean_absent <= 0 or duration <= 0:
            raise ReproError("invalid churn parameters")
        self.users = list(users)
        self.mean_present = mean_present
        self.mean_absent = mean_absent
        self.duration = duration
        self.seed = seed

    def generate(self) -> List[ChurnEvent]:
        """A time-ordered join/leave trace (everyone joins at t=0)."""
        streams = RandomStreams(self.seed)
        events: List[ChurnEvent] = []
        for user in self.users:
            rng = streams.stream("churn-" + user)
            at = 0.0
            present = False
            while at < self.duration:
                if present:
                    events.append(ChurnEvent(at, user, "leave"))
                    at += exponential(rng, self.mean_absent)
                else:
                    events.append(ChurnEvent(at, user, "join"))
                    at += exponential(rng, self.mean_present)
                present = not present
        events.sort(key=lambda event: (event.at, event.user))
        return events

    def presence_at(self, at: float) -> List[str]:
        """Who is present at time ``at`` under the generated trace."""
        present = set()
        for event in self.generate():
            if event.at > at:
                break
            if event.kind == "join":
                present.add(event.user)
            else:
                present.discard(event.user)
        return sorted(present)
