"""Synthetic workloads: the users our experiments substitute for humans.

The paper's claims are about systems under *cooperative* use; these
generators produce deterministic, seeded traces with the statistical
structure that matters — think times, edit spans, hot-spot locality and
session churn — so every experiment is reproducible from its seed.
"""

from repro.workload.editing import (
    EditEvent,
    EditingWorkload,
    conflict_rate,
)
from repro.workload.sessions import ChurnEvent, SessionChurn

__all__ = [
    "ChurnEvent",
    "EditEvent",
    "EditingWorkload",
    "SessionChurn",
    "conflict_rate",
]
