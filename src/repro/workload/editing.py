"""Co-editing workload generation.

An :class:`EditingWorkload` emits a deterministic trace of
:class:`EditEvent` items: each user alternates think time (exponential)
and an edit of some span of words at a Zipf-hot-spotted position in a
structured document.  The hot-spot skew is the conflict-rate knob the
concurrency experiments sweep.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.concurrency.granularity import StructuredDocument
from repro.errors import ReproError
from repro.sim import RandomStreams, exponential, zipf_index


class EditEvent:
    """One user edit: who, when, where, how much."""

    __slots__ = ("user", "at", "position", "span", "duration")

    def __init__(self, user: str, at: float, position: int, span: int,
                 duration: float) -> None:
        self.user = user
        self.at = at
        self.position = position
        self.span = span
        self.duration = duration

    def word_range(self) -> range:
        return range(self.position, self.position + self.span)

    def __repr__(self) -> str:
        return "<EditEvent {}@{:.2f} words[{}:{}]>".format(
            self.user, self.at, self.position, self.position + self.span)


class EditingWorkload:
    """Deterministic co-editing trace over a structured document."""

    def __init__(self, users: Sequence[str],
                 document: Optional[StructuredDocument] = None,
                 think_mean: float = 5.0, span_mean: float = 4.0,
                 edit_duration_mean: float = 2.0,
                 hotspot_skew: float = 0.0, duration: float = 300.0,
                 seed: int = 0) -> None:
        if not users:
            raise ReproError("workload needs at least one user")
        if think_mean <= 0 or span_mean < 1 or duration <= 0:
            raise ReproError("invalid workload parameters")
        self.users = list(users)
        self.document = document or StructuredDocument()
        self.think_mean = think_mean
        self.span_mean = span_mean
        self.edit_duration_mean = edit_duration_mean
        self.hotspot_skew = hotspot_skew
        self.duration = duration
        self.seed = seed

    def generate(self) -> List[EditEvent]:
        """The full trace, time-ordered, identical for a given seed."""
        streams = RandomStreams(self.seed)
        events: List[EditEvent] = []
        total_words = self.document.total_words
        for user in self.users:
            rng = streams.stream("user-" + user)
            at = exponential(rng, self.think_mean)
            while at < self.duration:
                span = max(1, min(total_words,
                                  round(exponential(rng, self.span_mean))
                                  or 1))
                position = zipf_index(rng, total_words - span + 1,
                                      skew=self.hotspot_skew)
                edit_time = max(0.1, exponential(
                    rng, self.edit_duration_mean))
                events.append(EditEvent(user, at, position, span,
                                        edit_time))
                at += edit_time + exponential(rng, self.think_mean)
        events.sort(key=lambda event: (event.at, event.user))
        return events


def conflict_rate(events: List[EditEvent],
                  document: StructuredDocument,
                  granularity: str) -> float:
    """Fraction of edits whose lock units overlap a concurrent edit.

    Two edits are concurrent when their [at, at+duration) intervals
    intersect; they conflict when they share a lock unit at the given
    granularity.
    """
    if not events:
        return 0.0
    conflicted = 0
    for i, event in enumerate(events):
        units = set(document.units_for_span(
            granularity, event.position, event.span))
        for other in events:
            if other is event or other.user == event.user:
                continue
            if other.at >= event.at + event.duration \
                    or event.at >= other.at + other.duration:
                continue
            other_units = set(document.units_for_span(
                granularity, other.position, other.span))
            if units & other_units:
                conflicted += 1
                break
    return conflicted / len(events)
