"""A DIVE-style shared virtual environment (§3.3.2).

*"DIVE ... features a spatial model for cooperation in large unbounded
space"* — users are embodied as entities with aura/focus/nimbus; moving
through the space changes who can perceive (and therefore talk to) whom.
The environment:

* embodies users and drives their movement as simulation processes;
* periodically evaluates the spatial model and **opens an audio
  connection whenever two users become mutually (fully) aware**, closing
  it when awareness lapses — interaction management *by position*, not
  by explicit calls (Benford & Fahlén's point);
* scopes utterances: ``say`` reaches exactly the users currently aware
  of the speaker, at their awareness weight (volume).
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.awareness.spatial import Entity, FULL, SharedSpace
from repro.errors import ReproError
from repro.sim import Counter, Environment


class Utterance:
    """One scoped utterance: who heard it, and how loudly."""

    __slots__ = ("speaker", "text", "at", "heard_by")

    def __init__(self, speaker: str, text: str, at: float,
                 heard_by: Dict[str, float]) -> None:
        self.speaker = speaker
        self.text = text
        self.at = at
        self.heard_by = heard_by

    def __repr__(self) -> str:
        return "<Utterance {} heard_by={}>".format(
            self.speaker, sorted(self.heard_by))


class VirtualEnvironment:
    """Embodied users in a shared space with awareness-driven audio."""

    def __init__(self, env: Environment,
                 space: Optional[SharedSpace] = None,
                 check_interval: float = 0.5) -> None:
        if check_interval <= 0:
            raise ReproError("check_interval must be positive")
        self.env = env
        self.space = space or SharedSpace("dive")
        self.check_interval = check_interval
        #: Live audio pairs: frozenset({a, b}).
        self.audio_links: Dict[FrozenSet[str], float] = {}
        #: (opened_at, closed_at, pair) history.
        self.link_history: List[Tuple[float, float, FrozenSet[str]]] = []
        self.utterances: List[Utterance] = []
        self.counters = Counter()
        self._running = True
        self.process = env.process(self._run())

    def stop(self) -> None:
        self._running = False

    # -- embodiment and movement --------------------------------------------------

    def embody(self, user: str, x: float = 0.0, y: float = 0.0,
               aura: float = 30.0, focus: float = 10.0,
               nimbus: float = 10.0) -> Entity:
        """Place a user's embodiment in the space."""
        return self.space.add(Entity(user, x, y, aura=aura,
                                     focus=focus, nimbus=nimbus))

    def walk(self, user: str, to_x: float, to_y: float,
             speed: float = 2.0):
        """A movement process: returns the process (yieldable)."""
        if speed <= 0:
            raise ReproError("speed must be positive")
        entity = self.space.entity(user)
        return self.env.process(self._walk(entity, to_x, to_y, speed))

    def _walk(self, entity: Entity, to_x: float, to_y: float,
              speed: float):
        step_time = self.check_interval / 2
        while True:
            dx = to_x - entity.x
            dy = to_y - entity.y
            distance = math.hypot(dx, dy)
            step = speed * step_time
            if distance <= step:
                entity.move_to(to_x, to_y)
                return
            entity.move_by(dx / distance * step, dy / distance * step)
            yield self.env.timeout(step_time)

    # -- scoped speech -------------------------------------------------------------

    def say(self, user: str, text: str) -> Utterance:
        """Speak: heard by exactly the users currently aware of you."""
        speaker = self.space.entity(user)
        heard: Dict[str, float] = {}
        for listener in self.space.entities():
            if listener is speaker:
                continue
            weight = self.space.awareness_weight(listener, speaker)
            if weight > 0:
                heard[listener.name] = weight
        utterance = Utterance(user, text, self.env.now, heard)
        self.utterances.append(utterance)
        self.counters.incr("utterances")
        return utterance

    # -- audio connection management --------------------------------------------------

    def connected(self, a: str, b: str) -> bool:
        """Is there a live audio link between the two users?"""
        return frozenset((a, b)) in self.audio_links

    def _run(self):
        while self._running:
            yield self.env.timeout(self.check_interval)
            self._evaluate()

    def _evaluate(self) -> None:
        entities = self.space.entities()
        should_exist = set()
        for i, a in enumerate(entities):
            for b in entities[i + 1:]:
                if self.space.awareness_level(a, b) == FULL \
                        and self.space.awareness_level(b, a) == FULL:
                    should_exist.add(frozenset((a.name, b.name)))
        # Sorted so link open/close order (and thus counters and
        # history) is independent of PYTHONHASHSEED.
        for pair in sorted(should_exist - set(self.audio_links),
                           key=sorted):
            self.audio_links[pair] = self.env.now
            self.counters.incr("links_opened")
        for pair in sorted(set(self.audio_links) - should_exist,
                           key=sorted):
            opened_at = self.audio_links.pop(pair)
            self.link_history.append((opened_at, self.env.now, pair))
            self.counters.incr("links_closed")
