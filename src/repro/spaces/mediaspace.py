"""Media spaces: always-on audio/video connecting distributed workplaces.

§3.3.2: *"a range of multimedia systems have also been developed with the
intent of forming distributed shared media spaces across a user
community... Perhaps the best known example is the experiment at Xerox
PARC linking two coffee rooms with a shared video wall."*  Plus Cruiser's
*cruises* (brief video calls past a sequence of offices) and RAVE/
Portholes-style *glances*.

A :class:`MediaSpace` manages camera/monitor nodes at workplaces and the
connections between them:

* **video wall** — a standing bidirectional link between two common
  areas (the Portland experiment);
* **glance** — a short one-way look into a colleague's office, subject
  to their accessibility setting (reciprocity optional);
* **cruise** — a sequence of short glances (Cruiser's virtual hallway);
* **office share** — a long-lived two-way link between two offices.

Connections carry real simulated video via group/stream bindings when a
network is attached, and always publish awareness events, so being
looked at is visible — the reciprocity CSCW insisted on.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.awareness.events import AwarenessBus
from repro.errors import ReproError
from repro.net.network import Network
from repro.sim import Counter, Environment, Event
from repro.streams.binding import StreamBinding
from repro.streams.media import MediaSink, MediaSource

ACCESSIBLE = "accessible"      # glances allowed
BUSY = "busy"                  # glances refused, calls negotiable
DO_NOT_DISTURB = "do-not-disturb"

GLANCE = "glance"
VIDEO_WALL = "video-wall"
OFFICE_SHARE = "office-share"

_connection_ids = itertools.count(1)  # repro: allow-RPR005 (ids are labels, not behaviour)


class WorkplaceNode:
    """A camera+monitor installation at someone's workplace."""

    def __init__(self, name: str, host: Optional[str] = None) -> None:
        self.name = name
        self.host = host
        self.accessibility = ACCESSIBLE

    def __repr__(self) -> str:
        return "<WorkplaceNode {} [{}]>".format(self.name,
                                                self.accessibility)


class Connection:
    """A live media connection between two workplace nodes."""

    def __init__(self, kind: str, source: str, target: str,
                 started_at: float,
                 flows: Optional[List[Tuple[MediaSource,
                                            StreamBinding,
                                            MediaSink]]] = None) -> None:
        self.connection_id = "conn-{}".format(next(_connection_ids))
        self.kind = kind
        self.source = source
        self.target = target
        self.started_at = started_at
        self.ended_at: Optional[float] = None
        self.flows = flows or []

    @property
    def live(self) -> bool:
        return self.ended_at is None

    def __repr__(self) -> str:
        return "<Connection {} {} {}->{}>".format(
            self.connection_id, self.kind, self.source, self.target)


class MediaSpace:
    """The community's set of nodes and live connections."""

    def __init__(self, env: Environment,
                 network: Optional[Network] = None,
                 awareness: Optional[AwarenessBus] = None,
                 glance_duration: float = 8.0,
                 video_rate: float = 12.5,
                 frame_size: int = 3000) -> None:
        if glance_duration <= 0:
            raise ReproError("glance_duration must be positive")
        self.env = env
        self.network = network
        self.awareness = awareness or AwarenessBus(env)
        self.glance_duration = glance_duration
        self.video_rate = video_rate
        self.frame_size = frame_size
        self.nodes: Dict[str, WorkplaceNode] = {}
        self.connections: List[Connection] = []
        self.counters = Counter()

    def add_node(self, name: str, host: Optional[str] = None
                 ) -> WorkplaceNode:
        """Install a camera/monitor at a workplace."""
        if name in self.nodes:
            raise ReproError("node {} already exists".format(name))
        if host is not None and self.network is not None:
            self.network.host(host)  # validate / attach
        node = WorkplaceNode(name, host=host)
        self.nodes[name] = node
        return node

    def node(self, name: str) -> WorkplaceNode:
        try:
            return self.nodes[name]
        except KeyError:
            raise ReproError("no media-space node named {}".format(name))

    def set_accessibility(self, name: str, level: str) -> None:
        """A person's control over being looked at."""
        if level not in (ACCESSIBLE, BUSY, DO_NOT_DISTURB):
            raise ReproError("unknown accessibility: " + level)
        self.node(name).accessibility = level
        self.awareness.publish(name, name, "accessibility-" + level)

    def live_connections(self) -> List[Connection]:
        return [c for c in self.connections if c.live]

    # -- connection types ----------------------------------------------------------

    def video_wall(self, a: str, b: str) -> Connection:
        """A standing two-way link between common areas (Portland)."""
        self.node(a)
        self.node(b)
        flows = self._make_flows(a, b, bidirectional=True)
        connection = Connection(VIDEO_WALL, a, b, self.env.now,
                                flows=flows)
        self.connections.append(connection)
        self.counters.incr("video_walls")
        for source, _, _ in flows:
            source.start()
        self.awareness.publish("building", a, "video-wall",
                               detail={"to": b})
        return connection

    def glance(self, looker: str, target: str) -> Event:
        """A brief one-way look into a colleague's workplace.

        Fires with the :class:`Connection` (ended) or ``None`` when the
        target's accessibility refused it.  The target always *learns of*
        the glance — being looked at is never invisible.
        """
        self.node(looker)
        node = self.node(target)
        done = self.env.event()
        self.counters.incr("glances_attempted")
        # Reciprocity: the target is told someone looked, whatever the
        # outcome.
        self.awareness.publish(looker, target, "glance")
        if node.accessibility != ACCESSIBLE:
            self.counters.incr("glances_refused")
            done.succeed(None)
            return done
        self.env.process(self._run_glance(looker, target, done))
        return done

    def cruise(self, looker: str, targets: List[str]) -> Event:
        """Cruiser: glance past a sequence of offices; fires with the
        list of connections that succeeded."""
        if not targets:
            raise ReproError("a cruise needs at least one target")
        done = self.env.event()
        self.env.process(self._run_cruise(looker, list(targets), done))
        return done

    def office_share(self, a: str, b: str) -> Connection:
        """A long-lived two-way link between two offices."""
        node_b = self.node(b)
        self.node(a)
        if node_b.accessibility == DO_NOT_DISTURB:
            raise ReproError(
                "{} is not accepting connections".format(b))
        flows = self._make_flows(a, b, bidirectional=True)
        connection = Connection(OFFICE_SHARE, a, b, self.env.now,
                                flows=flows)
        self.connections.append(connection)
        self.counters.incr("office_shares")
        for source, _, _ in flows:
            source.start()
        self.awareness.publish(a, b, "office-share")
        return connection

    def hang_up(self, connection: Connection) -> None:
        """End a live connection."""
        if not connection.live:
            return
        connection.ended_at = self.env.now
        for source, _, _ in connection.flows:
            source.stop()
        self.awareness.publish(connection.source, connection.target,
                               "hang-up")

    # -- internals -------------------------------------------------------------------

    def _make_flows(self, a: str, b: str, bidirectional: bool):
        """Create real video flows when both ends have network hosts."""
        if self.network is None:
            return []
        host_a = self.nodes[a].host
        host_b = self.nodes[b].host
        if host_a is None or host_b is None or host_a == host_b:
            return []
        flows = []
        pairs = [(host_a, host_b)]
        if bidirectional:
            pairs.append((host_b, host_a))
        for src, dst in pairs:
            binding = StreamBinding(self.network, src, dst,
                                    port=7000 + next(_connection_ids))
            sink = MediaSink(self.env, dst + "-wall",
                             target_delay=0.2)
            binding.attach_sink(sink)
            source = MediaSource(self.env, src + "-cam",
                                 binding.send_frame,
                                 rate=self.video_rate,
                                 frame_size=self.frame_size)
            flows.append((source, binding, sink))
        return flows

    def _run_glance(self, looker: str, target: str, done: Event):
        flows = self._make_flows(target, looker, bidirectional=False)
        connection = Connection(GLANCE, looker, target, self.env.now,
                                flows=flows)
        self.connections.append(connection)
        self.counters.incr("glances_granted")
        for source, _, _ in flows:
            source.start(duration=self.glance_duration)
        yield self.env.timeout(self.glance_duration)
        connection.ended_at = self.env.now
        done.succeed(connection)

    def _run_cruise(self, looker: str, targets: List[str], done: Event):
        succeeded = []
        self.counters.incr("cruises")
        for target in targets:
            outcome = yield self.glance(looker, target)
            if outcome is not None:
                succeeded.append(outcome)
        done.succeed(succeeded)
