"""Virtual rooms: spatial partitioning of cooperative work (§3.3.2).

*"the concept of rooms is used extensively in user interfaces as a means
of partitioning and organising work... several projects employ a virtual
meeting room metaphor in computer conferencing systems, providing
facilities such as personal spaces (offices), shared spaces (meeting
rooms) and doors to move between such spaces."*

A :class:`VirtualBuilding` holds offices and meeting rooms connected by
doors.  Doors carry the social protocol: an **open** door admits anyone,
an **ajar** door requires a knock that the occupants answer, a **closed**
door refuses entry (do-not-disturb).  Occupancy changes publish awareness
events, so presence is visible at a glance building-wide.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.awareness.events import AwarenessBus
from repro.errors import ReproError
from repro.sim import Counter, Environment, Event

OFFICE = "office"
MEETING_ROOM = "meeting-room"
COMMON = "common"

DOOR_OPEN = "open"
DOOR_AJAR = "ajar"
DOOR_CLOSED = "closed"

ENTER_GRANTED = "granted"
ENTER_REFUSED = "refused"
ENTER_NO_ANSWER = "no-answer"


class Room:
    """One space: an office, a meeting room or a common area."""

    def __init__(self, building: "VirtualBuilding", name: str,
                 kind: str = MEETING_ROOM,
                 owner: Optional[str] = None,
                 capacity: int = 12) -> None:
        if kind not in (OFFICE, MEETING_ROOM, COMMON):
            raise ReproError("unknown room kind: " + kind)
        if capacity < 1:
            raise ReproError("capacity must be >= 1")
        self.building = building
        self.name = name
        self.kind = kind
        self.owner = owner
        self.capacity = capacity
        self.occupants: List[str] = []
        self.door_state = DOOR_OPEN if kind != OFFICE else DOOR_AJAR
        #: How occupants answer knocks: (visitor) -> bool.
        self.answer_policy: Callable[[str], bool] = lambda visitor: True

    @property
    def is_full(self) -> bool:
        return len(self.occupants) >= self.capacity

    def set_door(self, state: str, by: Optional[str] = None) -> None:
        """Change the door state (occupants or the owner only)."""
        if state not in (DOOR_OPEN, DOOR_AJAR, DOOR_CLOSED):
            raise ReproError("unknown door state: " + state)
        if by is not None and by != self.owner \
                and by not in self.occupants:
            raise ReproError(
                "{} may not change {}'s door".format(by, self.name))
        self.door_state = state
        self.building.awareness.publish(
            by or (self.owner or "building"), self.name,
            "door-" + state)

    def __repr__(self) -> str:
        return "<Room {} [{}] door={} occupants={}>".format(
            self.name, self.kind, self.door_state, len(self.occupants))


class VirtualBuilding:
    """A set of rooms, the people in them, and presence awareness."""

    def __init__(self, env: Environment,
                 awareness: Optional[AwarenessBus] = None,
                 knock_timeout: float = 10.0) -> None:
        if knock_timeout <= 0:
            raise ReproError("knock_timeout must be positive")
        self.env = env
        self.awareness = awareness or AwarenessBus(env)
        self.knock_timeout = knock_timeout
        self.rooms: Dict[str, Room] = {}
        self.whereis: Dict[str, Optional[str]] = {}
        self.counters = Counter()

    def add_room(self, name: str, kind: str = MEETING_ROOM,
                 owner: Optional[str] = None,
                 capacity: int = 12) -> Room:
        """Create a room in the building."""
        if name in self.rooms:
            raise ReproError("room {} already exists".format(name))
        room = Room(self, name, kind=kind, owner=owner,
                    capacity=capacity)
        self.rooms[name] = room
        return room

    def room(self, name: str) -> Room:
        try:
            return self.rooms[name]
        except KeyError:
            raise ReproError("no room named {}".format(name))

    def location_of(self, person: str) -> Optional[str]:
        """Which room ``person`` is in (None = in the corridor)."""
        return self.whereis.get(person)

    def occupancy(self) -> Dict[str, List[str]]:
        """Presence at a glance: every room's occupants."""
        return {name: list(room.occupants)
                for name, room in self.rooms.items()}

    # -- movement -------------------------------------------------------------

    def enter(self, person: str, room_name: str) -> Event:
        """Try to enter a room; fires with the outcome string.

        Open doors admit immediately; ajar doors require a knock
        answered by the room's policy within the knock timeout; closed
        doors refuse outright.  Entering always leaves the previous room.
        """
        room = self.room(room_name)
        done = self.env.event()
        self.counters.incr("entries_attempted")
        if room.is_full or room.door_state == DOOR_CLOSED:
            self.counters.incr("entries_refused")
            done.succeed(ENTER_REFUSED)
            return done
        if room.door_state == DOOR_OPEN:
            self._admit(person, room)
            done.succeed(ENTER_GRANTED)
            return done
        self.env.process(self._knock(person, room, done))
        return done

    def leave(self, person: str) -> None:
        """Step out into the corridor."""
        current = self.whereis.get(person)
        if current is None:
            return
        room = self.rooms[current]
        if person in room.occupants:
            room.occupants.remove(person)
        self.whereis[person] = None
        self.awareness.publish(person, room.name, "leave")

    # -- internals --------------------------------------------------------------

    def _admit(self, person: str, room: Room) -> None:
        self.leave(person)
        room.occupants.append(person)
        self.whereis[person] = room.name
        self.counters.incr("entries_granted")
        self.awareness.publish(person, room.name, "enter")

    def _knock(self, person: str, room: Room, done: Event):
        self.awareness.publish(person, room.name, "knock")
        self.counters.incr("knocks")
        # The occupants consider the knock for a social moment.
        yield self.env.timeout(min(1.0, self.knock_timeout / 2))
        if room.door_state == DOOR_CLOSED or room.is_full:
            self.counters.incr("entries_refused")
            done.succeed(ENTER_REFUSED)
            return
        if not room.occupants and room.kind == OFFICE:
            # Nobody home: the knock goes unanswered.
            yield self.env.timeout(self.knock_timeout / 2)
            self.counters.incr("unanswered_knocks")
            done.succeed(ENTER_NO_ANSWER)
            return
        if room.answer_policy(person):
            self._admit(person, room)
            done.succeed(ENTER_GRANTED)
        else:
            self.counters.incr("entries_refused")
            done.succeed(ENTER_REFUSED)
