"""The use of space (§3.3.2): rooms, doors and media spaces."""

from repro.spaces.mediaspace import (
    ACCESSIBLE,
    BUSY,
    Connection,
    DO_NOT_DISTURB,
    GLANCE,
    MediaSpace,
    OFFICE_SHARE,
    VIDEO_WALL,
    WorkplaceNode,
)
from repro.spaces.virtual import Utterance, VirtualEnvironment
from repro.spaces.rooms import (
    COMMON,
    DOOR_AJAR,
    DOOR_CLOSED,
    DOOR_OPEN,
    ENTER_GRANTED,
    ENTER_NO_ANSWER,
    ENTER_REFUSED,
    MEETING_ROOM,
    OFFICE,
    Room,
    VirtualBuilding,
)

__all__ = [
    "ACCESSIBLE",
    "BUSY",
    "COMMON",
    "Connection",
    "DOOR_AJAR",
    "DOOR_CLOSED",
    "DOOR_OPEN",
    "DO_NOT_DISTURB",
    "ENTER_GRANTED",
    "ENTER_NO_ANSWER",
    "ENTER_REFUSED",
    "GLANCE",
    "MEETING_ROOM",
    "MediaSpace",
    "OFFICE",
    "OFFICE_SHARE",
    "Room",
    "Utterance",
    "VIDEO_WALL",
    "VirtualBuilding",
    "VirtualEnvironment",
    "WorkplaceNode",
]
