"""Simulated packet network: links, topologies, hosts and transports.

This is the engineering substrate every middleware layer runs over.  The
model is packet-level: per-link transmission delay (serialisation at the
link bandwidth), propagation latency with optional jitter, Bernoulli loss,
static shortest-path routing, source-rooted multicast trees and radio links
with the paper's three mobile connectivity levels.
"""

from repro.net.link import Link, LinkStats
from repro.net.multicast import MulticastGroup, MulticastService
from repro.net.network import Host, Network
from repro.net.packet import HEADER_BYTES, Packet
from repro.net.radio import (
    ConnectivityLevel,
    ConnectivitySchedule,
    RadioLink,
    attach_mobile,
    periodic_trace,
)
from repro.net.topology import Topology, dumbbell, lan, line, star, wan
from repro.net.transport import (
    ReliableChannel,
    RemoteException,
    RpcEndpoint,
    RpcError,
)

__all__ = [
    "ConnectivityLevel",
    "ConnectivitySchedule",
    "HEADER_BYTES",
    "Host",
    "Link",
    "LinkStats",
    "MulticastGroup",
    "MulticastService",
    "Network",
    "Packet",
    "RadioLink",
    "ReliableChannel",
    "RemoteException",
    "RpcEndpoint",
    "RpcError",
    "Topology",
    "attach_mobile",
    "dumbbell",
    "lan",
    "line",
    "periodic_trace",
    "star",
    "wan",
]
