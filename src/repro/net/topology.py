"""Network topologies and shortest-path routing tables.

A :class:`Topology` is an undirected graph of named nodes joined by
:class:`~repro.net.link.Link` objects.  Builders create the standard shapes
used by the experiments: a single LAN, a WAN of sites, stars and dumbbells.
Routing is static shortest-path by latency (Dijkstra), recomputed on demand.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import NetworkError, RoutingError
from repro.net.link import Link
from repro.sim import Environment, RandomStreams

#: Route-cache miss sentinel (``None`` is a cached "no route" verdict).
_MISS: object = object()


class Topology:
    """An undirected graph of nodes and links."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.nodes: List[str] = []
        self._adjacency: Dict[str, Dict[str, Link]] = {}
        self._paths: Dict[str, Dict[str, Optional[str]]] = {}
        self._dirty = True
        # Materialised (src, dst) -> [Link, ...] routes; ``None`` records a
        # known-unreachable pair so partitioned storms don't re-walk.  Both
        # caches die with the first-hop tables on invalidate_routes().
        self._route_cache: Dict[Tuple[str, str], Optional[List[Link]]] = {}
        self._links_cache: Optional[List[Link]] = None
        # Route tables memoised per link-state epoch (every link's
        # up/weight, in links() order).  Fault schedules mostly *revisit*
        # states — a flap toggles between two, a partition heals back to
        # the original — so recomputation after an invalidation is a
        # dict hit instead of |nodes| Dijkstra walks.  Dies on any graph
        # shape change (add_node/add_link).
        self._state_cache: Dict[tuple, tuple] = {}

    def add_node(self, name: str) -> str:
        """Add a node (idempotent) and return its name."""
        if name not in self._adjacency:
            self.nodes.append(name)
            self._adjacency[name] = {}
            self._dirty = True
            self._state_cache = {}
        return name

    def add_link(self, a: str, b: str, **link_kwargs) -> Link:
        """Join ``a`` and ``b`` with a new link (creating nodes as needed)."""
        if a == b:
            raise NetworkError("self-links are not allowed")
        self.add_node(a)
        self.add_node(b)
        if b in self._adjacency[a]:
            raise NetworkError("link {}<->{} already exists".format(a, b))
        link = Link(self.env, a, b, **link_kwargs)
        self._adjacency[a][b] = link
        self._adjacency[b][a] = link
        self._dirty = True
        self._links_cache = None
        self._state_cache = {}
        return link

    def link_between(self, a: str, b: str) -> Link:
        """The link joining ``a`` and ``b``."""
        try:
            return self._adjacency[a][b]
        except KeyError:
            raise NetworkError("no link {}<->{}".format(a, b))

    def neighbours(self, node: str) -> List[str]:
        """Directly connected nodes."""
        if node not in self._adjacency:
            raise NetworkError("unknown node {}".format(node))
        return list(self._adjacency[node])

    def links(self) -> List[Link]:
        """All links, each once.

        The list is cached until the next :meth:`add_link` — callers must
        treat it as read-only.
        """
        cached = self._links_cache
        if cached is None:
            cached = []
            for node, peers in self._adjacency.items():
                for peer, link in peers.items():
                    if node < peer:
                        cached.append(link)
            self._links_cache = cached
        return cached

    # -- routing -----------------------------------------------------------

    def _recompute(self) -> None:
        # One epoch key per distinct link state; a revisited state (flap
        # back up, partition heal) reuses its first-hop tables AND its
        # materialised-route cache — both are pure functions of the key,
        # and the shared route cache only ever grows entries valid for
        # that same state.
        state = tuple((link.up, link.routing_weight)
                      for link in self.links())
        cached = self._state_cache.get(state)
        if cached is None:
            cached = self._state_cache[state] = (
                {node: self._dijkstra(node) for node in self.nodes}, {})
        self._paths, self._route_cache = cached
        self._dirty = False

    def _dijkstra(self, source: str) -> Dict[str, Optional[str]]:
        """First-hop table from ``source`` (cost = sum of link latencies)."""
        dist: Dict[str, float] = {source: 0.0}
        first_hop: Dict[str, Optional[str]] = {source: None}
        heap: List[Tuple[float, str, Optional[str]]] = [(0.0, source, None)]
        visited = set()
        while heap:
            cost, node, hop = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            first_hop[node] = hop
            for peer, link in self._adjacency[node].items():
                if peer in visited or not link.up:
                    continue
                new_cost = cost + link.routing_weight
                if new_cost < dist.get(peer, float("inf")):
                    dist[peer] = new_cost
                    heapq.heappush(
                        heap, (new_cost, peer, hop if hop else peer))
        return first_hop

    def invalidate_routes(self) -> None:
        """Force route recomputation (call after link state changes)."""
        self._dirty = True

    def path(self, src: str, dst: str) -> List[Link]:
        """The ordered links from ``src`` to ``dst``.

        Routes are materialised once per (src, dst) pair and served from a
        cache until :meth:`invalidate_routes`; callers must treat the list
        as read-only.  Unreachable pairs are cached too, so a partition
        costs one walk per pair rather than one per packet.
        """
        if self._dirty:
            self._recompute()
        cached = self._route_cache.get((src, dst), _MISS)
        if cached is not _MISS:
            if cached is None:
                raise RoutingError("no route {}->{}".format(src, dst))
            return cached
        if src not in self._adjacency or dst not in self._adjacency:
            raise RoutingError("unknown endpoint {}->{}".format(src, dst))
        if src == dst:
            self._route_cache[(src, dst)] = []
            return self._route_cache[(src, dst)]
        links: List[Link] = []
        node = src
        guard = len(self.nodes) + 1
        while node != dst:
            hop = self._paths[node].get(dst)
            if hop is None:
                self._route_cache[(src, dst)] = None
                raise RoutingError("no route {}->{}".format(src, dst))
            links.append(self._adjacency[node][hop])
            node = hop
            guard -= 1
            if guard <= 0:
                raise RoutingError(
                    "routing loop computing {}->{}".format(src, dst))
        self._route_cache[(src, dst)] = links
        return links

    def path_latency(self, src: str, dst: str) -> float:
        """Sum of nominal link latencies along the route."""
        return sum(link.latency for link in self.path(src, dst))

    def hops(self, src: str, dst: str) -> int:
        """Number of links on the route."""
        return len(self.path(src, dst))


# -- builders ----------------------------------------------------------------

def lan(env: Environment, hosts: int, switch: str = "switch",
        prefix: str = "host", latency: float = 0.0002,
        bandwidth: float = 1e9, seed: int = 0) -> Topology:
    """A switched LAN: ``hosts`` hosts hanging off one switch."""
    if hosts < 1:
        raise NetworkError("a LAN needs at least one host")
    streams = RandomStreams(seed)
    topo = Topology(env)
    topo.add_node(switch)
    for i in range(hosts):
        topo.add_link("{}{}".format(prefix, i), switch,
                      latency=latency, bandwidth=bandwidth,
                      rng=streams.stream("lan-link-{}".format(i)))
    return topo


def wan(env: Environment, sites: int, hosts_per_site: int = 2,
        site_latency: float = 0.02, site_bandwidth: float = 1e7,
        lan_latency: float = 0.0002, lan_bandwidth: float = 1e9,
        jitter: float = 0.0, loss: float = 0.0,
        seed: int = 0) -> Topology:
    """A WAN: per-site LANs whose routers form a full mesh of WAN links.

    Node naming: routers are ``site<i>.router``; hosts ``site<i>.host<j>``.
    """
    if sites < 1:
        raise NetworkError("a WAN needs at least one site")
    streams = RandomStreams(seed)
    topo = Topology(env)
    for i in range(sites):
        router = "site{}.router".format(i)
        topo.add_node(router)
        for j in range(hosts_per_site):
            topo.add_link("site{}.host{}".format(i, j), router,
                          latency=lan_latency, bandwidth=lan_bandwidth,
                          rng=streams.stream("lan-{}-{}".format(i, j)))
    for i in range(sites):
        for k in range(i + 1, sites):
            topo.add_link("site{}.router".format(i),
                          "site{}.router".format(k),
                          latency=site_latency, bandwidth=site_bandwidth,
                          jitter=jitter, loss=loss,
                          rng=streams.stream("wan-{}-{}".format(i, k)))
    return topo


def star(env: Environment, leaves: int, hub: str = "hub",
         latency: float = 0.005, bandwidth: float = 1e8,
         seed: int = 0) -> Topology:
    """A star of ``leaves`` nodes around a hub."""
    streams = RandomStreams(seed)
    topo = Topology(env)
    topo.add_node(hub)
    for i in range(leaves):
        topo.add_link("leaf{}".format(i), hub,
                      latency=latency, bandwidth=bandwidth,
                      rng=streams.stream("star-{}".format(i)))
    return topo


def dumbbell(env: Environment, left: int, right: int,
             bottleneck_bandwidth: float = 1e6,
             bottleneck_latency: float = 0.01,
             edge_bandwidth: float = 1e8,
             edge_latency: float = 0.001,
             seed: int = 0) -> Topology:
    """Two access clusters joined by one bottleneck link (for QoS tests)."""
    streams = RandomStreams(seed)
    topo = Topology(env)
    topo.add_link("routerL", "routerR",
                  latency=bottleneck_latency,
                  bandwidth=bottleneck_bandwidth,
                  rng=streams.stream("bottleneck"))
    for i in range(left):
        topo.add_link("left{}".format(i), "routerL",
                      latency=edge_latency, bandwidth=edge_bandwidth,
                      rng=streams.stream("left-{}".format(i)))
    for i in range(right):
        topo.add_link("right{}".format(i), "routerR",
                      latency=edge_latency, bandwidth=edge_bandwidth,
                      rng=streams.stream("right-{}".format(i)))
    return topo


def line(env: Environment, length: int, latency: float = 0.005,
         bandwidth: float = 1e8, seed: int = 0) -> Topology:
    """A chain n0 - n1 - ... - n(length-1), for multi-hop routing tests."""
    if length < 2:
        raise NetworkError("a line needs at least two nodes")
    streams = RandomStreams(seed)
    topo = Topology(env)
    for i in range(length - 1):
        topo.add_link("n{}".format(i), "n{}".format(i + 1),
                      latency=latency, bandwidth=bandwidth,
                      rng=streams.stream("line-{}".format(i)))
    return topo
