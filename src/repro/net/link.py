"""Point-to-point links with latency, bandwidth, jitter and loss."""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.errors import NetworkError
from repro.sim import Environment, PriorityResource


class LinkStats:
    """Per-link accounting used by the experiment harnesses."""

    __slots__ = ("packets", "bytes", "drops")

    def __init__(self) -> None:
        self.packets = 0
        self.bytes = 0
        self.drops = 0


class Link:
    """A bidirectional link between two nodes.

    Each direction has its own transmission channel (packets serialise on
    it at ``bandwidth`` bits/s) followed by a propagation delay of
    ``latency`` seconds, optionally perturbed by uniform ``jitter`` and
    subject to independent ``loss`` probability per packet.
    """

    def __init__(self, env: Environment, a: str, b: str,
                 latency: float = 0.001, bandwidth: float = 1e8,
                 jitter: float = 0.0, loss: float = 0.0,
                 rng: Optional[random.Random] = None) -> None:
        if latency < 0:
            raise NetworkError("latency must be non-negative")
        if bandwidth <= 0:
            raise NetworkError("bandwidth must be positive")
        if not 0 <= loss < 1:
            raise NetworkError("loss must be in [0, 1)")
        if jitter < 0:
            raise NetworkError("jitter must be non-negative")
        self.env = env
        self.a = a
        self.b = b
        #: Cached ``"a<->b"`` metric/span label (hot paths format it once).
        self.label = "{}<->{}".format(a, b)
        self.latency = latency
        self.bandwidth = bandwidth
        self.jitter = jitter
        self.loss = loss
        self.up = True
        #: Routing cost multiplier (communications management raises it
        #: on congested links so routes steer around them).
        self.weight_multiplier = 1.0
        # Fault-injection impairments (repro.faults): a latency storm
        # multiplies propagation delay, a loss burst adds drop
        # probability.  Both compose across overlapping faults and are
        # exactly inert at (1.0, 0.0).
        self._latency_scale = 1.0
        self._extra_loss = 0.0
        self._rng = rng or random.Random(0)  # repro: allow-RPR002 (constant-seeded fallback)
        # Priority channels let QoS-reserved flows pre-empt queued
        # best-effort packets (the engineering enforcement behind §4.2.2).
        self._channels: Dict[str, PriorityResource] = {
            a: PriorityResource(env, capacity=1),
            b: PriorityResource(env, capacity=1),
        }
        self.stats = LinkStats()

    @property
    def ends(self):
        """The two endpoint node names."""
        return (self.a, self.b)

    @property
    def routing_weight(self) -> float:
        """The cost routing minimises: latency scaled by congestion."""
        return self.latency * self.weight_multiplier

    def other_end(self, node: str) -> str:
        """The endpoint opposite ``node``."""
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise NetworkError("{} is not an endpoint of {}".format(node, self))

    def channel(self, from_node: str) -> PriorityResource:
        """The transmission channel for the given direction."""
        try:
            return self._channels[from_node]
        except KeyError:
            raise NetworkError(
                "{} is not an endpoint of {}".format(from_node, self))

    # NOTE: Network._carry and Network._carry_legacy both inline
    # transmission_delay, drops_packet and propagation_delay on their
    # per-hop fast paths.  If the semantics here change — especially
    # *when* the RNG is drawn, which replay digests depend on — update
    # repro.net.network (both carries) to match.  The carries
    # additionally attribute each drop: a downed link is "link-down"
    # (no draw, as here); otherwise draws below ``loss`` are "loss" and
    # draws in the ``_extra_loss`` band above it are "impairment".

    def transmission_delay(self, wire_bytes: int) -> float:
        """Seconds to clock ``wire_bytes`` onto the link."""
        return (wire_bytes * 8.0) / self.bandwidth

    def propagation_delay(self) -> float:
        """Latency (scaled by any active storm) plus a jitter draw."""
        delay = self.latency * self._latency_scale
        if self.jitter <= 0:
            return delay
        return delay + self._rng.uniform(0, self.jitter)

    def drops_packet(self) -> bool:
        """Bernoulli loss draw (also true while the link is down)."""
        if not self.up:
            return True
        probability = self.loss + self._extra_loss
        if probability <= 0:
            return False
        return self._rng.random() < min(probability, 1.0)

    def set_up(self, up: bool) -> None:
        """Administratively raise or cut the link."""
        self.up = up

    def impair(self, latency_scale: float = 1.0,
               extra_loss: float = 0.0) -> None:
        """Apply a fault impairment (composes with any already active)."""
        if latency_scale <= 0:
            raise NetworkError("latency_scale must be positive")
        if extra_loss < 0:
            raise NetworkError("extra_loss must be non-negative")
        self._latency_scale *= latency_scale
        self._extra_loss += extra_loss

    def relieve(self, latency_scale: float = 1.0,
                extra_loss: float = 0.0) -> None:
        """Reverse a previously applied :meth:`impair`."""
        if latency_scale <= 0:
            raise NetworkError("latency_scale must be positive")
        self._latency_scale /= latency_scale
        if abs(self._latency_scale - 1.0) < 1e-12:
            self._latency_scale = 1.0
        self._extra_loss -= extra_loss
        if self._extra_loss < 1e-12:
            self._extra_loss = 0.0

    @property
    def impaired(self) -> bool:
        """Is any storm/burst impairment currently active?"""
        return self._latency_scale != 1.0 or self._extra_loss != 0.0

    def __repr__(self) -> str:
        return "<Link {}<->{} {:.3g}ms {:.3g}Mb/s>".format(
            self.a, self.b, self.latency * 1e3, self.bandwidth / 1e6)
