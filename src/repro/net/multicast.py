"""Multicast: spanning-tree group delivery of datagrams.

The paper (§4.2.2-iv) requires *multicast transport protocols ... to enable
group communication of continuous media*.  This module implements source-
rooted shortest-path-tree multicast: a packet traverses each tree link once,
in contrast to repeated unicast which re-sends it along every member's whole
path.  Experiment E9 compares the two.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set

from repro.errors import GroupError, NetworkError, RoutingError
from repro.net.network import Network
from repro.net.packet import Packet


class MulticastGroup:
    """A named set of member hosts."""

    def __init__(self, service: "MulticastService", name: str) -> None:
        self.service = service
        self.name = name
        self.members: Set[str] = set()

    def join(self, host_name: str) -> None:
        """Add a host (must exist in the network) to the group."""
        if host_name not in self.service.network.hosts:
            raise GroupError(
                "host {} is not attached to the network".format(host_name))
        self.members.add(host_name)

    def leave(self, host_name: str) -> None:
        """Remove a host from the group."""
        self.members.discard(host_name)

    def __contains__(self, host_name: str) -> bool:
        return host_name in self.members

    def __len__(self) -> int:
        return len(self.members)


class MulticastService:
    """Source-rooted tree multicast over a network."""

    def __init__(self, network: Network, port: int = 3) -> None:
        self.network = network
        self.env = network.env
        self.port = port
        self.groups: Dict[str, MulticastGroup] = {}

    def create_group(self, name: str) -> MulticastGroup:
        """Create (or fetch) the group called ``name``."""
        if name not in self.groups:
            self.groups[name] = MulticastGroup(self, name)
        return self.groups[name]

    def send(self, group_name: str, src: str, payload: Any = None,
             size: int = 0, loopback: bool = False,
             port: Optional[int] = None) -> List[Packet]:
        """Multicast to every member; returns the per-member packets.

        With ``loopback`` the sender (if a member) also receives a copy,
        delivered immediately.
        """
        group = self.groups.get(group_name)
        if group is None:
            raise GroupError("no multicast group {}".format(group_name))
        dst_port = self.port if port is None else port
        # The sender never routes to itself through the tree; with
        # loopback its copy is delivered directly below.
        targets = set(group.members)
        targets.discard(src)
        packets: List[Packet] = []
        tree = self._build_tree(src, targets)
        packet_for: Dict[str, Packet] = {}
        for member in targets:
            packet = Packet(src, member, payload=payload, size=size,
                            port=dst_port, created_at=self.env.now)
            packet_for[member] = packet
            packets.append(packet)
        if loopback and src in group.members:
            self_packet = Packet(src, src, payload=payload, size=size,
                                 port=dst_port, created_at=self.env.now)
            packets.append(self_packet)
            host = self.network.hosts.get(src)
            if host is not None:
                host._deliver(self_packet)
        if targets:
            self.env.process(
                self._walk(src, tree, packet_for, payload, size, dst_port))
        return packets

    def unicast_fanout(self, group_name: str, src: str, payload: Any = None,
                       size: int = 0, port: Optional[int] = None
                       ) -> List[Packet]:
        """Baseline: send one independent unicast to each member."""
        group = self.groups.get(group_name)
        if group is None:
            raise GroupError("no multicast group {}".format(group_name))
        dst_port = self.port if port is None else port
        host = self.network.host(src)
        return [host.send(member, payload=payload, size=size, port=dst_port)
                for member in group.members if member != src]

    # -- internals ---------------------------------------------------------

    def _build_tree(self, src: str,
                    targets: Set[str]) -> Dict[str, List[str]]:
        """Union of shortest paths from src, as a node->children map."""
        children: Dict[str, List[str]] = {}
        for member in targets:
            if member == src:
                continue
            try:
                links = self.network.topology.path(src, member)
            except RoutingError:
                continue  # unreachable member: dropped, like a lost packet
            node = src
            for link in links:
                nxt = link.other_end(node)
                branch = children.setdefault(node, [])
                if nxt not in branch:
                    branch.append(nxt)
                node = nxt
        return children

    def _walk(self, node: str, tree: Dict[str, List[str]],
              packet_for: Dict[str, Packet], payload: Any, size: int,
              port: int):
        """Forward along each outgoing tree edge concurrently."""
        for child in tree.get(node, []):
            self.env.process(self._edge(
                node, child, tree, packet_for, payload, size, port))
        return
        yield  # pragma: no cover - makes this a generator

    def _edge(self, node: str, child: str, tree: Dict[str, List[str]],
              packet_for: Dict[str, Packet], payload: Any, size: int,
              port: int):
        link = self.network.topology.link_between(node, child)
        wire = size + 40
        channel = link.channel(node)
        with channel.request() as claim:
            yield claim
            yield self.env.timeout(link.transmission_delay(wire))
        if link.drops_packet():
            link.stats.drops += 1
            return  # the whole subtree misses this packet
        yield self.env.timeout(link.propagation_delay())
        link.stats.packets += 1
        link.stats.bytes += wire
        packet = packet_for.get(child)
        if packet is not None:
            packet.hops += 1
            host = self.network.hosts.get(child)
            if host is not None:
                host._deliver(packet)
        yield from self._walk(child, tree, packet_for, payload, size, port)
