"""The network: hosts, packet delivery and per-hop simulation.

A :class:`Network` wraps a :class:`~repro.net.topology.Topology` and moves
:class:`~repro.net.packet.Packet` objects between :class:`Host` objects.
Each packet is driven by its own simulation process: per link it serialises
on the directional channel (transmission delay), then waits the propagation
delay, and may be dropped by the link's loss model.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.errors import NetworkError, RoutingError
from repro.net.packet import Packet
from repro.net.topology import Topology
from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.obs.propagation import extract
from repro.obs.span import NOOP_SPAN
from repro.obs.tracer import get_tracer
from repro.sim import Counter, Environment, Store, Tally

#: Default packet priority; QoS-reserved flows use lower (better) values.
BEST_EFFORT_PRIORITY = 10
RESERVED_PRIORITY = 0


class Host:
    """A network endpoint attached to a topology node.

    Incoming packets are demultiplexed by port into per-port inboxes;
    a process receives with ``yield host.receive(port)``.  Handlers may be
    registered instead for push-style delivery.
    """

    def __init__(self, network: "Network", name: str) -> None:
        self.network = network
        self.env = network.env
        self.name = name
        self._inboxes: Dict[int, Store] = {}
        self._handlers: Dict[int, Callable[[Packet], None]] = {}
        self.sent = 0
        self.received = 0

    def inbox(self, port: int = 0) -> Store:
        """The inbox store for ``port`` (created on first use)."""
        if port not in self._inboxes:
            self._inboxes[port] = Store(self.env)
        return self._inboxes[port]

    def send(self, dst: str, payload: Any = None, size: int = 0,
             port: int = 0, headers: Optional[Dict[str, Any]] = None) -> Packet:
        """Send a datagram (fire-and-forget); returns the packet."""
        packet = Packet(self.name, dst, payload=payload, size=size,
                        port=port, created_at=self.env.now, headers=headers)
        self.sent += 1
        self.network.transmit(packet)
        return packet

    def receive(self, port: int = 0):
        """An event yielding the next packet on ``port``."""
        return self.inbox(port).get()

    def on_packet(self, port: int,
                  handler: Callable[[Packet], None]) -> None:
        """Register a push handler for ``port`` (replaces inbox delivery)."""
        self._handlers[port] = handler

    def _deliver(self, packet: Packet) -> None:
        self.received += 1
        packet.delivered_at = self.env.now
        handler = self._handlers.get(packet.port)
        if handler is not None:
            handler(packet)
        else:
            self.inbox(packet.port).put(packet)

    def __repr__(self) -> str:
        return "<Host {}>".format(self.name)


class Network:
    """Moves packets across a topology between registered hosts."""

    def __init__(self, env: Environment, topology: Topology,
                 tracer=None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if topology.env is not env:
            raise NetworkError("topology belongs to a different environment")
        self.env = env
        self.topology = topology
        self.hosts: Dict[str, Host] = {}
        self.counters = Counter()
        self.delivery_latency = Tally("delivery-latency")
        #: Optional hook called with (packet, reason) on every drop.
        self.on_drop: Optional[Callable[[Packet, str], None]] = None
        #: Per-reason drop tally behind :meth:`drop_stats`.
        self._drop_reasons: Dict[str, int] = {}
        # Instance overrides; None means "use the process-wide default",
        # resolved per packet so tracing can be enabled mid-run.
        self._tracer = tracer
        self._metrics = metrics

    def host(self, name: str) -> Host:
        """Create (or fetch) the host attached to topology node ``name``."""
        if name not in self.topology._adjacency:
            raise NetworkError("no topology node named {}".format(name))
        if name not in self.hosts:
            self.hosts[name] = Host(self, name)
        return self.hosts[name]

    def transmit(self, packet: Packet) -> None:
        """Launch the per-packet delivery process."""
        self.counters.incr("sent")
        self.env.process(self._carry(packet))

    def _carry(self, packet: Packet):
        tracer = self._tracer if self._tracer is not None else get_tracer()
        metrics = self._metrics if self._metrics is not None \
            else get_metrics()
        metrics.counter("net.sent").add()
        # Transit spans parent under whatever context the sender stamped
        # into the packet headers (e.g. an rpc.call span), so one trace
        # tree covers the request end to end.
        span = tracer.start_span(
            "net.transmit", at=self.env.now, parent=extract(packet.headers),
            src=packet.src, dst=packet.dst, port=packet.port,
            bytes=packet.wire_size)
        try:
            links = self.topology.path(packet.src, packet.dst)
        except RoutingError:
            self._drop(packet, "no-route", metrics, span)
            return
        node = packet.src
        priority = packet.headers.get("priority", BEST_EFFORT_PRIORITY)
        # Per-hop spans only exist for traces that are actually being
        # retained: with the tracer disabled, or the trace sampled out at
        # its head, every hop of every packet would otherwise still pay
        # the span + label allocation — the dominant trace cost at scale.
        record_hops = span.is_recording
        for link in links:
            hop = tracer.start_span(
                "net.link", at=self.env.now, parent=span,
                link="{}<->{}".format(link.a, link.b), node=node,
                bytes=packet.wire_size) if record_hops else NOOP_SPAN
            channel = link.channel(node)
            with channel.request(priority=priority) as claim:
                yield claim
                hop.add_event("tx-start", at=self.env.now)
                yield self.env.timeout(
                    link.transmission_delay(packet.wire_size))
            if link.drops_packet():
                link.stats.drops += 1
                hop.set_status("dropped")
                hop.finish(at=self.env.now)
                self._drop(packet, "loss" if link.up else "link-down",
                           metrics, span)
                return
            yield self.env.timeout(link.propagation_delay())
            link.stats.packets += 1
            link.stats.bytes += packet.wire_size
            metrics.counter("net.bytes",
                            link="{}<->{}".format(link.a, link.b)) \
                .add(packet.wire_size)
            packet.hops += 1
            node = link.other_end(node)
            hop.finish(at=self.env.now)
        target = self.hosts.get(packet.dst)
        if target is None:
            self._drop(packet, "no-host", metrics, span)
            return
        self.counters.incr("delivered")
        metrics.counter("net.delivered").add()
        latency = self.env.now - packet.created_at
        self.delivery_latency.record(latency)
        metrics.histogram("net.delivery_latency").record(latency)
        span.finish(at=self.env.now)
        target._deliver(packet)

    def _drop(self, packet: Packet, reason: str,
              metrics: Optional[MetricsRegistry] = None,
              span=None) -> None:
        self.counters.incr("dropped")
        self.counters.incr("dropped:" + reason)
        self._drop_reasons[reason] = self._drop_reasons.get(reason, 0) + 1
        if metrics is None:
            metrics = self._metrics if self._metrics is not None \
                else get_metrics()
        metrics.counter("net.drops", reason=reason).add()
        if span is not None:
            span.set_status("dropped:" + reason)
            span.set_attribute("drop_reason", reason)
            span.finish(at=self.env.now)
        if self.on_drop is not None:
            self.on_drop(packet, reason)

    def drop_stats(self) -> Dict[str, int]:
        """Drops per reason (``loss``, ``link-down``, ``no-route``,
        ``no-host``) since the network was created."""
        return dict(self._drop_reasons)

    def total_link_bytes(self) -> int:
        """Bytes carried across every link (the E9 cost metric)."""
        return sum(link.stats.bytes for link in self.topology.links())

    def __repr__(self) -> str:
        return "<Network hosts={} nodes={}>".format(
            len(self.hosts), len(self.topology.nodes))
