"""The network: hosts, packet delivery and per-hop simulation.

A :class:`Network` wraps a :class:`~repro.net.topology.Topology` and moves
:class:`~repro.net.packet.Packet` objects between :class:`Host` objects.
Each packet is driven by its own simulation process: per link it serialises
on the directional channel (transmission delay), then waits the propagation
delay, and may be dropped by the link's loss model.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, Dict, List, Optional

from repro.errors import NetworkError, RoutingError
from repro.net.packet import Packet
from repro.net.topology import Topology
from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.obs.propagation import extract
from repro.obs.span import NOOP_SPAN
from repro.obs.tracer import get_tracer
from repro.sim import Counter, Environment, Process, Store, Tally, Timeout
from repro.sim.environment import _NORMAL_BASE
from repro.sim.resources import PriorityRequest

_new_timeout = Timeout.__new__

#: Default packet priority; QoS-reserved flows use lower (better) values.
BEST_EFFORT_PRIORITY = 10
RESERVED_PRIORITY = 0


class _BoundNetInstruments:
    """Per-registry bound handles for the per-packet/per-hop instruments.

    A :class:`Network` keeps one of these per registry identity so the
    keyed lookups (``tuple(sorted(...))`` + ``str()`` per call) happen once
    per binding instead of once per packet.  Handles stay valid for the
    registry that created them even if the network later rebinds, so a
    packet in flight across a registry swap keeps recording where it
    started — exactly what per-call keyed lookups used to do.
    """

    __slots__ = ("registry", "sent", "delivered", "latency", "link_bytes",
                 "node_sent", "node_delivered")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self.sent = registry.bind_counter("net.sent")
        self.delivered = registry.bind_counter("net.delivered")
        self.latency = registry.bind_histogram("net.delivery_latency")
        #: link.label -> bound ``net.bytes`` counter, filled per hop.
        self.link_bytes: Dict[str, Any] = {}
        #: source node -> bound ``net.node.sent`` counter.
        self.node_sent: Dict[str, Any] = {}
        #: destination node -> bound ``net.node.delivered`` counter.
        self.node_delivered: Dict[str, Any] = {}


class Host:
    """A network endpoint attached to a topology node.

    Incoming packets are demultiplexed by port into per-port inboxes;
    a process receives with ``yield host.receive(port)``.  Handlers may be
    registered instead for push-style delivery.
    """

    def __init__(self, network: "Network", name: str) -> None:
        self.network = network
        self.env = network.env
        self.name = name
        self._inboxes: Dict[int, Store] = {}
        self._handlers: Dict[int, Callable[[Packet], None]] = {}
        self.sent = 0
        self.received = 0

    def inbox(self, port: int = 0) -> Store:
        """The inbox store for ``port`` (created on first use)."""
        if port not in self._inboxes:
            self._inboxes[port] = Store(self.env)
        return self._inboxes[port]

    def send(self, dst: str, payload: Any = None, size: int = 0,
             port: int = 0, headers: Optional[Dict[str, Any]] = None) -> Packet:
        """Send a datagram (fire-and-forget); returns the packet."""
        packet = Packet(self.name, dst, payload, size, port,
                        self.env._now, headers)
        self.sent += 1
        self.network.transmit(packet)
        return packet

    def receive(self, port: int = 0):
        """An event yielding the next packet on ``port``."""
        return self.inbox(port).get()

    def on_packet(self, port: int,
                  handler: Callable[[Packet], None]) -> None:
        """Register a push handler for ``port`` (replaces inbox delivery)."""
        self._handlers[port] = handler

    def _deliver(self, packet: Packet) -> None:
        self.received += 1
        packet.delivered_at = self.env.now
        handler = self._handlers.get(packet.port)
        if handler is not None:
            handler(packet)
        else:
            self.inbox(packet.port).put(packet)

    def __repr__(self) -> str:
        return "<Host {}>".format(self.name)


class Network:
    """Moves packets across a topology between registered hosts."""

    def __init__(self, env: Environment, topology: Topology,
                 tracer=None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if topology.env is not env:
            raise NetworkError("topology belongs to a different environment")
        self.env = env
        self.topology = topology
        self.hosts: Dict[str, Host] = {}
        self.counters = Counter()
        self.delivery_latency = Tally("delivery-latency")
        #: Optional hook called with (packet, reason) on every drop.
        self.on_drop: Optional[Callable[[Packet, str], None]] = None
        #: Per-reason drop tally behind :meth:`drop_stats`.
        self._drop_reasons: Dict[str, int] = {}
        # Instance overrides; None means "use the process-wide default",
        # resolved per packet so tracing can be enabled mid-run.
        self._tracer = tracer
        self._metrics = metrics
        # Bound-instrument cache, rebound whenever the resolved registry's
        # identity changes (use_metrics scoping, mid-run enablement).
        self._bound: Optional[_BoundNetInstruments] = None

    def host(self, name: str) -> Host:
        """Create (or fetch) the host attached to topology node ``name``."""
        if name not in self.topology._adjacency:
            raise NetworkError("no topology node named {}".format(name))
        if name not in self.hosts:
            self.hosts[name] = Host(self, name)
        return self.hosts[name]

    def transmit(self, packet: Packet) -> None:
        """Launch the per-packet delivery process."""
        # Counter.incr inlined here and at the delivery tail (one call
        # per packet each way).
        counts = self.counters._counts
        counts["sent"] = counts.get("sent", 0) + 1
        # Process(...) directly rather than env.process(...): carriers are
        # never named actors, so the wrapper's name/tracer handling is
        # pure per-packet overhead.
        Process(self.env, self._carry(packet))

    # repro: fast-path — per-packet hot loop; no 'with ...request()'
    # claims here (repro.analysis.protocol enforces RPR204).
    def _carry(self, packet: Packet):
        env = self.env
        tracer = self._tracer if self._tracer is not None else get_tracer()
        metrics = self._metrics if self._metrics is not None \
            else get_metrics()
        bound = self._bound
        if bound is None or bound.registry is not metrics:
            bound = self._bound = _BoundNetInstruments(metrics)
        bound.sent.add()
        node_sent = bound.node_sent.get(packet.src)
        if node_sent is None:
            node_sent = bound.node_sent[packet.src] = \
                metrics.bind_counter("net.node.sent", node=packet.src)
        node_sent.add()
        wire_size = packet.wire_size
        # Transit spans parent under whatever context the sender stamped
        # into the packet headers (e.g. an rpc.call span), so one trace
        # tree covers the request end to end.  With the tracer disabled
        # the span (and the header extraction feeding it) is skipped
        # outright — NOOP_SPAN behaves identically to what
        # NoopTracer.start_span would have returned.
        if tracer.enabled:
            span = tracer.start_span(
                "net.transmit", at=env.now, parent=extract(packet.headers),
                src=packet.src, dst=packet.dst, port=packet.port,
                bytes=wire_size)
        else:
            span = NOOP_SPAN
        try:
            links = self.topology.path(packet.src, packet.dst)
        except RoutingError:
            self._drop(packet, "no-route", metrics, span)
            return
        node = packet.src
        priority = packet.headers.get("priority", BEST_EFFORT_PRIORITY)
        # Per-hop spans only exist for traces that are actually being
        # retained: with the tracer disabled, or the trace sampled out at
        # its head, every hop of every packet would otherwise still pay
        # the span + label allocation — the dominant trace cost at scale.
        record_hops = span.is_recording
        # Flight journal (repro.obs.flight): hop and drop records, bound
        # to this environment at its construction.  None — the default —
        # costs one check per hop/drop.
        flight = env._flight
        if flight is not None and not flight.journal_net:
            flight = None
        # `bound` (not self._bound) below: another packet may rebind the
        # network to a different registry between our yields, but these
        # handles stay tied to the registry this packet resolved.
        link_bytes = bound.link_bytes
        queue = env._queue
        for link in links:
            hop = tracer.start_span(
                "net.link", at=env._now, parent=span,
                link=link.label, node=node,
                bytes=wire_size) if record_hops else None
            # The channel claim is released explicitly rather than via a
            # ``with`` block (same release point: right after the
            # transmission delay, before the loss draw) — the context-
            # manager protocol costs two extra calls per hop.  The claim
            # is built directly (PriorityRequest, not .request()) to skip
            # one wrapper frame per hop.
            claim = PriorityRequest(link._channels[node], priority)
            yield claim
            if hop is not None:
                hop.add_event("tx-start", at=env._now)
            # transmission_delay / drops_packet / propagation_delay are
            # inlined below (three calls per hop dominate the per-hop
            # cost).  The logic — including when the shared RNG is drawn,
            # which replay digests depend on — must mirror the Link
            # methods exactly; link.py carries the matching notice.  The
            # two hop waits also build their Timeout events in place
            # (the same fields and queue entry Environment.timeout makes).
            delay = (wire_size * 8.0) / link.bandwidth
            wait = _new_timeout(Timeout)
            wait.env = env
            wait.callbacks = []
            wait._value = None
            wait._exception = None
            wait._ok = True
            wait.defused = False
            wait.delay = delay
            env._eid += 1
            heappush(queue, (env._now + delay, _NORMAL_BASE + env._eid,
                             wait))
            yield wait
            # Resource.release inlined: the claim was just granted to this
            # process, so it is always in users; only a non-empty wait
            # queue needs the grant/sampling machinery.
            channel = claim.resource
            channel.users.remove(claim)
            if channel.queue:
                channel._grant_waiters()
            # Loss attribution mirrors Link.drops_packet: a downed link
            # drops without drawing the RNG; otherwise one draw decides,
            # and the drawn value splits baseline "loss" from fault-
            # injected "impairment" (draws landing in the _extra_loss
            # band) so drop_stats() tells the two apart.
            drop_reason = None
            if not link.up:
                drop_reason = "link-down"
            else:
                probability = link.loss + link._extra_loss
                if probability > 0:
                    draw = link._rng.random()
                    if draw < min(probability, 1.0):
                        drop_reason = "loss" if draw < link.loss \
                            else "impairment"
            if drop_reason is not None:
                link.stats.drops += 1
                if hop is not None:
                    hop.set_status("dropped")
                    hop.finish(at=env._now)
                self._drop(packet, drop_reason, metrics, span, link=link)
                return
            delay = link.latency * link._latency_scale
            if link.jitter > 0:
                delay += link._rng.uniform(0, link.jitter)
            wait = _new_timeout(Timeout)
            wait.env = env
            wait.callbacks = []
            wait._value = None
            wait._exception = None
            wait._ok = True
            wait.defused = False
            wait.delay = delay
            env._eid += 1
            heappush(queue, (env._now + delay, _NORMAL_BASE + env._eid,
                             wait))
            yield wait
            stats = link.stats
            stats.packets += 1
            stats.bytes += wire_size
            bytes_counter = link_bytes.get(link.label)
            if bytes_counter is None:
                bytes_counter = link_bytes[link.label] = \
                    metrics.bind_counter("net.bytes", link=link.label)
            bytes_counter.add(wire_size)
            packet.hops += 1
            if flight is not None:
                flight.record_hop(link.label, node, packet.src, packet.dst,
                                  packet.port, span=hop)
            node = link.b if node == link.a else link.a
            if hop is not None:
                hop.finish(at=env._now)
        target = self.hosts.get(packet.dst)
        if target is None:
            self._drop(packet, "no-host", metrics, span)
            return
        counts = self.counters._counts
        counts["delivered"] = counts.get("delivered", 0) + 1
        bound.delivered.add()
        node_delivered = bound.node_delivered.get(packet.dst)
        if node_delivered is None:
            node_delivered = bound.node_delivered[packet.dst] = \
                metrics.bind_counter("net.node.delivered", node=packet.dst)
        node_delivered.add()
        latency = env._now - packet.created_at
        self.delivery_latency.record(latency)
        bound.latency.record(latency)
        span.finish(at=env._now)
        target._deliver(packet)

    def _drop(self, packet: Packet, reason: str,
              metrics: Optional[MetricsRegistry] = None,
              span=None, link=None) -> None:
        self.counters.incr("dropped")
        self.counters.incr("dropped:" + reason)
        self._drop_reasons[reason] = self._drop_reasons.get(reason, 0) + 1
        if metrics is None:
            metrics = self._metrics if self._metrics is not None \
                else get_metrics()
        metrics.counter("net.drops", reason=reason).add()
        if link is not None:
            # Per-link, per-reason attribution: the "drops" column in
            # the dashboard's link table rolls this up.
            metrics.counter("net.link.drops", link=link.label,
                            reason=reason).add()
        flight = self.env._flight
        if flight is not None and flight.journal_net:
            flight.record_drop(reason,
                               link.label if link is not None else None,
                               packet.src, packet.dst, packet.port,
                               span=span)
        if span is not None:
            span.set_status("dropped:" + reason)
            span.set_attribute("drop_reason", reason)
            span.finish(at=self.env.now)
        if self.on_drop is not None:
            self.on_drop(packet, reason)

    def drop_stats(self) -> Dict[str, int]:
        """Drops per reason (``loss``, ``impairment``, ``link-down``,
        ``no-route``, ``no-host``) since the network was created.

        ``loss`` is the link's configured baseline; ``impairment``
        attributes drops whose Bernoulli draw landed in the extra
        probability a fault injection (loss burst) added on top.
        """
        return dict(self._drop_reasons)

    def total_link_bytes(self) -> int:
        """Bytes carried across every link (the E9 cost metric)."""
        return sum(link.stats.bytes for link in self.topology.links())

    def __repr__(self) -> str:
        return "<Network hosts={} nodes={}>".format(
            len(self.hosts), len(self.topology.nodes))
