"""The network: hosts, packet delivery and per-hop simulation.

A :class:`Network` wraps a :class:`~repro.net.topology.Topology` and moves
:class:`~repro.net.packet.Packet` objects between :class:`Host` objects.
Each packet is driven by its own simulation process: per link it serialises
on the directional channel (transmission delay), then waits the propagation
delay, and may be dropped by the link's loss model.

Burst-carry (PR 10): the default carry fuses each hop's channel claim
with its transmission wait into *one* queued event (the grant is
virtually accounted — see :class:`~repro.sim.resources.Request`), elides
the accepted-put event on inbox delivery and the carrier's own no-op end
event, and accumulates the per-packet/per-hop instruments into local
cells flushed at registry-read/window boundaries instead of per packet.
A storm of same-link packets therefore costs roughly half the queued
events of the PR 5 shape while keeping every scheduling counter, RNG
draw order and delivery time byte-identical — the replay-digest sweep in
``tests/net/test_burst_carry.py`` proves it against the legacy carry,
which stays available via ``Network(..., burst_carry=False)`` (and
process-wide via :func:`use_burst_carry`) for baselines and A/B proofs.
"""

from __future__ import annotations

import contextlib
from bisect import insort
from heapq import heappush
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import NetworkError, RoutingError
from repro.net.packet import Packet
from repro.net.topology import Topology
from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.obs.propagation import extract
from repro.obs.span import NOOP_SPAN
from repro.obs.tracer import get_tracer
from repro.sim import Counter, Environment, Process, Store, Tally, Timeout
from repro.sim.environment import _NORMAL_BASE
from repro.sim.resources import PriorityRequest

_new_timeout = Timeout.__new__
_new_process = Process.__new__
_new_claim = PriorityRequest.__new__


class _SyncStart:
    """Pre-fired stub fed to ``Process._resume`` for synchronous starts.

    Stands in for the Initialize event a queued start would have popped:
    permanently ok with a None value, which is exactly what a fresh
    generator's first ``send`` expects.
    """

    __slots__ = ()
    _ok = True
    _value = None


_SYNC_START = _SyncStart()

#: Default packet priority; QoS-reserved flows use lower (better) values.
BEST_EFFORT_PRIORITY = 10
RESERVED_PRIORITY = 0

_burst_default = True


def set_burst_carry(enabled: bool) -> bool:
    """Set whether new :class:`Network` objects default to burst-carry.

    Returns the previous default.  Exists for A/B digest proofs and
    interleaved same-machine baselines; production code leaves it on.
    """
    global _burst_default
    previous = _burst_default
    _burst_default = bool(enabled)
    return previous


@contextlib.contextmanager
def use_burst_carry(enabled: bool) -> Iterator[bool]:
    """Scope the burst-carry default, restoring the previous on exit."""
    previous = set_burst_carry(enabled)
    try:
        yield enabled
    finally:
        set_burst_carry(previous)


class _BoundNetInstruments:
    """Per-registry bound handles for the per-packet/per-hop instruments.

    The legacy (``burst_carry=False``) carry keeps one of these per
    registry identity so the keyed lookups (``tuple(sorted(...))`` +
    ``str()`` per call) happen once per binding instead of once per
    packet, exactly as PR 5 shipped it.  Handles stay valid for the
    registry that created them even if the network later rebinds, so a
    packet in flight across a registry swap keeps recording where it
    started — exactly what per-call keyed lookups used to do.
    """

    __slots__ = ("registry", "sent", "delivered", "latency", "link_bytes",
                 "node_sent", "node_delivered")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self.sent = registry.bind_counter("net.sent")
        self.delivered = registry.bind_counter("net.delivered")
        self.latency = registry.bind_histogram("net.delivery_latency")
        #: link.label -> bound ``net.bytes`` counter, filled per hop.
        self.link_bytes: Dict[str, Any] = {}
        #: source node -> bound ``net.node.sent`` counter.
        self.node_sent: Dict[str, Any] = {}
        #: destination node -> bound ``net.node.delivered`` counter.
        self.node_delivered: Dict[str, Any] = {}


class _NetMetricCells:
    """Local accumulation cells for the per-packet/per-hop instruments.

    The batched-metrics layer: the hot path pays one int add (or one
    dict get/set for labelled counts) per record instead of a bound-
    instrument method call, and the cells fold into the real registry
    instruments only when somebody reads — every
    :class:`~repro.obs.metrics.MetricsRegistry` read path runs its
    flush hooks first, so the timeline recorder's window-boundary reads
    (riding ``set_window_hook``) and the SLO evaluators always see
    fresh values while the storm itself schedules zero flush events.
    Flush order is sorted, so snapshots stay hash-seed stable.
    """

    __slots__ = ("registry", "network", "sent", "delivered", "latencies",
                 "node_sent", "node_delivered", "link_bytes",
                 "drops", "link_drops",
                 "_sent_inst", "_delivered_inst", "_latency_inst")

    def __init__(self, network: "Network",
                 registry: MetricsRegistry) -> None:
        self.registry = registry
        self.network = network
        self._sent_inst = registry.bind_counter("net.sent")
        self._delivered_inst = registry.bind_counter("net.delivered")
        self._latency_inst = registry.bind_histogram("net.delivery_latency")
        self.sent = 0
        self.delivered = 0
        #: delivery latencies in record order (tally order is observable
        #: through Tally.values, so the flush preserves it).
        self.latencies: List[float] = []
        #: source node -> pending ``net.node.sent`` adds.
        self.node_sent: Dict[str, int] = {}
        #: destination node -> pending ``net.node.delivered`` adds.
        self.node_delivered: Dict[str, int] = {}
        #: link label -> pending ``net.bytes`` adds.
        self.link_bytes: Dict[str, int] = {}
        #: reason -> pending ``net.drops`` adds.  Going through the
        #: keyed factory per drop would flush every cell mid-storm
        #: (factories flush so reads stay fresh) — a chaos schedule's
        #: drop burst must not pay that.
        self.drops: Dict[str, int] = {}
        #: (link label, reason) -> pending ``net.link.drops`` adds.
        self.link_drops: Dict[Tuple[str, str], int] = {}
        registry.add_flush_hook(self.flush)

    def flush(self) -> None:
        """Fold every pending cell into the registry instruments."""
        count = self.sent
        if count:
            self.sent = 0
            self._sent_inst.add(count)
            counts = self.network._counters._counts
            counts["sent"] = counts.get("sent", 0) + count
        count = self.delivered
        if count:
            self.delivered = 0
            self._delivered_inst.add(count)
            counts = self.network._counters._counts
            counts["delivered"] = counts.get("delivered", 0) + count
        registry = self.registry
        if self.node_sent:
            for node, count in sorted(self.node_sent.items()):
                registry.counter("net.node.sent", node=node).add(count)
            self.node_sent.clear()
        if self.node_delivered:
            for node, count in sorted(self.node_delivered.items()):
                registry.counter("net.node.delivered",
                                 node=node).add(count)
            self.node_delivered.clear()
        if self.link_bytes:
            for label, count in sorted(self.link_bytes.items()):
                registry.counter("net.bytes", link=label).add(count)
            self.link_bytes.clear()
        if self.drops:
            for reason, count in sorted(self.drops.items()):
                registry.counter("net.drops", reason=reason).add(count)
            self.drops.clear()
        if self.link_drops:
            for (label, reason), count in sorted(self.link_drops.items()):
                registry.counter("net.link.drops", link=label,
                                 reason=reason).add(count)
            self.link_drops.clear()
        values = self.latencies
        if values:
            self.latencies = []
            record = self._latency_inst.record
            tally_record = self.network._delivery_latency.record
            for value in values:
                tally_record(value)
                record(value)


class Host:
    """A network endpoint attached to a topology node.

    Incoming packets are demultiplexed by port into per-port inboxes;
    a process receives with ``yield host.receive(port)``.  Handlers may be
    registered instead for push-style delivery.
    """

    def __init__(self, network: "Network", name: str) -> None:
        self.network = network
        self.env = network.env
        self.name = name
        self._inboxes: Dict[int, Store] = {}
        self._handlers: Dict[int, Callable[[Packet], None]] = {}
        self.sent = 0
        self.received = 0

    def inbox(self, port: int = 0) -> Store:
        """The inbox store for ``port`` (created on first use)."""
        if port not in self._inboxes:
            self._inboxes[port] = Store(self.env)
        return self._inboxes[port]

    def send(self, dst: str, payload: Any = None, size: int = 0,
             port: int = 0, headers: Optional[Dict[str, Any]] = None) -> Packet:
        """Send a datagram (fire-and-forget); returns the packet."""
        packet = Packet(self.name, dst, payload, size, port,
                        self.env._now, headers)
        self.sent += 1
        self.network.transmit(packet)
        return packet

    def receive(self, port: int = 0):
        """An event yielding the next packet on ``port``."""
        return self.inbox(port).get()

    def on_packet(self, port: int,
                  handler: Callable[[Packet], None]) -> None:
        """Register a push handler for ``port`` (replaces inbox delivery)."""
        self._handlers[port] = handler

    def _deliver(self, packet: Packet) -> None:
        self.received += 1
        packet.delivered_at = self.env.now
        handler = self._handlers.get(packet.port)
        if handler is not None:
            handler(packet)
        elif self.network._burst:
            # The put event is discarded here, so Store.put_fast elides
            # it (virtually accounted — digests cannot tell).
            self.inbox(packet.port).put_fast(packet)
        else:
            self.inbox(packet.port).put(packet)

    def __repr__(self) -> str:
        return "<Host {}>".format(self.name)


class Network:
    """Moves packets across a topology between registered hosts."""

    def __init__(self, env: Environment, topology: Topology,
                 tracer=None,
                 metrics: Optional[MetricsRegistry] = None,
                 burst_carry: Optional[bool] = None) -> None:
        if topology.env is not env:
            raise NetworkError("topology belongs to a different environment")
        self.env = env
        self.topology = topology
        self.hosts: Dict[str, Host] = {}
        self._counters = Counter()
        self._delivery_latency = Tally("delivery-latency")
        #: Optional hook called with (packet, reason) on every drop.
        self.on_drop: Optional[Callable[[Packet, str], None]] = None
        #: Per-reason drop tally behind :meth:`drop_stats`.
        self._drop_reasons: Dict[str, int] = {}
        # Instance overrides; None means "use the process-wide default",
        # resolved per packet so tracing can be enabled mid-run.
        self._tracer = tracer
        self._metrics = metrics
        # Bound-instrument cache for the legacy carry, rebound whenever
        # the resolved registry's identity changes (use_metrics scoping,
        # mid-run enablement).
        self._bound: Optional[_BoundNetInstruments] = None
        # Metric cells for the burst carry: current binding plus every
        # binding ever made, so counters/delivery_latency reads can
        # flush stragglers from before a registry swap.
        self._cells: Optional[_NetMetricCells] = None
        self._all_cells: List[_NetMetricCells] = []
        self._burst = _burst_default if burst_carry is None \
            else bool(burst_carry)

    @property
    def burst_carry(self) -> bool:
        """Whether this network runs the fused burst-carry fast path."""
        return self._burst

    @property
    def counters(self) -> Counter:
        """Legacy sent/delivered/dropped counts (cells flushed first)."""
        for cells in self._all_cells:
            cells.flush()
        return self._counters

    @property
    def delivery_latency(self) -> Tally:
        """End-to-end delivery latencies (cells flushed first)."""
        for cells in self._all_cells:
            cells.flush()
        return self._delivery_latency

    def host(self, name: str) -> Host:
        """Create (or fetch) the host attached to topology node ``name``."""
        if name not in self.topology._adjacency:
            raise NetworkError("no topology node named {}".format(name))
        if name not in self.hosts:
            self.hosts[name] = Host(self, name)
        return self.hosts[name]

    def transmit(self, packet: Packet) -> None:
        """Launch the per-packet delivery process."""
        # Process(...) directly rather than env.process(...): carriers
        # are never named actors, so the wrapper's name/tracer handling
        # is pure per-packet overhead.
        if self._burst:
            # Detached: nobody subscribes to a carrier, so its end
            # event is elided and virtually accounted (see
            # Process._resume); failures still escalate.  The sent
            # counters live in the carry's cells.
            env = self.env
            if env._active_process is not None:
                # Synchronous start: transmit() was called from inside
                # the run loop (the storm hot path), where an URGENT
                # Initialize at the current instant would pop before
                # any pending NORMAL event anyway — so the generator is
                # primed right here and the Initialize is elided and
                # virtually accounted (eid + processed land at this
                # instant, where the queued start would have allocated
                # and popped it).  Setup-time sends (no active process)
                # keep the queued start, so code that mutates links
                # between send() and run() observes no change.
                carrier = _new_process(Process)
                carrier.env = env
                carrier.callbacks = []
                carrier._value = None
                carrier._exception = None
                carrier._ok = None
                carrier.defused = False
                carrier._generator = self._carry(packet)
                carrier.span = None
                carrier._detached = True
                carrier._target = None
                env._eid += 1
                env.events_processed += 1
                carrier._resume(_SYNC_START)
            else:
                carrier = Process(env, self._carry(packet))
                carrier._detached = True
        else:
            # Counter.incr inlined here and at the delivery tail (one
            # call per packet each way).
            counts = self._counters._counts
            counts["sent"] = counts.get("sent", 0) + 1
            Process(self.env, self._carry_legacy(packet))

    # repro: fast-path — per-packet hot loop; no 'with ...request()'
    # claims here (repro.analysis.protocol enforces RPR204).
    def _carry(self, packet: Packet):
        """Burst-carry: fused claim+tx, elided no-ops, celled metrics.

        Behaviour — RNG draw order, grant/release instants, delivery
        times, every digest-covered counter — is byte-identical to
        :meth:`_carry_legacy`; only the number of *queued* (vs
        virtually-accounted) events and the instrument write path
        differ.  Physics stays inlined from link.py (sync notice
        there).
        """
        env = self.env
        tracer = self._tracer if self._tracer is not None else get_tracer()
        metrics = self._metrics if self._metrics is not None \
            else get_metrics()
        cells = self._cells
        if cells is None or cells.registry is not metrics:
            cells = self._cells = _NetMetricCells(self, metrics)
            self._all_cells.append(cells)
        cells.sent += 1
        node_sent = cells.node_sent
        src = packet.src
        node_sent[src] = node_sent.get(src, 0) + 1
        wire_size = packet.wire_size
        if tracer.enabled:
            span = tracer.start_span(
                "net.transmit", at=env.now, parent=extract(packet.headers),
                src=packet.src, dst=packet.dst, port=packet.port,
                bytes=wire_size)
        else:
            span = NOOP_SPAN
        try:
            links = self.topology.path(packet.src, packet.dst)
        except RoutingError:
            self._drop(packet, "no-route", metrics, span, cells=cells)
            return
        node = packet.src
        priority = packet.headers.get("priority", BEST_EFFORT_PRIORITY)
        record_hops = span.is_recording
        flight = env._flight
        if flight is not None and not flight.journal_net:
            flight = None
        # `cells` (not self._cells) below: another packet may rebind the
        # network to a different registry between our yields, but these
        # cells stay tied to the registry this packet resolved.
        link_bytes = cells.link_bytes
        heap = env._heap
        for link in links:
            hop = tracer.start_span(
                "net.link", at=env._now, parent=span,
                link=link.label, node=node,
                bytes=wire_size) if record_hops else None
            # Claim+tx fusion: the channel claim carries the
            # transmission delay, so the grant resumes this generator
            # once, at tx-complete, instead of a grant pop plus a
            # separate Timeout (the grant is virtually accounted — see
            # Resource._grant).  Release point and the loss draw happen
            # at the same instant as the unfused path.  The uncontended
            # grant is built in place (sync: PriorityRequest.__init__'s
            # fast branch); priority/time/seq stay unset — they only
            # order *queued* claims, and this one was never queued.
            delay = (wire_size * 8.0) / link.bandwidth
            channel = link._channels[node]
            if channel.users:
                claim = PriorityRequest(channel, priority, delay)
            else:
                claim = _new_claim(PriorityRequest)
                claim.env = env
                claim.callbacks = []
                claim._value = claim
                claim._exception = None
                claim._ok = True
                claim.defused = False
                claim.resource = channel
                claim.requested_at = claim.usage_since = env._now
                claim.grant_delay = delay
                channel.users.append(claim)
                env._eid += 2
                env.events_processed += 1
                key = _NORMAL_BASE + env._eid
                time = env._now + delay
                if heap is not None:
                    heappush(heap, (time, key, claim))
                else:
                    # Inlined ladder push (sync: Environment._push).
                    j = int((time - env._qstart) * env._qinvw)
                    if j < env._qcursor:
                        insort(env._qrun, (-time, -key, claim))
                    else:
                        buckets = env._qbuckets
                        if j < len(buckets):
                            buckets[j].append((-time, -key, claim))
                        else:
                            env._qover.append((-time, -key, claim))
            yield claim
            if hop is not None:
                # usage_since marks the grant, so tx-start lands at the
                # same sim time the unfused path stamped at its resume.
                hop.add_event("tx-start", at=claim.usage_since)
            # Resource.release inlined: the claim was just granted to
            # this process, so it is always in users; only a non-empty
            # wait queue needs the grant/sampling machinery.
            channel.users.remove(claim)
            if channel.queue:
                channel._grant_waiters()
            # Loss attribution mirrors Link.drops_packet: a downed link
            # drops without drawing the RNG; otherwise one draw decides,
            # and the drawn value splits baseline "loss" from fault-
            # injected "impairment" (draws landing in the _extra_loss
            # band) so drop_stats() tells the two apart.
            drop_reason = None
            if not link.up:
                drop_reason = "link-down"
            else:
                probability = link.loss + link._extra_loss
                if probability > 0:
                    draw = link._rng.random()
                    if draw < min(probability, 1.0):
                        drop_reason = "loss" if draw < link.loss \
                            else "impairment"
            if drop_reason is not None:
                link.stats.drops += 1
                if hop is not None:
                    hop.set_status("dropped")
                    hop.finish(at=env._now)
                self._drop(packet, drop_reason, metrics, span, link=link,
                           cells=cells)
                return
            delay = link.latency * link._latency_scale
            if link.jitter > 0:
                delay += link._rng.uniform(0, link.jitter)
            wait = _new_timeout(Timeout)
            wait.env = env
            wait.callbacks = []
            wait._value = None
            wait._exception = None
            wait._ok = True
            wait.defused = False
            wait.delay = delay
            env._eid += 1
            key = _NORMAL_BASE + env._eid
            time = env._now + delay
            if heap is not None:
                heappush(heap, (time, key, wait))
            else:
                # Inlined ladder push (sync: Environment._push).
                j = int((time - env._qstart) * env._qinvw)
                if j < env._qcursor:
                    insort(env._qrun, (-time, -key, wait))
                else:
                    buckets = env._qbuckets
                    if j < len(buckets):
                        buckets[j].append((-time, -key, wait))
                    else:
                        env._qover.append((-time, -key, wait))
            yield wait
            stats = link.stats
            stats.packets += 1
            stats.bytes += wire_size
            label = link.label
            link_bytes[label] = link_bytes.get(label, 0) + wire_size
            packet.hops += 1
            if flight is not None:
                flight.record_hop(link.label, node, packet.src, packet.dst,
                                  packet.port, span=hop)
            node = link.b if node == link.a else link.a
            if hop is not None:
                hop.finish(at=env._now)
        target = self.hosts.get(packet.dst)
        if target is None:
            self._drop(packet, "no-host", metrics, span, cells=cells)
            return
        cells.delivered += 1
        node_delivered = cells.node_delivered
        dst = packet.dst
        node_delivered[dst] = node_delivered.get(dst, 0) + 1
        cells.latencies.append(env._now - packet.created_at)
        span.finish(at=env._now)
        target._deliver(packet)

    # repro: fast-path — per-packet hot loop; no 'with ...request()'
    # claims here (repro.analysis.protocol enforces RPR204).
    def _carry_legacy(self, packet: Packet):
        """The PR 5 carry, kept verbatim for baselines and A/B proofs.

        One grant pop plus one Timeout per hop, one put and one end
        event per packet, bound instruments written per packet — the
        shape BENCH_PR10.json's interleaved baselines (and the burst
        on/off digest sweep) run against.
        """
        env = self.env
        tracer = self._tracer if self._tracer is not None else get_tracer()
        metrics = self._metrics if self._metrics is not None \
            else get_metrics()
        bound = self._bound
        if bound is None or bound.registry is not metrics:
            bound = self._bound = _BoundNetInstruments(metrics)
        bound.sent.add()
        node_sent = bound.node_sent.get(packet.src)
        if node_sent is None:
            node_sent = bound.node_sent[packet.src] = \
                metrics.bind_counter("net.node.sent", node=packet.src)
        node_sent.add()
        wire_size = packet.wire_size
        # Transit spans parent under whatever context the sender stamped
        # into the packet headers (e.g. an rpc.call span), so one trace
        # tree covers the request end to end.  With the tracer disabled
        # the span (and the header extraction feeding it) is skipped
        # outright — NOOP_SPAN behaves identically to what
        # NoopTracer.start_span would have returned.
        if tracer.enabled:
            span = tracer.start_span(
                "net.transmit", at=env.now, parent=extract(packet.headers),
                src=packet.src, dst=packet.dst, port=packet.port,
                bytes=wire_size)
        else:
            span = NOOP_SPAN
        try:
            links = self.topology.path(packet.src, packet.dst)
        except RoutingError:
            self._drop(packet, "no-route", metrics, span)
            return
        node = packet.src
        priority = packet.headers.get("priority", BEST_EFFORT_PRIORITY)
        # Per-hop spans only exist for traces that are actually being
        # retained: with the tracer disabled, or the trace sampled out at
        # its head, every hop of every packet would otherwise still pay
        # the span + label allocation — the dominant trace cost at scale.
        record_hops = span.is_recording
        # Flight journal (repro.obs.flight): hop and drop records, bound
        # to this environment at its construction.  None — the default —
        # costs one check per hop/drop.
        flight = env._flight
        if flight is not None and not flight.journal_net:
            flight = None
        # `bound` (not self._bound) below: another packet may rebind the
        # network to a different registry between our yields, but these
        # handles stay tied to the registry this packet resolved.
        link_bytes = bound.link_bytes
        heap = env._heap
        for link in links:
            hop = tracer.start_span(
                "net.link", at=env._now, parent=span,
                link=link.label, node=node,
                bytes=wire_size) if record_hops else None
            # The channel claim is released explicitly rather than via a
            # ``with`` block (same release point: right after the
            # transmission delay, before the loss draw) — the context-
            # manager protocol costs two extra calls per hop.  The claim
            # is built directly (PriorityRequest, not .request()) to skip
            # one wrapper frame per hop.
            claim = PriorityRequest(link._channels[node], priority)
            yield claim
            if hop is not None:
                hop.add_event("tx-start", at=env._now)
            # transmission_delay / drops_packet / propagation_delay are
            # inlined below (three calls per hop dominate the per-hop
            # cost).  The logic — including when the shared RNG is drawn,
            # which replay digests depend on — must mirror the Link
            # methods exactly; link.py carries the matching notice.  The
            # two hop waits also build their Timeout events in place
            # (the same fields and queue entry Environment.timeout makes).
            delay = (wire_size * 8.0) / link.bandwidth
            wait = _new_timeout(Timeout)
            wait.env = env
            wait.callbacks = []
            wait._value = None
            wait._exception = None
            wait._ok = True
            wait.defused = False
            wait.delay = delay
            env._eid += 1
            key = _NORMAL_BASE + env._eid
            time = env._now + delay
            if heap is not None:
                heappush(heap, (time, key, wait))
            else:
                # Inlined ladder push (sync: Environment._push).
                j = int((time - env._qstart) * env._qinvw)
                if j < env._qcursor:
                    insort(env._qrun, (-time, -key, wait))
                else:
                    buckets = env._qbuckets
                    if j < len(buckets):
                        buckets[j].append((-time, -key, wait))
                    else:
                        env._qover.append((-time, -key, wait))
            yield wait
            # Resource.release inlined: the claim was just granted to this
            # process, so it is always in users; only a non-empty wait
            # queue needs the grant/sampling machinery.
            channel = claim.resource
            channel.users.remove(claim)
            if channel.queue:
                channel._grant_waiters()
            # Loss attribution mirrors Link.drops_packet: a downed link
            # drops without drawing the RNG; otherwise one draw decides,
            # and the drawn value splits baseline "loss" from fault-
            # injected "impairment" (draws landing in the _extra_loss
            # band) so drop_stats() tells the two apart.
            drop_reason = None
            if not link.up:
                drop_reason = "link-down"
            else:
                probability = link.loss + link._extra_loss
                if probability > 0:
                    draw = link._rng.random()
                    if draw < min(probability, 1.0):
                        drop_reason = "loss" if draw < link.loss \
                            else "impairment"
            if drop_reason is not None:
                link.stats.drops += 1
                if hop is not None:
                    hop.set_status("dropped")
                    hop.finish(at=env._now)
                self._drop(packet, drop_reason, metrics, span, link=link)
                return
            delay = link.latency * link._latency_scale
            if link.jitter > 0:
                delay += link._rng.uniform(0, link.jitter)
            wait = _new_timeout(Timeout)
            wait.env = env
            wait.callbacks = []
            wait._value = None
            wait._exception = None
            wait._ok = True
            wait.defused = False
            wait.delay = delay
            env._eid += 1
            key = _NORMAL_BASE + env._eid
            time = env._now + delay
            if heap is not None:
                heappush(heap, (time, key, wait))
            else:
                # Inlined ladder push (sync: Environment._push).
                j = int((time - env._qstart) * env._qinvw)
                if j < env._qcursor:
                    insort(env._qrun, (-time, -key, wait))
                else:
                    buckets = env._qbuckets
                    if j < len(buckets):
                        buckets[j].append((-time, -key, wait))
                    else:
                        env._qover.append((-time, -key, wait))
            yield wait
            stats = link.stats
            stats.packets += 1
            stats.bytes += wire_size
            bytes_counter = link_bytes.get(link.label)
            if bytes_counter is None:
                bytes_counter = link_bytes[link.label] = \
                    metrics.bind_counter("net.bytes", link=link.label)
            bytes_counter.add(wire_size)
            packet.hops += 1
            if flight is not None:
                flight.record_hop(link.label, node, packet.src, packet.dst,
                                  packet.port, span=hop)
            node = link.b if node == link.a else link.a
            if hop is not None:
                hop.finish(at=env._now)
        target = self.hosts.get(packet.dst)
        if target is None:
            self._drop(packet, "no-host", metrics, span)
            return
        counts = self._counters._counts
        counts["delivered"] = counts.get("delivered", 0) + 1
        bound.delivered.add()
        node_delivered = bound.node_delivered.get(packet.dst)
        if node_delivered is None:
            node_delivered = bound.node_delivered[packet.dst] = \
                metrics.bind_counter("net.node.delivered", node=packet.dst)
        node_delivered.add()
        latency = env._now - packet.created_at
        self._delivery_latency.record(latency)
        bound.latency.record(latency)
        span.finish(at=env._now)
        target._deliver(packet)

    def _drop(self, packet: Packet, reason: str,
              metrics: Optional[MetricsRegistry] = None,
              span=None, link=None, cells=None) -> None:
        self._counters.incr("dropped")
        self._counters.incr("dropped:" + reason)
        self._drop_reasons[reason] = self._drop_reasons.get(reason, 0) + 1
        if cells is not None:
            # Burst carry: accumulate — the keyed factories flush every
            # cell on entry, which a loss burst must not pay per drop.
            drops = cells.drops
            drops[reason] = drops.get(reason, 0) + 1
            if link is not None:
                link_drops = cells.link_drops
                drop_key = (link.label, reason)
                link_drops[drop_key] = link_drops.get(drop_key, 0) + 1
        else:
            if metrics is None:
                metrics = self._metrics if self._metrics is not None \
                    else get_metrics()
            metrics.counter("net.drops", reason=reason).add()
            if link is not None:
                # Per-link, per-reason attribution: the "drops" column in
                # the dashboard's link table rolls this up.
                metrics.counter("net.link.drops", link=link.label,
                                reason=reason).add()
        flight = self.env._flight
        if flight is not None and flight.journal_net:
            flight.record_drop(reason,
                               link.label if link is not None else None,
                               packet.src, packet.dst, packet.port,
                               span=span)
        if span is not None:
            span.set_status("dropped:" + reason)
            span.set_attribute("drop_reason", reason)
            span.finish(at=self.env.now)
        if self.on_drop is not None:
            self.on_drop(packet, reason)

    def drop_stats(self) -> Dict[str, int]:
        """Drops per reason (``loss``, ``impairment``, ``link-down``,
        ``no-route``, ``no-host``) since the network was created.

        ``loss`` is the link's configured baseline; ``impairment``
        attributes drops whose Bernoulli draw landed in the extra
        probability a fault injection (loss burst) added on top.
        """
        return dict(self._drop_reasons)

    def total_link_bytes(self) -> int:
        """Bytes carried across every link (the E9 cost metric)."""
        return sum(link.stats.bytes for link in self.topology.links())

    def __repr__(self) -> str:
        return "<Network hosts={} nodes={}>".format(
            len(self.hosts), len(self.topology.nodes))
