"""Packets: the unit of transfer in the simulated network."""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional

#: Default header overhead added to every packet, in bytes.
HEADER_BYTES = 40

_packet_ids = itertools.count(1)  # repro: allow-RPR005 (ids are labels, not behaviour)


class Packet:
    """A datagram travelling through the simulated network.

    ``size`` is the payload size in bytes; the wire size adds the header
    overhead.  ``port`` demultiplexes traffic at the destination host.
    """

    __slots__ = ("id", "src", "dst", "port", "payload", "size",
                 "created_at", "delivered_at", "hops", "headers")

    def __init__(self, src: str, dst: str, payload: Any = None,
                 size: int = 0, port: int = 0,
                 created_at: float = 0.0,
                 headers: Optional[Dict[str, Any]] = None) -> None:
        if size < 0:
            raise ValueError("size must be non-negative")
        self.id = next(_packet_ids)
        self.src = src
        self.dst = dst
        self.port = port
        self.payload = payload
        self.size = size
        self.created_at = created_at
        self.delivered_at: Optional[float] = None
        self.hops = 0
        self.headers: Dict[str, Any] = headers or {}

    @property
    def wire_size(self) -> int:
        """Bytes on the wire: payload plus header overhead."""
        return self.size + HEADER_BYTES

    @property
    def latency(self) -> Optional[float]:
        """End-to-end delay, once delivered."""
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.created_at

    def __repr__(self) -> str:
        return "<Packet #{} {}->{} port={} {}B>".format(
            self.id, self.src, self.dst, self.port, self.size)
