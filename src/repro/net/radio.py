"""Radio links and connectivity levels for mobile hosts.

The paper (§4.2.2 "The impact of mobility") notes that *over a period of
time, connection may vary from being disconnected to being partially
connected (through a radio network) to being fully connected (through a
high speed network)*.  :class:`ConnectivityLevel` captures exactly those
three regimes; a :class:`RadioLink` is a link whose characteristics switch
with the level; a :class:`ConnectivitySchedule` replays a timed trace of
level changes.
"""

from __future__ import annotations

import enum
import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import NetworkError
from repro.net.link import Link
from repro.net.topology import Topology
from repro.sim import Environment


class ConnectivityLevel(enum.Enum):
    """The three connection regimes of a mobile host."""

    DISCONNECTED = "disconnected"
    PARTIAL = "partial"      # radio network: low bandwidth, lossy
    FULL = "full"            # docked / high-speed network


#: Default link characteristics per connectivity level:
#: (latency s, bandwidth bit/s, jitter s, loss probability)
DEFAULT_PROFILES: Dict[ConnectivityLevel, Tuple[float, float, float, float]] = {
    ConnectivityLevel.DISCONNECTED: (0.0, 1.0, 0.0, 1.0),
    ConnectivityLevel.PARTIAL: (0.15, 19200.0, 0.05, 0.05),
    ConnectivityLevel.FULL: (0.002, 1e7, 0.0, 0.0),
}


class RadioLink(Link):
    """A link whose parameters track a mobile connectivity level."""

    def __init__(self, env: Environment, mobile: str, base: str,
                 level: ConnectivityLevel = ConnectivityLevel.FULL,
                 profiles: Optional[Dict[ConnectivityLevel, Tuple[
                     float, float, float, float]]] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.profiles = dict(DEFAULT_PROFILES)
        if profiles:
            self.profiles.update(profiles)
        latency, bandwidth, jitter, loss = self.profiles[level]
        super().__init__(env, mobile, base, latency=latency,
                         bandwidth=bandwidth, jitter=jitter,
                         loss=min(loss, 0.999999), rng=rng)
        self.level = level
        self._listeners: List[Callable[[ConnectivityLevel], None]] = []
        self._apply(level)

    def set_level(self, level: ConnectivityLevel) -> None:
        """Switch connectivity regime and notify listeners."""
        if level == self.level:
            return
        self.level = level
        self._apply(level)
        for listener in list(self._listeners):
            listener(level)

    def on_level_change(
            self, listener: Callable[[ConnectivityLevel], None]) -> None:
        """Subscribe to connectivity-level changes."""
        self._listeners.append(listener)

    def _apply(self, level: ConnectivityLevel) -> None:
        latency, bandwidth, jitter, loss = self.profiles[level]
        self.latency = latency
        self.bandwidth = bandwidth
        self.jitter = jitter
        self.loss = min(loss, 0.999999)
        self.up = level is not ConnectivityLevel.DISCONNECTED


class ConnectivitySchedule:
    """Replays a trace of (time, level) transitions onto a radio link."""

    def __init__(self, env: Environment, link: RadioLink,
                 trace: List[Tuple[float, ConnectivityLevel]]) -> None:
        times = [t for t, _ in trace]
        if times != sorted(times):
            raise NetworkError("connectivity trace must be time-ordered")
        self.env = env
        self.link = link
        self.trace = list(trace)
        self.process = env.process(self._run())

    def _run(self):
        for at, level in self.trace:
            delay = at - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self.link.set_level(level)


def periodic_trace(period_connected: float, period_disconnected: float,
                   total: float,
                   connected_level: ConnectivityLevel = ConnectivityLevel.PARTIAL,
                   start: float = 0.0
                   ) -> List[Tuple[float, ConnectivityLevel]]:
    """A square-wave connectivity trace: on for a while, off for a while."""
    if period_connected <= 0 or period_disconnected <= 0:
        raise NetworkError("periods must be positive")
    trace: List[Tuple[float, ConnectivityLevel]] = []
    at = start
    while at < total:
        trace.append((at, connected_level))
        at += period_connected
        if at >= total:
            break
        trace.append((at, ConnectivityLevel.DISCONNECTED))
        at += period_disconnected
    return trace


def attach_mobile(topology: Topology, mobile: str, base: str,
                  level: ConnectivityLevel = ConnectivityLevel.FULL,
                  profiles: Optional[Dict[ConnectivityLevel, Tuple[
                      float, float, float, float]]] = None,
                  rng: Optional[random.Random] = None) -> RadioLink:
    """Attach a mobile node to ``base`` with a radio link."""
    if mobile == base:
        raise NetworkError("mobile and base must differ")
    topology.add_node(mobile)
    topology.add_node(base)
    if base in topology._adjacency[mobile]:
        raise NetworkError(
            "link {}<->{} already exists".format(mobile, base))
    link = RadioLink(topology.env, mobile, base, level=level,
                     profiles=profiles, rng=rng)
    topology._adjacency[mobile][base] = link
    topology._adjacency[base][mobile] = link
    topology.invalidate_routes()
    # Route validity depends on link.up, which changes with the level.
    link.on_level_change(lambda _level: topology.invalidate_routes())
    return link
