"""Transports above the raw datagram service: reliable delivery and RPC.

:class:`ReliableChannel` gives per-destination FIFO, exactly-once delivery
via acknowledgements, retransmission and sequence-number deduplication.
:class:`RpcEndpoint` layers request/response invocation (the computational-
viewpoint *operational interface* of ODP) on top of it.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Optional, Tuple

from repro.analysis.hb import extract_clock, inject_clock
from repro.errors import TransportError
from repro.faults.policies import (
    CircuitOpenError,
    FaultPolicies,
    RetryPolicy,
    fixed_retry,
)
from repro.net.network import Host
from repro.net.packet import Packet
from repro.obs.metrics import BoundCounterCache, get_metrics
from repro.obs.propagation import extract, inject
from repro.obs.tracer import get_tracer
from repro.sim import Event, Store


def _gauge_set(name: str, node: str, value: int, at: float) -> None:
    """Record a gauge sample, tolerating ambient-registry reuse.

    Instrumentation writes to whatever registry is ambient.  The
    process-default registry outlives simulation environments, so a
    fresh environment's t=0 can sit "before" samples an earlier
    environment already recorded; a time-series gauge rejects that.
    Workloads that read these gauges install a scoped registry per run
    (where time is monotonic), so dropping the out-of-order sample only
    affects the throwaway default.
    """
    gauge = get_metrics().gauge(name, node=node)
    series = getattr(gauge, "series", None)
    if series is not None and series.samples \
            and at < series.samples[-1][0]:
        return
    gauge.set(value, at=at)


class ReliableChannel:
    """Acknowledged, deduplicated, per-sender FIFO delivery on one port.

    Retransmission timing comes from a
    :class:`~repro.faults.policies.RetryPolicy`.  The default —
    ``fixed_retry(ack_timeout, max_retries)`` — reproduces the classic
    constant-interval behaviour exactly; pass ``backoff`` for
    exponential backoff with deterministic jitter under loss.
    """

    def __init__(self, host: Host, port: int = 1,
                 ack_timeout: float = 0.2, max_retries: int = 8,
                 backoff: Optional[RetryPolicy] = None) -> None:
        if max_retries < 0:
            raise TransportError("max_retries must be non-negative")
        self.host = host
        self.env = host.env
        self.port = port
        self.ack_timeout = ack_timeout
        self.max_retries = max_retries if backoff is None \
            else backoff.max_retries
        self.backoff = backoff if backoff is not None \
            else fixed_retry(ack_timeout, max_retries)
        # Sequence numbers are per destination: the receiver reorders by
        # (sender, seq), so a shared counter would leave permanent gaps
        # for receivers that only see part of the stream.
        self._seq: Dict[str, "itertools.count"] = {}
        self._pending_acks: Dict[Tuple[str, int], Event] = {}
        self._expected: Dict[str, int] = {}
        self._reorder: Dict[str, Dict[int, Packet]] = {}
        self._app_inbox = Store(self.env)
        self.retransmissions = 0
        #: Retries performed (== retransmissions; mirrored in the
        #: metrics registry as ``chan.retries``).
        self.retries = 0
        #: Sends abandoned after exhausting every retry
        #: (``chan.gave_up`` in the registry).
        self.gave_up = 0
        #: Sends started but not yet acked or abandoned — the liveness
        #: oracle's view of operations that never resolved (mirrored as
        #: the ``chan.inflight`` gauge).
        self._inflight = 0
        self._retry_counters = BoundCounterCache(
            "chan.retries", "dst", node=host.name)
        self._gave_up_counters = BoundCounterCache(
            "chan.gave_up", "dst", node=host.name)
        host.on_packet(port, self._on_packet)

    def send(self, dst: str, payload: Any = None, size: int = 0,
             parent=None) -> Event:
        """Send reliably; the event fires on ack or fails TransportError.

        ``parent`` optionally names the caller's span (or span context);
        the send's trace context then rides every data packet so the
        per-link transit spans (and any retransmissions) parent under
        one ``chan.send`` span.
        """
        done = self.env.event()
        self.env.process(self._send_proc(dst, payload, size, done, parent))
        return done

    def receive(self):
        """An event yielding the next in-order packet from any sender."""
        return self._app_inbox.get()

    def inflight(self) -> int:
        """Sends still awaiting an ack (not yet succeeded or given up).

        A send mid-backoff counts: the operation is unresolved even
        though no retransmission is currently on the wire.  After a
        drained run (all faults lifted, senders stopped) this must be
        zero — the liveness property the fuzzer's oracle checks.
        """
        return self._inflight

    def _track(self, delta: int) -> None:
        self._inflight += delta
        _gauge_set("chan.inflight", self.host.name, self._inflight,
                   self.env.now)

    # -- internals ---------------------------------------------------------

    def _send_proc(self, dst: str, payload: Any, size: int, done: Event,
                   parent=None):
        if dst not in self._seq:
            self._seq[dst] = itertools.count(1)
        seq = next(self._seq[dst])
        self._track(+1)
        span = get_tracer().start_span(
            "chan.send", at=self.env.now, parent=parent,
            node=self.host.name, dst=dst, seq=seq)
        attempts = 0
        while attempts <= self.max_retries:
            ack = self.env.event()
            self._pending_acks[(dst, seq)] = ack
            self.host.send(dst, payload=payload, size=size, port=self.port,
                           headers=inject(span, {"type": "data",
                                                 "seq": seq}))
            if attempts > 0:
                self.retransmissions += 1
                self.retries += 1
                self._retry_counters.get(dst).add()
                span.add_event("retransmit", at=self.env.now,
                               attempt=attempts)
            # The ack wait for attempt N is the backoff delay before
            # retry N — the default fixed_retry policy makes every wait
            # ``ack_timeout``, the channel's historical behaviour.
            result = yield self.env.any_of(
                [ack, self.env.timeout(self.backoff.delay(attempts))])
            if ack in result:
                self._pending_acks.pop((dst, seq), None)
                self._track(-1)
                span.finish(at=self.env.now)
                done.succeed(seq)
                return
            attempts += 1
        self._pending_acks.pop((dst, seq), None)
        self._track(-1)
        self.gave_up += 1
        self._gave_up_counters.get(dst).add()
        span.set_status("error")
        span.set_attribute("error", "no-ack")
        span.finish(at=self.env.now)
        done.fail(TransportError(
            "no ack from {} after {} attempts".format(
                dst, self.max_retries + 1)))

    def _on_packet(self, packet: Packet) -> None:
        kind = packet.headers.get("type")
        if kind == "ack":
            ack = self._pending_acks.get(
                (packet.src, packet.headers["seq"]))
            if ack is not None and not ack.triggered:
                ack.succeed()
            return
        if kind != "data":
            return
        seq = packet.headers["seq"]
        # Always (re-)acknowledge, even duplicates.
        self.host.send(packet.src, size=0, port=self.port,
                       headers={"type": "ack", "seq": seq})
        # Per-sender sequences start at 1; a later seq arriving first
        # (its predecessor lost, awaiting retransmission) must be held,
        # not adopted as the baseline.
        expected = self._expected.get(packet.src, 1)
        if seq < expected:
            return  # duplicate
        buffer = self._reorder.setdefault(packet.src, {})
        buffer[seq] = packet
        while expected in buffer:
            self._app_inbox.put(buffer.pop(expected))
            expected += 1
        self._expected[packet.src] = expected


class RpcError(TransportError):
    """An RPC failed (timeout or remote exception)."""


class RemoteException(RpcError):
    """The remote handler raised; carries the remote error message."""


class RpcEndpoint:
    """Request/response invocation between hosts.

    Handlers are registered by method name.  A handler may be a plain
    function (runs instantaneously in simulated time) or a generator
    function taking ``(caller, args)`` and yielding simulation events, in
    which case its return value is the RPC result.
    """

    def __init__(self, host: Host, port: int = 2,
                 default_timeout: float = 5.0,
                 request_size: int = 256, response_size: int = 256,
                 policies: Optional[FaultPolicies] = None) -> None:
        self.host = host
        self.env = host.env
        self.port = port
        self.default_timeout = default_timeout
        self.request_size = request_size
        self.response_size = response_size
        #: Optional recovery policies (retry/deadline/circuit-breaker)
        #: applied to outgoing calls.  ``None`` — the default — leaves
        #: the single-attempt behaviour byte-identical.
        self.policies = policies
        self._handlers: Dict[str, Callable] = {}
        self._calls: Dict[int, Event] = {}
        self._call_ids = itertools.count(1)
        self.calls_served = 0
        #: Logical calls started but not yet resolved (succeeded or
        #: failed) — includes calls waiting out a retry backoff, when
        #: nothing is on the wire.  Mirrored as the ``rpc.inflight``
        #: gauge for the dashboard and the fuzzer's liveness oracle.
        self._inflight = 0
        self._retry_counters = BoundCounterCache(
            "rpc.retries", "dst", node=host.name)
        host.on_packet(port, self._on_packet)

    def register(self, method: str, handler: Callable) -> None:
        """Expose ``handler`` under ``method``."""
        self._handlers[method] = handler

    def call(self, dst: str, method: str, args: Any = None,
             timeout: Optional[float] = None, parent=None) -> Event:
        """Invoke ``method`` at ``dst``; the event fires with the result.

        ``parent`` optionally names the caller's span (or span context);
        the call's trace context then rides the request packet so the
        remote side and every link hop join the same trace tree.
        """
        done = self.env.event()
        self.env.process(self._call_proc(
            dst, method, args,
            self.default_timeout if timeout is None else timeout, done,
            parent))
        return done

    def inflight(self) -> int:
        """Calls started but not yet resolved (see ``rpc.inflight``)."""
        return self._inflight

    def _track(self, delta: int) -> None:
        self._inflight += delta
        _gauge_set("rpc.inflight", self.host.name, self._inflight,
                   self.env.now)

    # -- internals ---------------------------------------------------------

    def _call_proc(self, dst: str, method: str, args: Any,
                   timeout: float, done: Event, parent=None):
        policies = self.policies
        retry = policies.retry if policies is not None else None
        breaker = policies.breaker if policies is not None else None
        budget = policies.budget(self.env) if policies is not None else None
        span = get_tracer().start_span(
            "rpc.call", at=self.env.now, parent=parent,
            node=self.host.name, dst=dst, method=method)
        self._track(+1)
        attempt = 0
        while True:
            if breaker is not None and not breaker.allow(dst):
                span.set_status("error")
                span.set_attribute("error", "circuit-open")
                span.finish(at=self.env.now)
                self._track(-1)
                done.fail(CircuitOpenError(
                    "circuit to {} is open; {} not attempted".format(
                        dst, method)))
                return
            call_id = next(self._call_ids)
            reply = self.env.event()
            self._calls[call_id] = reply
            # The happens-before sanitizer rides the same headers as the
            # trace context: the serving host becomes causally ordered
            # after the caller's history (and vice versa on the response).
            self.host.send(dst, payload={"method": method, "args": args},
                           size=self.request_size, port=self.port,
                           headers=inject_clock(
                               inject(span, {"type": "request",
                                             "call": call_id}),
                               self.host.name))
            result = yield self.env.any_of(
                [reply, self.env.timeout(timeout)])
            self._calls.pop(call_id, None)
            if reply in result:
                ok, value = reply.value
                if breaker is not None:
                    # Any response — even a remote exception — proves
                    # the destination reachable; only transport-level
                    # timeouts accrue toward opening the circuit.
                    breaker.record_success(dst)
                span.finish(at=self.env.now)
                self._track(-1)
                if ok:
                    done.succeed(value)
                else:
                    span.set_status("error")
                    done.fail(RemoteException(value))
                return
            # Timed out: maybe retry (within policy and budget).
            if breaker is not None:
                breaker.record_failure(dst)
            delay = None
            if retry is not None and attempt < retry.max_retries:
                delay = retry.delay(attempt)
                if budget is not None and not budget.allows(delay):
                    delay = None
            if delay is None:
                span.set_status("error")
                span.set_attribute("error", "timeout")
                span.finish(at=self.env.now)
                self._track(-1)
                done.fail(RpcError(
                    "call {} to {} timed out after {:g}s".format(
                        method, dst, timeout)))
                return
            self._retry_counters.get(dst).add()
            span.add_event("rpc-retry", at=self.env.now,
                           attempt=attempt, delay=delay)
            yield self.env.timeout(delay)
            attempt += 1

    def _on_packet(self, packet: Packet) -> None:
        kind = packet.headers.get("type")
        if kind == "request":
            self.env.process(self._serve(packet))
        elif kind == "response":
            reply = self._calls.get(packet.headers["call"])
            if reply is not None and not reply.triggered:
                extract_clock(packet.headers, self.host.name)
                reply.succeed(packet.payload)

    def _serve(self, packet: Packet):
        method = packet.payload["method"]
        args = packet.payload["args"]
        extract_clock(packet.headers, self.host.name)
        # The serving span parents under the caller's rpc.call context
        # carried by the request packet; its duration is the remote
        # execution time.
        span = get_tracer().start_span(
            "rpc.serve", at=self.env.now, parent=extract(packet.headers),
            node=self.host.name, caller=packet.src, method=method)
        handler = self._handlers.get(method)
        if handler is None:
            outcome = (False, "no such method: {}".format(method))
        else:
            try:
                result = handler(packet.src, args)
                if hasattr(result, "send") and hasattr(result, "throw"):
                    result = yield self.env.process(result)
                outcome = (True, result)
            except Exception as error:  # noqa: BLE001 - forwarded to caller
                outcome = (False, "{}: {}".format(
                    type(error).__name__, error))
        self.calls_served += 1
        if not outcome[0]:
            span.set_status("error")
        span.finish(at=self.env.now)
        self.host.send(packet.src, payload=outcome,
                       size=self.response_size, port=self.port,
                       headers=inject_clock(
                           inject(span, {
                               "type": "response",
                               "call": packet.headers["call"]}),
                           self.host.name))
