"""Graceful degradation: bend the collaboration instead of breaking it.

The paper's central robustness claim (§2.3) is that a cooperative
activity should survive the failure of its parts: *"reliability stems
from the system as a whole."*  This module is the policy layer that
makes our stack behave that way.  A :class:`DegradationManager` listens
to the two failure signals the platform already produces —

* SLO burn alerts from :class:`~repro.obs.slo.SLOMonitor` (the service
  *is* failing its users), and
* failure-detector suspicions from
  :class:`~repro.groups.failure.HeartbeatMonitor` (a *member* looks
  gone)

— and responds by renegotiating rather than aborting:

* QoS contracts are shed toward their negotiated minimum
  (:meth:`QoSBroker.shed <repro.qos.broker.QoSBroker.shed>`): media
  quality drops, the flow survives.
* The session falls back from synchronous interaction to
  asynchronous, notification-style sharing
  (:meth:`Session.switch_mode <repro.sessions.session.Session.switch_mode>`),
  and a suspected member's floor is reclaimed so the group is never
  deadlocked behind a silent holder.
* When the alert clears, contracts are restored toward their desired
  level and the session returns to synchronous mode.

Every transition lands in ``degrade.*`` counters and the manager's
JSON-safe :attr:`log`, so experiments can show the *shape* of
degradation, not just whether it happened.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.obs.metrics import get_metrics
from repro.sessions.session import ASYNCHRONOUS, SYNCHRONOUS

#: Degradation levels.
FULL_SERVICE = "full-service"
DEGRADED = "degraded"


class DegradationManager:
    """Coordinates graceful degradation for one session and its flows.

    Parameters
    ----------
    env:
        The simulation environment (timestamps the log).
    session:
        Optional :class:`~repro.sessions.session.Session` to drop into
        asynchronous mode while degraded.
    broker:
        Optional :class:`~repro.qos.broker.QoSBroker` owning the
        contracts below.
    contracts:
        The QoS contracts to shed/restore with the degradation level.
    shed_fraction:
        How much of current throughput each degradation sheds.
    """

    def __init__(self, env, session=None, broker=None,
                 contracts: Sequence = (),
                 shed_fraction: float = 0.5) -> None:
        self.env = env
        self.session = session
        self.broker = broker
        self.contracts = list(contracts)
        self.shed_fraction = shed_fraction
        self.level = FULL_SERVICE
        self.log: List[Dict[str, Any]] = []
        self._was_synchronous = False

    # -- signal wiring ------------------------------------------------------

    def on_alert(self, kind: str, alert) -> None:
        """An :class:`~repro.obs.slo.SLOMonitor` ``on_alert`` callback."""
        if kind == "fired":
            self.degrade("slo:" + alert.slo)
        elif kind == "cleared":
            self.recover("slo:" + alert.slo)

    def on_suspect(self, member: str) -> None:
        """A failure-detector ``on_suspect`` callback: reclaim the
        member's floor (if held) and degrade the session."""
        reclaimed = False
        if self.session is not None:
            reclaimed = self.session.handle_suspected_member(member)
        get_metrics().counter("degrade.suspicions", member=member).add()
        self._log("suspect", member=member, floor_reclaimed=reclaimed)
        self.degrade("suspect:" + member)

    def watch(self, contract) -> None:
        """Add a QoS contract to the managed set."""
        self.contracts.append(contract)

    # -- transitions --------------------------------------------------------

    def degrade(self, reason: str) -> bool:
        """Enter degraded mode (idempotent).  Returns True on entry."""
        if self.level == DEGRADED:
            self._log("degrade-again", reason=reason)
            return False
        self.level = DEGRADED
        shed = self._shed_contracts()
        if self.session is not None:
            self._was_synchronous = self.session.time_mode == SYNCHRONOUS
            if self._was_synchronous:
                # Fall back to notification-style, asynchronous sharing
                # — the paper's seamless-transition machinery (§3.1)
                # doubles as the degradation path.
                self.session.switch_mode(time_mode=ASYNCHRONOUS)
        get_metrics().counter("degrade.entered", reason=reason).add()
        self._log("degrade", reason=reason, contracts_shed=shed)
        return True

    def recover(self, reason: str) -> bool:
        """Leave degraded mode (idempotent).  Returns True on exit."""
        if self.level != DEGRADED:
            return False
        self.level = FULL_SERVICE
        restored = self._restore_contracts()
        if self.session is not None and self._was_synchronous:
            self.session.switch_mode(time_mode=SYNCHRONOUS)
        get_metrics().counter("degrade.recovered", reason=reason).add()
        self._log("recover", reason=reason, contracts_restored=restored)
        return True

    # -- internals ----------------------------------------------------------

    def _shed_contracts(self) -> int:
        if self.broker is None:
            return 0
        shed = 0
        for contract in self.contracts:
            before = contract.agreed.throughput
            self.broker.shed(contract, self.shed_fraction)
            if contract.agreed.throughput < before:
                shed += 1
        return shed

    def _restore_contracts(self) -> int:
        if self.broker is None:
            return 0
        restored = 0
        for contract in self.contracts:
            before = contract.agreed.throughput
            self.broker.restore(contract)
            if contract.agreed.throughput > before:
                restored += 1
        return restored

    def _log(self, event: str, **fields: Any) -> None:
        entry: Dict[str, Any] = {"at": self.env.now, "event": event}
        entry.update(fields)
        self.log.append(entry)

    def __repr__(self) -> str:
        return "<DegradationManager level={} contracts={}>".format(
            self.level, len(self.contracts))
