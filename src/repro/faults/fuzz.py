"""Seeded chaos search: generated fault schedules vs. the oracle suite.

The repo's chaos workloads each ship one hand-written
:class:`~repro.faults.schedule.FaultSchedule`.  This module searches the
space *around* those schedules: a seeded generator samples random but
valid schedules — link cuts, partitions, node crashes, latency storms,
loss bursts, overlapping freely — and injects each into an unmodified
workload through the ambient schedule override
(:func:`~repro.faults.schedule.use_schedule_override`).  Every trial
runs the workload **twice** under one sim seed (once generating, once
replaying the captured schedule) and hands the evidence to
:mod:`repro.faults.oracles`: replay-digest identity, happens-before
conflicts, liveness after drain, SLO clearance and per-workload domain
invariants.

On a violation the campaign can delta-debug the schedule down to a
minimal reproducer (:mod:`repro.faults.shrink`), serialize it into the
corpus (:mod:`repro.faults.corpus`) where it becomes a permanent
``fuzz-reg-<id>`` regression workload, and — for replay violations —
localize the first divergent flight epoch via
:mod:`repro.obs.divergence`.

Everything is a pure function of ``(campaign seed, workload seed)``:
the generator draws from its own :class:`~repro.sim.RandomStreams`
(never the workload's), times sit on a 0.25 s grid, and the campaign
summary carries a digest so CI can assert two runs of ::

    python -m repro.faults.fuzz --workload partition-recovery \\
        --budget 25 --seed 7

print byte-identical reports.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.analysis.hb import ConflictSanitizer, use_sanitizer
from repro.analysis.replay import trace_digest
from repro.analysis.workloads import run_workload
from repro.errors import SimulationError
from repro.faults.corpus import default_corpus_dir, make_entry, write_entry
from repro.faults.oracles import TrialEvidence, evaluate, oracle_names
from repro.faults.schedule import FaultSchedule, use_schedule_override
from repro.faults.shrink import shrink_schedule
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.sim import RandomStreams

#: Version tag of the campaign summary format.
CAMPAIGN_SCHEMA = "repro-fuzz-campaign/1"

#: All generated times land on this grid (keeps shrinking stable and
#: schedules human-readable).
TIME_QUANTUM = 0.25

#: Shortest generated fault, long enough for failure detectors to trip.
MIN_DURATION = 2.0

STORM_SCALES = (2.0, 4.0, 8.0)
LOSS_RATES = (0.2, 0.4, 0.6)

#: Relative likelihood of each operation the generator can emit.
OP_WEIGHTS = (("link", 3.0), ("partition", 2.0), ("crash", 2.0),
              ("storm", 2.0), ("loss", 2.0))


class FuzzProfile:
    """What the fuzzer may do to one workload — and what must hold.

    ``active`` bounds generated onset times, ``heal_by`` is the latest
    allowed lift (every generated schedule is balanced by
    construction, so the liveness/recovery oracles always apply).
    ``max_ops`` caps operations per schedule.  The boolean flags enable
    the optional oracles; ``invariants`` is a tuple of
    ``(name, check(schedule, result) -> message | None)`` domain
    checks.
    """

    __slots__ = ("name", "active", "heal_by", "max_ops", "liveness",
                 "slo_clear", "conflict_free", "invariants")

    def __init__(self, name: str, active: Tuple[float, float],
                 heal_by: float, max_ops: int = 3,
                 liveness: bool = False, slo_clear: bool = False,
                 conflict_free: bool = False,
                 invariants: Tuple[Tuple[str, Callable[..., Any]], ...] = ()
                 ) -> None:
        if active[0] >= active[1]:
            raise SimulationError("active window must be non-empty")
        if heal_by < active[0] + MIN_DURATION:
            raise SimulationError(
                "heal_by leaves no room for a minimum-length fault")
        self.name = name
        self.active = active
        self.heal_by = heal_by
        self.max_ops = max_ops
        self.liveness = liveness
        self.slo_clear = slo_clear
        self.conflict_free = conflict_free
        self.invariants = invariants

    def __repr__(self) -> str:
        return "<FuzzProfile {} active={} heal_by={}>".format(
            self.name, self.active, self.heal_by)


def _view_recovers(schedule: FaultSchedule,
                   result: Dict[str, Any]) -> Optional[str]:
    """partition-recovery's domain invariant: suspicion is reversible.

    If any member was ever suspected and every fault has lifted, some
    later view must contain the full membership again.  "Full" is the
    largest membership any view reached, so the check does not encode
    the workload's member list.
    """
    if not schedule.balanced():
        return None
    suspicions = result.get("suspicions") or []
    views = result.get("views") or []
    if not suspicions or not views:
        return None
    full_size = max(len(view["members"]) for view in views)
    last_suspected_at = max(record["at"] for record in suspicions)
    for view in views:
        if view["at"] > last_suspected_at \
                and len(view["members"]) == full_size:
            return None
    return ("a member was suspected (last at t={:g}) but no later view "
            "ever regained full membership, although every fault "
            "lifted".format(last_suspected_at))


#: Per-workload fuzzing contracts.  Only listed workloads are fuzzable:
#: the profile is what makes a generated schedule *valid* (onsets inside
#: the active window, lifts before the drain) and the oracles *fair*.
PROFILES: Dict[str, FuzzProfile] = {
    "partition-recovery": FuzzProfile(
        "partition-recovery", active=(2.0, 30.0), heal_by=36.0,
        max_ops=3, slo_clear=True, conflict_free=True,
        invariants=(("view-recovers", _view_recovers),)),
    "flaky-links": FuzzProfile(
        "flaky-links", active=(2.0, 30.0), heal_by=34.0,
        max_ops=3, liveness=True),
    "fuzz-probe": FuzzProfile(
        "fuzz-probe", active=(1.0, 14.0), heal_by=16.0,
        max_ops=4, liveness=True),
}


def get_profile(name: str) -> FuzzProfile:
    """The fuzz profile for ``name`` (KeyError lists the fuzzable set)."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            "no fuzz profile for workload {!r}; fuzzable: {}".format(
                name, ", ".join(sorted(PROFILES))))


# -- schedule generation -----------------------------------------------------


class ScheduleGenerator:
    """Samples random-but-valid schedules for one profile.

    All randomness comes from the single ``rng`` stream handed in (a
    campaign derives one per trial), **never** from the workload's
    streams — generation therefore cannot perturb the workload's own
    draw sequence, which is what lets the replay oracle compare a
    generating run against a fixed-schedule run.

    The topology is only known inside the run (the ambient override
    passes the live :class:`~repro.net.network.Network` to
    :meth:`generate`), so targets are sampled from sorted node and link
    lists for determinism.
    """

    def __init__(self, profile: FuzzProfile, rng: Any) -> None:
        self.profile = profile
        self._rng = rng

    def _grid(self, lo: float, hi: float) -> float:
        """A uniform draw from the TIME_QUANTUM grid points in [lo, hi]."""
        steps = int(round((hi - lo) / TIME_QUANTUM))
        return lo + TIME_QUANTUM * self._rng.randint(0, max(0, steps))

    def _window(self) -> Tuple[float, float]:
        """(onset, lift): grid-aligned, inside the profile's bounds."""
        lo, hi = self.profile.active
        onset = self._grid(lo, min(hi, self.profile.heal_by - MIN_DURATION))
        lift = self._grid(onset + MIN_DURATION, self.profile.heal_by)
        return onset, lift

    def _pick_link(self, links: List[Any]) -> Tuple[str, str]:
        link = links[self._rng.randrange(len(links))]
        return link.a, link.b

    def generate(self, network: Any) -> FaultSchedule:
        """One balanced schedule against ``network``'s live topology."""
        rng = self._rng
        nodes = sorted(network.topology.nodes)
        links = sorted(network.topology.links(),
                       key=lambda link: (link.a, link.b))
        schedule = FaultSchedule()
        ops = rng.randint(1, self.profile.max_ops)
        for index in range(ops):
            kinds = [kind for kind, _ in OP_WEIGHTS]
            weights = [weight for _, weight in OP_WEIGHTS]
            point = rng.random() * sum(weights)
            acc = 0.0
            op = kinds[-1]
            for kind, weight in zip(kinds, weights):
                acc += weight
                if point <= acc:
                    op = kind
                    break
            onset, lift = self._window()
            if op == "link" and links:
                a, b = self._pick_link(links)
                schedule.link_down(onset, a, b, up_at=lift)
            elif op == "partition" and len(nodes) >= 2:
                size = rng.randint(1, len(nodes) - 1)
                group = sorted(rng.sample(nodes, size))
                rest = sorted(node for node in nodes
                              if node not in group)
                schedule.partition(onset, [group, rest],
                                   name="fz-{}".format(index),
                                   heal_at=lift)
            elif op == "crash" and nodes:
                node = nodes[rng.randrange(len(nodes))]
                schedule.node_crash(onset, node, restart_at=lift)
            elif op == "storm" and links:
                scale = STORM_SCALES[rng.randrange(len(STORM_SCALES))]
                targets = None if rng.random() < 0.5 \
                    else [self._pick_link(links)]
                schedule.latency_storm(onset, scale, lift - onset,
                                       links=targets)
            elif op == "loss" and links:
                rate = LOSS_RATES[rng.randrange(len(LOSS_RATES))]
                targets = None if rng.random() < 0.5 \
                    else [self._pick_link(links)]
                schedule.loss_burst(onset, rate, lift - onset,
                                    links=targets)
        return schedule


# -- trial execution ---------------------------------------------------------


def _run_once(name: str, seed: int
              ) -> Tuple[Dict[str, Any], Dict[str, int], str]:
    """One isolated run: (result, conflict counts, result digest)."""
    sanitizer = ConflictSanitizer()
    with use_metrics(MetricsRegistry()):
        with use_sanitizer(sanitizer):
            result = run_workload(name, seed=seed)
    return result, sanitizer.conflict_counts(), trace_digest(result)


def _fixed_factory(schedule_dict: Dict[str, Any]
                   ) -> Callable[..., FaultSchedule]:
    """An override factory that always yields the given schedule."""
    def factory(network: Any, schedule: FaultSchedule) -> FaultSchedule:
        return FaultSchedule.from_dict(schedule_dict)
    return factory


def evaluate_schedule(name: str, seed: int,
                      schedule_dict: Dict[str, Any],
                      runs: int = 2) -> Dict[str, Any]:
    """Run ``name`` under a fixed schedule and apply the oracle suite.

    ``runs >= 2`` arms the replay oracle (digest identity across runs);
    ``runs=1`` is the cheap mode shrink probes use for non-replay
    oracles.  This is also the corpus regression entry point.
    """
    profile = get_profile(name)
    schedule = FaultSchedule.from_dict(schedule_dict)
    digests: List[str] = []
    first: Optional[Dict[str, Any]] = None
    conflicts: Dict[str, int] = {}
    with use_schedule_override(_fixed_factory(schedule_dict)):
        for _ in range(max(1, runs)):
            result, conflict_counts, digest = _run_once(name, seed)
            digests.append(digest)
            if first is None:
                first = result
                conflicts = conflict_counts
    evidence = TrialEvidence(profile, schedule, first or {},
                             conflicts, digests)
    violations = evaluate(evidence)
    return {"workload": name, "seed": seed, "digests": digests,
            "violations": violations,
            "oracles": oracle_names(violations)}


def run_trial(name: str, seed: int, generator: ScheduleGenerator
              ) -> Dict[str, Any]:
    """One fuzz trial: generate, replay, judge.

    Run 1 installs a *generating* override — the schedule is sampled
    inside the run, against the live topology.  Run 2 replays the
    captured schedule through a fixed override.  Matching digests plus
    a clean oracle suite means the trial passes.
    """
    profile = generator.profile
    captured: Dict[str, FaultSchedule] = {}

    def generating(network: Any, schedule: FaultSchedule) -> FaultSchedule:
        generated = generator.generate(network)
        captured["schedule"] = generated
        return generated

    with use_schedule_override(generating):
        result, conflicts, first_digest = _run_once(name, seed)
    if "schedule" not in captured:
        raise SimulationError(
            "workload {!r} never built a FaultInjector; nothing to "
            "fuzz".format(name))
    schedule_dict = captured["schedule"].to_dict()
    with use_schedule_override(_fixed_factory(schedule_dict)):
        _, _, second_digest = _run_once(name, seed)
    evidence = TrialEvidence(profile,
                             FaultSchedule.from_dict(schedule_dict),
                             result, conflicts,
                             [first_digest, second_digest])
    violations = evaluate(evidence)
    return {"workload": name, "seed": seed,
            "schedule": schedule_dict,
            "digests": [first_digest, second_digest],
            "violations": violations,
            "oracles": oracle_names(violations)}


def _shrink_test(name: str, seed: int, target: str
                 ) -> Callable[[List[Dict[str, Any]]], bool]:
    """"Still fails the same way": the shrinker's probe predicate."""
    runs = 2 if target == "replay" else 1

    def test(events: List[Dict[str, Any]]) -> bool:
        try:
            report = evaluate_schedule(name, seed, {"events": events},
                                       runs=runs)
        except Exception:  # noqa: BLE001 - invalid candidate == no repro
            return False
        return target in report["oracles"]

    return test


def _localize_replay(name: str, seed: int,
                     schedule_dict: Dict[str, Any]) -> Dict[str, Any]:
    """First divergent flight epoch for a replay violation.

    Uses the *fixed* factory: the flight recorder journals RNG draws,
    and the generator stream must not appear in one run but not the
    other.  Imported lazily — campaigns without replay failures never
    touch the recorder.
    """
    from repro.obs.divergence import compare_digests

    with use_schedule_override(_fixed_factory(schedule_dict)):
        report = compare_digests(name, seed)
    return {"diverged": report["diverged"],
            "epoch": report.get("epoch"),
            "epochs": list(report["epochs"])}


# -- campaigns ---------------------------------------------------------------


def campaign_digest(summary: Dict[str, Any]) -> str:
    """SHA-256 over the canonical summary (minus the digest itself)."""
    stripped = {key: value for key, value in summary.items()
                if key != "digest"}
    canonical = json.dumps(stripped, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def run_campaign(workload: str, budget: int, seed: int,
                 workload_seed: int = 31, shrink: bool = False,
                 shrink_budget: int = 400,
                 corpus_dir: Optional[str] = None,
                 max_failures: Optional[int] = None,
                 localize: bool = True,
                 progress: Optional[Callable[[int, Dict[str, Any]],
                                             None]] = None
                 ) -> Dict[str, Any]:
    """A full fuzz campaign; returns the JSON-safe summary.

    Deterministic in ``(seed, workload_seed)``: trial ``i`` draws from
    stream ``trial-%05d`` of a campaign-private
    :class:`~repro.sim.RandomStreams`.  ``max_failures`` stops early
    (the remaining budget is reported as unspent); ``corpus_dir``
    serializes each failure's (shrunk) schedule as a corpus entry.
    """
    profile = get_profile(workload)
    streams = RandomStreams(seed)
    failures: List[Dict[str, Any]] = []
    oracle_counts: Dict[str, int] = {}
    events_generated = 0
    trials_run = 0
    for index in range(budget):
        if max_failures is not None and len(failures) >= max_failures:
            break
        rng = streams.stream("trial-{:05d}".format(index))
        generator = ScheduleGenerator(profile, rng)
        trial = run_trial(workload, workload_seed, generator)
        trials_run += 1
        events_generated += len(trial["schedule"]["events"])
        if progress is not None:
            progress(index, trial)
        if not trial["violations"]:
            continue
        for oracle in trial["oracles"]:
            oracle_counts[oracle] = oracle_counts.get(oracle, 0) + 1
        failure: Dict[str, Any] = {
            "trial": index,
            "oracles": trial["oracles"],
            "violations": trial["violations"],
            "schedule": trial["schedule"],
            "digests": trial["digests"],
        }
        target = trial["oracles"][0]
        if localize and "replay" in trial["oracles"]:
            failure["localization"] = _localize_replay(
                workload, workload_seed, trial["schedule"])
        if shrink:
            report = shrink_schedule(
                trial["schedule"]["events"],
                _shrink_test(workload, workload_seed, target),
                budget=shrink_budget, quantum=TIME_QUANTUM)
            failure["shrink"] = report
            minimal = {"events": report["events"]}
        else:
            minimal = trial["schedule"]
        failure["minimal"] = minimal
        if corpus_dir is not None:
            entry = make_entry(
                workload, workload_seed, target, minimal,
                message=trial["violations"][0]["message"],
                campaign={"seed": seed, "trial": index,
                          "budget": budget})
            path = write_entry(corpus_dir, entry)
            failure["corpus"] = {"id": entry["id"], "path": path}
        failures.append(failure)
    summary = {
        "schema": CAMPAIGN_SCHEMA,
        "workload": workload,
        "budget": budget,
        "seed": seed,
        "workload_seed": workload_seed,
        "trials": trials_run,
        "events_generated": events_generated,
        "failures": failures,
        "failure_count": len(failures),
        "oracle_counts": {key: oracle_counts[key]
                          for key in sorted(oracle_counts)},
        "shrink_enabled": shrink,
    }
    summary["digest"] = campaign_digest(summary)
    return summary


# -- CLI ---------------------------------------------------------------------


def _print_text(summary: Dict[str, Any], out) -> None:
    out.write("fuzz campaign: workload={} budget={} seed={} "
              "workload-seed={}\n".format(
                  summary["workload"], summary["budget"],
                  summary["seed"], summary["workload_seed"]))
    for failure in summary["failures"]:
        out.write("trial {:05d}: FAIL {} ({} event(s))\n".format(
            failure["trial"], ",".join(failure["oracles"]),
            len(failure["schedule"]["events"])))
        for violation in failure["violations"]:
            out.write("  {}: {}\n".format(violation["oracle"],
                                          violation["message"]))
        localization = failure.get("localization")
        if localization is not None:
            out.write("  flight epoch: {} (diverged={})\n".format(
                localization["epoch"], localization["diverged"]))
        report = failure.get("shrink")
        if report is not None:
            out.write("  shrunk: {} -> {} event(s) in {} probe(s)\n"
                      .format(report["events_before"],
                              report["events_after"],
                              report["tests_run"]))
        corpus = failure.get("corpus")
        if corpus is not None:
            out.write("  corpus: {} -> {}\n".format(corpus["id"],
                                                    corpus["path"]))
    out.write("trials={} failures={} events-generated={}\n".format(
        summary["trials"], summary["failure_count"],
        summary["events_generated"]))
    if summary["oracle_counts"]:
        out.write("oracle-counts: {}\n".format(" ".join(
            "{}={}".format(key, value) for key, value
            in sorted(summary["oracle_counts"].items()))))
    out.write("campaign digest: {}\n".format(summary["digest"]))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.fuzz",
        description="Search generated fault schedules for oracle "
                    "violations, deterministically.")
    parser.add_argument("--workload", help="fuzz target (see --list)")
    parser.add_argument("--budget", type=int, default=25,
                        help="number of trials (default 25)")
    parser.add_argument("--seed", type=int, default=7,
                        help="campaign seed driving generation "
                             "(default 7)")
    parser.add_argument("--workload-seed", type=int, default=31,
                        help="sim seed each trial runs under "
                             "(default 31)")
    parser.add_argument("--shrink", action="store_true",
                        help="delta-debug each failing schedule to a "
                             "minimal reproducer")
    parser.add_argument("--shrink-budget", type=int, default=400,
                        help="max shrink probes per failure "
                             "(default 400)")
    parser.add_argument("--corpus", metavar="DIR", default=None,
                        help="write failing (shrunk) schedules as "
                             "corpus entries into DIR "
                             "('default' = the checked-in corpus)")
    parser.add_argument("--max-failures", type=int, default=None,
                        help="stop the campaign after N failures")
    parser.add_argument("--no-localize", action="store_true",
                        help="skip flight-epoch localization of "
                             "replay violations")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--list", action="store_true",
                        help="list fuzzable workloads and exit")
    options = parser.parse_args(argv)
    if options.list:
        for name in sorted(PROFILES):
            profile = PROFILES[name]
            print("{}  active=[{:g},{:g}] heal_by={:g} max_ops={}"
                  .format(name, profile.active[0], profile.active[1],
                          profile.heal_by, profile.max_ops))
        return 0
    if options.workload is None:
        parser.error("--workload is required (see --list)")
    if options.budget < 1:
        parser.error("--budget must be >= 1")
    try:
        get_profile(options.workload)
    except KeyError as error:
        print("error: {}".format(error.args[0]), file=sys.stderr)
        return 2
    corpus_dir = options.corpus
    if corpus_dir == "default":
        corpus_dir = default_corpus_dir()
    summary = run_campaign(
        options.workload, options.budget, options.seed,
        workload_seed=options.workload_seed, shrink=options.shrink,
        shrink_budget=options.shrink_budget, corpus_dir=corpus_dir,
        max_failures=options.max_failures,
        localize=not options.no_localize)
    if options.format == "json":
        print(json.dumps(summary, sort_keys=True, indent=2))
    else:
        _print_text(summary, sys.stdout)
    return 0


if __name__ == "__main__":
    sys.exit(main())
