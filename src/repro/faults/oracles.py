"""The oracle suite: what "this chaos run went wrong" means, testably.

A fuzzed fault schedule on its own proves nothing — packets drop, SLOs
burn, circuits open; all of that is the *intended* behaviour of a
degrading infrastructure.  An oracle states a property that must hold
anyway, and the suite here reuses properties the repo already measures:

``replay``
    Same seed, same schedule ⇒ byte-identical result digest (the
    :mod:`repro.analysis.replay` property).  A mismatch means the
    schedule tickled hidden nondeterminism — a wall-clock read, a
    foreign RNG, hash-order dependence — and the flight recorder can
    localize the first divergent epoch.
``hb-conflicts``
    The happens-before sanitizer (:mod:`repro.analysis.hb`) must report
    no *hard* conflicts: two same-object accesses, at least one a
    write, ordered by nothing.  Profiles that declare themselves
    conflict-free extend this to every conflict kind.
``liveness``
    Once every scheduled fault has lifted (the schedule is *balanced*)
    and the workload's drain window has passed, no operation may still
    be pending: every RPC call and reliable send either completed or
    failed cleanly.  Reads the ``inflight`` table workloads export from
    the transport's pending-operation accounting.
``slo-clears``
    Degradation must be reversible: an SLO burn alert fired during a
    balanced schedule must have cleared by the end of the run.
``invariant:<name>``
    Profile-supplied domain checks (e.g. partition-recovery's "a
    suspected member rejoins after the last fault lifts").

Each oracle is a function ``(evidence) -> violation | None`` where a
violation is a JSON-safe dict.  :func:`evaluate` runs the whole suite
and returns every violation, so one schedule can count against several
properties at once.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.faults.schedule import FaultSchedule

#: Conflict kinds the sanitizer reports (mirrors repro.analysis.hb).
_HARD_CONFLICT = "write-write"


class TrialEvidence:
    """Everything the oracles may inspect about one fuzz trial."""

    __slots__ = ("profile", "schedule", "result", "conflicts", "digests")

    def __init__(self, profile: Any, schedule: FaultSchedule,
                 result: Dict[str, Any], conflicts: Dict[str, int],
                 digests: List[str]) -> None:
        self.profile = profile
        self.schedule = schedule
        self.result = result
        self.conflicts = conflicts
        self.digests = digests

    def __repr__(self) -> str:
        return "<TrialEvidence events={} digests={}>".format(
            len(self.schedule), len(self.digests))


def _violation(oracle: str, message: str,
               **data: Any) -> Dict[str, Any]:
    record: Dict[str, Any] = {"oracle": oracle, "message": message}
    if data:
        record["data"] = {key: data[key] for key in sorted(data)}
    return record


def check_replay(evidence: TrialEvidence) -> Optional[Dict[str, Any]]:
    """Same seed + same schedule must digest identically."""
    digests = evidence.digests
    if len(digests) < 2:
        return None  # single-run evaluation: oracle not applicable
    if len(set(digests)) == 1:
        return None
    return _violation(
        "replay",
        "same-seed runs diverged under this schedule "
        "(hidden nondeterminism)",
        digests=list(digests))


def check_hb(evidence: TrialEvidence) -> Optional[Dict[str, Any]]:
    """No hard happens-before conflicts (none at all if conflict-free)."""
    conflicts = evidence.conflicts or {}
    hard = conflicts.get(_HARD_CONFLICT, 0)
    total = sum(conflicts.values())
    strict = getattr(evidence.profile, "conflict_free", False)
    if hard == 0 and not (strict and total > 0):
        return None
    return _violation(
        "hb-conflicts",
        "the sanitizer saw accesses ordered by nothing",
        conflicts={key: conflicts[key] for key in sorted(conflicts)},
        strict=strict)


def check_liveness(evidence: TrialEvidence) -> Optional[Dict[str, Any]]:
    """After a balanced schedule drains, nothing may still be pending."""
    if not getattr(evidence.profile, "liveness", False):
        return None
    if not evidence.schedule.balanced():
        return None  # a fault outlives the run: no drain guarantee
    inflight = evidence.result.get("inflight")
    if not isinstance(inflight, dict):
        return None
    stuck = {key: value for key, value in sorted(inflight.items())
             if value}
    if not stuck:
        return None
    return _violation(
        "liveness",
        "operations started before the last heal neither completed "
        "nor failed within the drain window",
        inflight=stuck)


def check_slo_clears(evidence: TrialEvidence
                     ) -> Optional[Dict[str, Any]]:
    """A burn alert fired under a balanced schedule must clear."""
    if not getattr(evidence.profile, "slo_clear", False):
        return None
    if not evidence.schedule.balanced():
        return None
    fired = evidence.result.get("slo_fired_at")
    cleared = evidence.result.get("slo_cleared_at")
    if fired is None or cleared is not None:
        return None
    return _violation(
        "slo-clears",
        "the SLO burn alert fired and never cleared although every "
        "fault lifted",
        fired_at=fired)


def check_invariants(evidence: TrialEvidence) -> List[Dict[str, Any]]:
    """Profile-supplied domain invariants (each returns a message)."""
    violations = []
    for name, check in getattr(evidence.profile, "invariants", ()):
        message = check(evidence.schedule, evidence.result)
        if message is not None:
            violations.append(_violation("invariant:" + name, message))
    return violations


#: The suite, in evaluation (and report) order.
ORACLES: List[Callable[[TrialEvidence],
                       Optional[Dict[str, Any]]]] = [
    check_replay,
    check_hb,
    check_liveness,
    check_slo_clears,
]


def evaluate(evidence: TrialEvidence) -> List[Dict[str, Any]]:
    """Run every oracle; the (possibly empty) list of violations."""
    violations = []
    for oracle in ORACLES:
        violation = oracle(evidence)
        if violation is not None:
            violations.append(violation)
    violations.extend(check_invariants(evidence))
    return violations


def oracle_names(violations: List[Dict[str, Any]]) -> List[str]:
    """Just the oracle identifiers, in report order."""
    return [violation["oracle"] for violation in violations]
