"""Delta-debugging shrinker for fault schedules.

A fuzzed failure usually arrives wrapped in noise: five faults injected,
one of them the trigger.  :func:`shrink_schedule` minimizes the event
list with classic ddmin (Zeller's delta debugging over the ordered
event records), then attacks the surviving events one by one — rounding
times, closing onset→lift gaps, dropping nodes from partition groups
and targets from impairment lists — while the caller's ``test``
predicate keeps returning "still fails the same way".

The predicate receives a candidate list of event dicts (the
``FaultSchedule.to_dict()["events"]`` shape) and must return ``True``
when the candidate still reproduces the original failure.  Candidates
that fail schedule validation are simply "does not reproduce".  Every
probe is counted and cached, and a test budget bounds the whole search,
so shrinking a pathological case degrades to "less minimal", never to
"runs forever".
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.faults.schedule import LIFT_KINDS

Event = Dict[str, Any]
Test = Callable[[List[Event]], bool]


class _BudgetedTest:
    """Counts, caches and budget-caps probe executions."""

    def __init__(self, test: Test, budget: int) -> None:
        self._test = test
        self.budget = budget
        self.tests_run = 0
        self._cache: Dict[str, bool] = {}

    @property
    def exhausted(self) -> bool:
        return self.tests_run >= self.budget

    def __call__(self, events: List[Event]) -> bool:
        key = json.dumps(events, sort_keys=True)
        if key in self._cache:
            return self._cache[key]
        if self.exhausted:
            return False  # out of budget: treat as "not reproduced"
        self.tests_run += 1
        verdict = bool(self._test(events))
        self._cache[key] = verdict
        return verdict


def ddmin(items: List[Event], test: Test,
          budget: Optional[int] = None) -> Tuple[List[Event], int]:
    """Zeller's ddmin: a 1-minimal failing subset of ``items``.

    Returns ``(minimal_items, tests_run)``.  ``test`` must hold for the
    full list; if it does not, the input is returned unchanged (zero
    confidence beats a wrong answer).  The result is 1-minimal within
    budget: removing any single remaining item stops the failure.
    """
    probe = test if isinstance(test, _BudgetedTest) \
        else _BudgetedTest(test, budget if budget is not None else 1 << 30)
    if not probe(list(items)):
        return list(items), probe.tests_run
    current = list(items)
    granularity = 2
    while len(current) >= 2 and not probe.exhausted:
        chunk = max(1, len(current) // granularity)
        chunks = [current[i:i + chunk]
                  for i in range(0, len(current), chunk)]
        reduced = False
        for index, subset in enumerate(chunks):
            if len(subset) < len(current) and probe(subset):
                current = subset
                granularity = 2
                reduced = True
                break
            complement = [event
                          for j, other in enumerate(chunks)
                          if j != index
                          for event in other]
            if complement and len(complement) < len(current) \
                    and probe(complement):
                current = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current, probe.tests_run


def _lift_key(kind: str, event: Event) -> Optional[Tuple[Any, ...]]:
    """A matchable identity for onset/lift pairing (ddmin output)."""
    if kind in ("link-down", "link-up"):
        return ("link",) + tuple(sorted((event["a"], event["b"])))
    if kind in ("partition", "heal"):
        return ("partition", event["name"])
    if kind in ("node-crash", "node-restart"):
        return ("node", event["node"])
    if kind in ("latency-storm", "latency-calm"):
        return ("latency", event["scale"],
                json.dumps(event.get("links"), sort_keys=True))
    if kind in ("loss-burst", "loss-calm"):
        return ("loss", event["extra_loss"],
                json.dumps(event.get("links"), sort_keys=True))
    return None


def _pairs(events: List[Event]) -> List[Tuple[int, int]]:
    """Indices of (onset, lift) pairs, matched first-in-first-lifted."""
    open_onsets: Dict[Tuple[Any, ...], List[int]] = {}
    pairs: List[Tuple[int, int]] = []
    for index, event in enumerate(events):
        kind = event["kind"]
        key = _lift_key(kind, event)
        if key is None:
            continue
        if kind in LIFT_KINDS:
            open_onsets.setdefault(key, []).append(index)
        else:
            waiting = open_onsets.get(key)
            if waiting:
                pairs.append((waiting.pop(0), index))
    return pairs


def _replace(events: List[Event], index: int, **fields: Any
             ) -> List[Event]:
    candidate = [dict(event) for event in events]
    candidate[index].update(fields)
    return candidate


def _try(probe: _BudgetedTest, current: List[Event],
         candidate: List[Event]) -> Tuple[List[Event], bool]:
    if candidate != current and probe(candidate):
        return candidate, True
    return current, False


def _reduce_times(events: List[Event], probe: _BudgetedTest
                  ) -> List[Event]:
    """Round event times to integers where the failure allows it."""
    current = events
    for index in range(len(current)):
        if probe.exhausted:
            break
        at = current[index]["at"]
        rounded = float(int(at))
        if rounded != at:
            current, _ = _try(probe, current,
                              _replace(current, index, at=rounded))
    return current


def _reduce_gaps(events: List[Event], probe: _BudgetedTest,
                 quantum: float) -> List[Event]:
    """Pull each lift toward its onset (shorter failing durations)."""
    current = events
    changed = True
    while changed and not probe.exhausted:
        changed = False
        for onset_index, lift_index in _pairs(current):
            onset_at = current[onset_index]["at"]
            lift_at = current[lift_index]["at"]
            gap = lift_at - onset_at
            if gap <= quantum:
                continue
            for target in (onset_at + max(quantum, gap / 2.0),
                           onset_at + quantum):
                if target >= lift_at:
                    continue
                current, moved = _try(
                    probe, current,
                    _replace(current, lift_index, at=target))
                if moved:
                    changed = True
                    break
    return current


def _reduce_targets(events: List[Event], probe: _BudgetedTest
                    ) -> List[Event]:
    """Drop nodes from partition groups and links from impairments."""
    current = events
    for index in range(len(current)):
        if probe.exhausted:
            break
        event = current[index]
        if event["kind"] == "partition":
            groups = event["groups"]
            for group_index, group in enumerate(groups):
                for node in list(group):
                    if len(current[index]["groups"][group_index]) <= 1:
                        break
                    slimmed = [list(g)
                               for g in current[index]["groups"]]
                    slimmed[group_index] = \
                        [n for n in slimmed[group_index] if n != node]
                    current, _ = _try(
                        probe, current,
                        _replace(current, index, groups=slimmed))
        elif event.get("links"):
            for pair in list(event["links"]):
                if len(current[index].get("links") or []) <= 1:
                    break
                slimmed_links = [list(p)
                                 for p in current[index]["links"]
                                 if list(p) != list(pair)]
                current, _ = _try(
                    probe, current,
                    _replace(current, index, links=slimmed_links))
    return current


def shrink_schedule(events: List[Event], test: Test,
                    budget: int = 400,
                    quantum: float = 0.25) -> Dict[str, Any]:
    """Minimize a failing event list; a JSON-safe shrink report.

    Phases: ddmin over the event list, then time rounding, onset→lift
    gap closing and per-event target reduction, repeated in that order
    until nothing improves or the test budget runs out.  The report
    carries the minimized events plus search statistics (probe count,
    event counts before/after, whether the budget was exhausted).
    """
    probe = _BudgetedTest(test, budget)
    before = len(events)
    current = [dict(event) for event in events]
    if not probe(current):
        return {"events": current, "reproduced": False,
                "events_before": before, "events_after": before,
                "tests_run": probe.tests_run, "budget": budget,
                "budget_exhausted": probe.exhausted}
    previous = None
    while previous != current and not probe.exhausted:
        previous = current
        current, _ = ddmin(current, probe)
        current = _reduce_times(current, probe)
        current = _reduce_gaps(current, probe, quantum)
        current = _reduce_targets(current, probe)
    return {"events": current, "reproduced": True,
            "events_before": before, "events_after": len(current),
            "tests_run": probe.tests_run, "budget": budget,
            "budget_exhausted": probe.exhausted}
