"""Deterministic fault injection and recovery (§2.3).

*"Reliability stems from the system as a whole"* — this package supplies
both halves of that claim: the machinery to *inject* failures
(:mod:`repro.faults.schedule`: timed node crashes, link cuts and flaps,
partitions, latency storms, loss bursts — all seeded, all
replay-checkable) and the machinery to *survive* them
(:mod:`repro.faults.policies`: backoff/deadline/circuit-breaker;
:mod:`repro.faults.detector`: phi-accrual adaptive suspicion;
:mod:`repro.faults.degrade`: graceful degradation of QoS and session
mode).  Chaos workloads live in :mod:`repro.faults.chaos` and register
in :data:`repro.analysis.workloads.WORKLOADS`.

Import note: :mod:`~repro.faults.detector`, :mod:`~repro.faults.degrade`
and :mod:`~repro.faults.chaos` are exposed lazily (PEP 562) because they
import the groups/sessions/node layers, which themselves import
:mod:`repro.net.transport` — and transport imports
:mod:`repro.faults.policies`.  Eager imports here would close that
cycle.
"""

from repro.faults.policies import (
    CircuitBreaker,
    CircuitOpenError,
    DeadlineBudget,
    FaultPolicies,
    RetryPolicy,
    fixed_retry,
)
from repro.faults.schedule import (
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    use_schedule_override,
)

#: Lazily imported name -> defining submodule.  The fuzz/oracle/shrink/
#: corpus stack is lazy for the same reason as the chaos workloads: it
#: reaches the workload registry, which pulls in the whole net/node
#: stack.
_LAZY = {
    "PhiAccrualDetector": "repro.faults.detector",
    "DegradationManager": "repro.faults.degrade",
    "DEGRADED": "repro.faults.degrade",
    "FULL_SERVICE": "repro.faults.degrade",
    "FuzzProfile": "repro.faults.fuzz",
    "ScheduleGenerator": "repro.faults.fuzz",
    "evaluate_schedule": "repro.faults.fuzz",
    "run_campaign": "repro.faults.fuzz",
    "ddmin": "repro.faults.shrink",
    "shrink_schedule": "repro.faults.shrink",
}

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadlineBudget",
    "DegradationManager",
    "DEGRADED",
    "FaultEvent",
    "FaultInjector",
    "FaultPolicies",
    "FaultSchedule",
    "FULL_SERVICE",
    "FuzzProfile",
    "PhiAccrualDetector",
    "RetryPolicy",
    "ScheduleGenerator",
    "ddmin",
    "evaluate_schedule",
    "fixed_retry",
    "run_campaign",
    "shrink_schedule",
    "use_schedule_override",
]


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            "module {!r} has no attribute {!r}".format(__name__, name))
    import importlib
    return getattr(importlib.import_module(module_name), name)
