"""Deterministic fault injection and recovery (§2.3).

*"Reliability stems from the system as a whole"* — this package supplies
both halves of that claim: the machinery to *inject* failures
(:mod:`repro.faults.schedule`: timed node crashes, link cuts and flaps,
partitions, latency storms, loss bursts — all seeded, all
replay-checkable) and the machinery to *survive* them
(:mod:`repro.faults.policies`: backoff/deadline/circuit-breaker;
:mod:`repro.faults.detector`: phi-accrual adaptive suspicion;
:mod:`repro.faults.degrade`: graceful degradation of QoS and session
mode).  Chaos workloads live in :mod:`repro.faults.chaos` and register
in :data:`repro.analysis.workloads.WORKLOADS`.

Import note: :mod:`~repro.faults.detector`, :mod:`~repro.faults.degrade`
and :mod:`~repro.faults.chaos` are exposed lazily (PEP 562) because they
import the groups/sessions/node layers, which themselves import
:mod:`repro.net.transport` — and transport imports
:mod:`repro.faults.policies`.  Eager imports here would close that
cycle.
"""

from repro.faults.policies import (
    CircuitBreaker,
    CircuitOpenError,
    DeadlineBudget,
    FaultPolicies,
    RetryPolicy,
    fixed_retry,
)
from repro.faults.schedule import (
    FaultEvent,
    FaultInjector,
    FaultSchedule,
)

#: Lazily imported name -> defining submodule.
_LAZY = {
    "PhiAccrualDetector": "repro.faults.detector",
    "DegradationManager": "repro.faults.degrade",
    "DEGRADED": "repro.faults.degrade",
    "FULL_SERVICE": "repro.faults.degrade",
}

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadlineBudget",
    "DegradationManager",
    "DEGRADED",
    "FaultEvent",
    "FaultInjector",
    "FaultPolicies",
    "FaultSchedule",
    "FULL_SERVICE",
    "PhiAccrualDetector",
    "RetryPolicy",
    "fixed_retry",
]


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            "module {!r} has no attribute {!r}".format(__name__, name))
    import importlib
    return getattr(importlib.import_module(module_name), name)
