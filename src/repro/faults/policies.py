"""Recovery policies: retry backoff, deadline budgets, circuit breaking.

The paper's §2.3 observation — *"reliability stems from the system as a
whole"* — means individual interactions must expect failure and recover
without destroying the collective activity.  This module supplies the
three standard recovery disciplines as small, deterministic objects:

* :class:`RetryPolicy` — exponential backoff with *deterministic* jitter
  (drawn from a named :class:`~repro.sim.rng.RandomStreams` stream, so
  the same experiment seed yields the same retry timing, run after run).
* :class:`DeadlineBudget` — a total-latency budget shared by every
  attempt of one logical operation; retrying stops when the next wait
  would overrun it.
* :class:`CircuitBreaker` — per-destination failure accounting with the
  classic closed → open → half-open lifecycle, driven entirely by the
  simulation clock.

:class:`FaultPolicies` bundles them for the opt-in wiring points
(:class:`~repro.net.transport.ReliableChannel`,
:meth:`RpcEndpoint.call <repro.net.transport.RpcEndpoint.call>`,
:meth:`Nucleus.invoke <repro.node.runtime.Nucleus.invoke>`).  Everything
defaults to "no policy installed", in which case the wrapped code paths
are byte-identical to their pre-fault behaviour.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.errors import SimulationError
from repro.obs.metrics import get_metrics


class RetryPolicy:
    """Exponential backoff with an optional cap and deterministic jitter.

    ``delay(attempt)`` returns the wait before retry number ``attempt``
    (0-based): ``base * multiplier**attempt``, clipped to ``cap`` and
    spread by ``jitter`` (a fraction in ``[0, 1)``; the draw comes from
    the supplied seeded ``rng`` so backoff timing replays exactly).
    ``multiplier=1.0`` with no jitter reproduces a fixed retry interval —
    the pre-policy behaviour of :class:`~repro.net.transport.ReliableChannel`.
    """

    def __init__(self, base: float = 0.2, multiplier: float = 2.0,
                 cap: Optional[float] = None, jitter: float = 0.0,
                 max_retries: int = 8,
                 rng: Optional[random.Random] = None) -> None:
        if base <= 0:
            raise SimulationError("backoff base must be positive")
        if multiplier < 1.0:
            raise SimulationError("backoff multiplier must be >= 1")
        if cap is not None and cap < base:
            raise SimulationError("backoff cap must be >= base")
        if not 0.0 <= jitter < 1.0:
            raise SimulationError("jitter must be a fraction in [0, 1)")
        if jitter > 0 and rng is None:
            raise SimulationError(
                "jittered backoff needs a seeded rng stream "
                "(RandomStreams(seed).stream(...)) to stay replayable")
        if max_retries < 0:
            raise SimulationError("max_retries must be non-negative")
        self.base = base
        self.multiplier = multiplier
        self.cap = cap
        self.jitter = jitter
        self.max_retries = max_retries
        self._rng = rng

    def delay(self, attempt: int) -> float:
        """The wait before 0-based retry ``attempt``."""
        delay = self.base * (self.multiplier ** attempt)
        if self.cap is not None:
            delay = min(delay, self.cap)
        if self.jitter > 0:
            # Symmetric spread around the nominal delay; the stream is
            # seeded by the experiment, so the sequence is replayable.
            delay *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return delay

    def __repr__(self) -> str:
        return "<RetryPolicy base={:g} x{:g} cap={} jitter={:g} max={}>".format(
            self.base, self.multiplier, self.cap, self.jitter,
            self.max_retries)


def fixed_retry(interval: float, max_retries: int) -> RetryPolicy:
    """The degenerate policy: a constant interval (legacy behaviour)."""
    return RetryPolicy(base=interval, multiplier=1.0,
                       max_retries=max_retries)


class DeadlineBudget:
    """A total-latency budget for one logical operation.

    Created at the start of the operation; each retry loop asks
    :meth:`allows` whether a further wait still fits.  Budgets make the
    retry/abort decision explicit instead of letting backoff series
    silently exceed what the caller (a human in a session) will wait.
    """

    def __init__(self, env, budget: float) -> None:
        if budget <= 0:
            raise SimulationError("deadline budget must be positive")
        self.env = env
        self.budget = budget
        self.started_at = env.now
        self.deadline = env.now + budget

    @property
    def remaining(self) -> float:
        """Seconds left before the deadline (may be negative)."""
        return self.deadline - self.env.now

    @property
    def exceeded(self) -> bool:
        return self.env.now >= self.deadline

    def allows(self, extra_wait: float = 0.0) -> bool:
        """Would now + ``extra_wait`` still land inside the budget?"""
        return self.env.now + extra_wait < self.deadline

    def __repr__(self) -> str:
        return "<DeadlineBudget {:.3g}s left of {:.3g}s>".format(
            self.remaining, self.budget)


#: Circuit breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class _BreakerState:
    __slots__ = ("state", "failures", "opened_at", "trial_inflight")

    def __init__(self) -> None:
        self.state = CLOSED
        self.failures = 0
        self.opened_at = 0.0
        self.trial_inflight = False


class CircuitBreaker:
    """Per-destination failure accounting with fail-fast behaviour.

    After ``failure_threshold`` consecutive failures to one destination
    the circuit *opens*: further calls are refused locally (fail fast,
    no network cost) until ``reset_timeout`` simulated seconds pass.
    The first call after that runs as a *half-open* trial: success
    closes the circuit, failure re-opens it for another timeout.

    State transitions land in the metrics registry
    (``breaker.opened`` / ``breaker.closed`` / ``breaker.rejected``
    counters, labelled by destination) so graceful-degradation
    experiments can read how often the breaker saved a caller.
    """

    def __init__(self, env, failure_threshold: int = 5,
                 reset_timeout: float = 30.0, name: str = "") -> None:
        if failure_threshold < 1:
            raise SimulationError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise SimulationError("reset_timeout must be positive")
        self.env = env
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.name = name
        self._states: Dict[str, _BreakerState] = {}
        self.rejected = 0

    def _state(self, dst: str) -> _BreakerState:
        state = self._states.get(dst)
        if state is None:
            state = self._states[dst] = _BreakerState()
        return state

    def state(self, dst: str) -> str:
        """The circuit state for ``dst`` (resolving open → half-open)."""
        state = self._state(dst)
        if state.state == OPEN and \
                self.env.now - state.opened_at >= self.reset_timeout:
            state.state = HALF_OPEN
            state.trial_inflight = False
        return state.state

    def allow(self, dst: str) -> bool:
        """May a call to ``dst`` proceed?  Counts rejections."""
        current = self.state(dst)
        state = self._state(dst)
        if current == CLOSED:
            return True
        if current == HALF_OPEN and not state.trial_inflight:
            state.trial_inflight = True
            return True
        self.rejected += 1
        get_metrics().counter("breaker.rejected", dst=dst).add()
        return False

    def record_success(self, dst: str) -> None:
        """A call to ``dst`` succeeded; close the circuit."""
        state = self._state(dst)
        if state.state != CLOSED:
            get_metrics().counter("breaker.closed", dst=dst).add()
        state.state = CLOSED
        state.failures = 0
        state.trial_inflight = False

    def record_failure(self, dst: str) -> None:
        """A call to ``dst`` failed; maybe open the circuit."""
        state = self._state(dst)
        if state.state == HALF_OPEN:
            # The trial failed: straight back to open.
            state.state = OPEN
            state.opened_at = self.env.now
            state.trial_inflight = False
            get_metrics().counter("breaker.opened", dst=dst).add()
            return
        state.failures += 1
        if state.state == CLOSED and \
                state.failures >= self.failure_threshold:
            state.state = OPEN
            state.opened_at = self.env.now
            get_metrics().counter("breaker.opened", dst=dst).add()

    def snapshot(self) -> Dict[str, str]:
        """Current per-destination states (stable key order)."""
        return {dst: self.state(dst) for dst in sorted(self._states)}

    def __repr__(self) -> str:
        return "<CircuitBreaker {} dests={} rejected={}>".format(
            self.name or "-", len(self._states), self.rejected)


class CircuitOpenError(SimulationError):
    """A call was refused locally because the destination's circuit is
    open (fail fast — the recent history says it would not succeed)."""


class FaultPolicies:
    """The bundle an invoker opts into: retry + deadline + breaker.

    All parts are optional; an absent part simply does not constrain the
    call.  One bundle may be shared by many callers (the breaker then
    aggregates failure history across them, which is the point).
    """

    def __init__(self, retry: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 deadline: Optional[float] = None) -> None:
        if deadline is not None and deadline <= 0:
            raise SimulationError("deadline must be positive")
        self.retry = retry
        self.breaker = breaker
        self.deadline = deadline

    def budget(self, env) -> Optional[DeadlineBudget]:
        """A fresh budget for one logical operation (None if unbounded)."""
        if self.deadline is None:
            return None
        return DeadlineBudget(env, self.deadline)

    def __repr__(self) -> str:
        return "<FaultPolicies retry={} breaker={} deadline={}>".format(
            self.retry is not None, self.breaker is not None, self.deadline)
