"""The fuzz corpus: shrunk reproducers as regression workloads.

Every failure the chaos-search engine finds (and shrinks) can be
serialized into a small JSON file — workload name, seed, the violated
oracle and the minimal :class:`~repro.faults.schedule.FaultSchedule` in
its ``to_dict`` form.  Files checked into the default corpus directory
(``corpus/fuzz/`` at the repo root) are auto-registered in
:data:`repro.analysis.workloads.WORKLOADS` as ``fuzz-reg-<id>``
workloads: each runs the base workload under the stored schedule and
reports whether the stored oracle still fires.  Regressions therefore
ride every existing determinism gate (replay digests, flight-recorder
on/off identity) for free, and ``python -m repro.faults.corpus verify``
asserts they still *reproduce*.

Entry IDs are content hashes, so re-finding the same minimal schedule
is idempotent and file names are stable across machines.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
from typing import Any, Callable, Dict, List, Optional

from repro.errors import SimulationError
from repro.faults.schedule import FaultSchedule

#: Version tag of the corpus entry format.
SCHEMA = "repro-fuzz/1"

#: Workload-name prefix for registered corpus regressions.
REGISTRY_PREFIX = "fuzz-reg-"

_REPO_ROOT = os.path.normpath(os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "..", ".."))


def default_corpus_dir() -> str:
    """The checked-in corpus directory (env-overridable for tests)."""
    return os.environ.get(
        "REPRO_FUZZ_CORPUS",
        os.path.join(_REPO_ROOT, "corpus", "fuzz"))


def entry_id(workload: str, workload_seed: int, oracle: str,
             schedule: Dict[str, Any]) -> str:
    """A stable content hash naming one reproducer."""
    canonical = json.dumps(
        {"workload": workload, "workload_seed": workload_seed,
         "oracle": oracle, "schedule": schedule},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def make_entry(workload: str, workload_seed: int, oracle: str,
               schedule: Dict[str, Any], message: str,
               campaign: Optional[Dict[str, Any]] = None
               ) -> Dict[str, Any]:
    """Build a corpus entry dict (validated, ID'd, JSON-safe)."""
    FaultSchedule.from_dict(schedule)  # validate before serializing
    schedule = json.loads(json.dumps(schedule))  # detach from caller
    entry = {
        "schema": SCHEMA,
        "id": entry_id(workload, workload_seed, oracle, schedule),
        "workload": workload,
        "workload_seed": workload_seed,
        "oracle": oracle,
        "message": message,
        "schedule": schedule,
    }
    if campaign is not None:
        entry["campaign"] = {key: campaign[key]
                             for key in sorted(campaign)}
    return entry


def write_entry(directory: str, entry: Dict[str, Any]) -> str:
    """Write ``entry`` into ``directory``; returns the file path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "fuzz-{}.json".format(entry["id"]))
    with open(path, "w") as handle:
        json.dump(entry, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_entry(path: str) -> Dict[str, Any]:
    """Load and validate one corpus file (schema + schedule)."""
    with open(path) as handle:
        entry = json.load(handle)
    if not isinstance(entry, dict) or entry.get("schema") != SCHEMA:
        raise SimulationError(
            "{}: not a {} corpus entry".format(path, SCHEMA))
    for field in ("id", "workload", "workload_seed", "oracle",
                  "schedule"):
        if field not in entry:
            raise SimulationError(
                "{}: missing field {!r}".format(path, field))
    FaultSchedule.from_dict(entry["schedule"])
    return entry


def load_corpus(directory: Optional[str] = None
                ) -> List[Dict[str, Any]]:
    """Every entry in ``directory`` (default corpus), sorted by ID."""
    directory = default_corpus_dir() if directory is None else directory
    if not os.path.isdir(directory):
        return []
    entries = []
    for name in sorted(os.listdir(directory)):
        if name.endswith(".json"):
            entries.append(load_entry(os.path.join(directory, name)))
    return sorted(entries, key=lambda entry: entry["id"])


def _make_regression(entry: Dict[str, Any]
                     ) -> Callable[..., Dict[str, Any]]:
    def regression_workload(seed: int = 31) -> Dict[str, Any]:
        # Imported at call time: the fuzz engine imports the workload
        # registry, which imports this module while building itself.
        from repro.faults.fuzz import evaluate_schedule

        report = evaluate_schedule(entry["workload"], seed,
                                   entry["schedule"], runs=2)
        violated = [v["oracle"] for v in report["violations"]]
        return {
            "workload": REGISTRY_PREFIX + entry["id"],
            "base": entry["workload"],
            "seed": seed,
            "oracle": entry["oracle"],
            "events": len(entry["schedule"]["events"]),
            "violations": violated,
            "reproduced": entry["oracle"] in violated,
            "digests": report["digests"],
        }

    regression_workload.__name__ = \
        "fuzz_regression_" + entry["id"].replace("-", "_")
    regression_workload.__doc__ = \
        "Corpus reproducer {} against {} (oracle {}).".format(
            entry["id"], entry["workload"], entry["oracle"])
    return regression_workload


def corpus_workloads(directory: Optional[str] = None
                     ) -> Dict[str, Callable[..., Dict[str, Any]]]:
    """``fuzz-reg-<id>`` workload functions for every corpus entry."""
    registry: Dict[str, Callable[..., Dict[str, Any]]] = {}
    for entry in load_corpus(directory):
        registry[REGISTRY_PREFIX + entry["id"]] = \
            _make_regression(entry)
    return registry


def verify_entry(entry: Dict[str, Any]) -> Dict[str, Any]:
    """Re-run one reproducer at its stored seed; a verdict record."""
    from repro.faults.fuzz import evaluate_schedule

    report = evaluate_schedule(entry["workload"],
                               entry["workload_seed"],
                               entry["schedule"], runs=2)
    violated = [v["oracle"] for v in report["violations"]]
    return {
        "id": entry["id"],
        "workload": entry["workload"],
        "oracle": entry["oracle"],
        "reproduced": entry["oracle"] in violated,
        "deterministic": len(set(report["digests"])) == 1,
        "violations": violated,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.corpus",
        description="List or re-verify the fuzz reproducer corpus.")
    parser.add_argument("command", choices=("list", "verify"),
                        help="list entries, or re-run each reproducer "
                             "and assert it still fails its oracle "
                             "deterministically")
    parser.add_argument("--dir", default=None,
                        help="corpus directory (default corpus/fuzz)")
    options = parser.parse_args(argv)
    entries = load_corpus(options.dir)
    if options.command == "list":
        for entry in entries:
            print("{}  {}  {}  {} event(s)".format(
                entry["id"], entry["workload"], entry["oracle"],
                len(entry["schedule"]["events"])))
        print("{} corpus entr{}".format(
            len(entries), "y" if len(entries) == 1 else "ies"))
        return 0
    failures = 0
    for entry in entries:
        verdict = verify_entry(entry)
        ok = verdict["reproduced"] and verdict["deterministic"]
        failures += 0 if ok else 1
        print("{}  {}  {}  reproduced={} deterministic={}".format(
            "OK " if ok else "BAD", verdict["id"], verdict["oracle"],
            verdict["reproduced"], verdict["deterministic"]))
    if not entries:
        print("empty corpus: nothing to verify")
        return 0
    if failures:
        print("{} of {} reproducers no longer fail their oracle".format(
            failures, len(entries)))
        return 1
    print("all {} reproducers still reproduce".format(len(entries)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
