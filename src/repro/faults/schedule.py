"""Declarative, deterministic fault schedules and their injector.

A :class:`FaultSchedule` is a plain list of timed :class:`FaultEvent`
records — node crashes and restarts, link cuts, flaps, network
partitions, latency storms and loss bursts — built through chainable
helper methods.  A :class:`FaultInjector` executes the schedule against
a :class:`~repro.net.network.Network` as one simulation process.

Determinism is the design centre: events fire at declared simulated
times in declared order, flaps and timed impairments are expanded into
explicit event pairs when the schedule is *built* (not when it runs),
and the whole schedule serialises via :meth:`FaultSchedule.to_dict` so a
replay digest covers exactly the faults that were injected.  The same
seed plus the same schedule therefore yields a byte-identical run, and
with no schedule installed nothing in this module ever executes.

Every injected event emits a ``fault.<kind>`` span and a
``fault.injected`` counter through :mod:`repro.obs`, so chaos runs are
first-class citizens of the tracing/report pipeline.
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer

#: Event kinds understood by the injector.
KINDS = (
    "link-down", "link-up",
    "partition", "heal",
    "node-crash", "node-restart",
    "latency-storm", "latency-calm",
    "loss-burst", "loss-calm",
)

#: Required parameter names (beyond ``at``/``kind``) per event kind,
#: used by :meth:`FaultEvent.from_dict` validation.  Optional keys are
#: parenthesised in the error text only, never required.
_REQUIRED_PARAMS = {
    "link-down": ("a", "b"),
    "link-up": ("a", "b"),
    "partition": ("name", "groups"),
    "heal": ("name",),
    "node-crash": ("node",),
    "node-restart": ("node",),
    "latency-storm": ("scale", "links"),
    "latency-calm": ("scale", "links"),
    "loss-burst": ("extra_loss", "links"),
    "loss-calm": ("extra_loss", "links"),
}

#: Lifting counterpart of each "onset" kind (used by balance checks,
#: the fuzzer's generator and the shrinker's gap reduction).
LIFT_KINDS = {
    "link-down": "link-up",
    "partition": "heal",
    "node-crash": "node-restart",
    "latency-storm": "latency-calm",
    "loss-burst": "loss-calm",
}


class FaultEvent:
    """One timed fault: ``(at, kind, params)`` with a stable tie-break."""

    __slots__ = ("at", "kind", "params", "seq")

    def __init__(self, at: float, kind: str,
                 params: Dict[str, Any], seq: int) -> None:
        if at < 0:
            raise SimulationError("fault time must be non-negative")
        if kind not in KINDS:
            raise SimulationError("unknown fault kind: " + kind)
        self.at = at
        self.kind = kind
        self.params = params
        self.seq = seq

    @property
    def sort_key(self) -> Tuple[float, int]:
        return (self.at, self.seq)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe record (feeds the replay digest)."""
        record: Dict[str, Any] = {"at": self.at, "kind": self.kind}
        record.update({key: self.params[key]
                       for key in sorted(self.params)})
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any], seq: int = 0
                  ) -> "FaultEvent":
        """The inverse of :meth:`to_dict`, validating as it parses.

        Raises :class:`~repro.errors.SimulationError` naming the
        offending event (``event <seq> (<kind> @<at>): <problem>``) so a
        bad corpus file points straight at the record to fix.
        """
        if not isinstance(record, dict):
            raise SimulationError(
                "event {}: expected an object, got {}".format(
                    seq, type(record).__name__))
        label = "event {} ({} @{})".format(
            seq, record.get("kind", "?"), record.get("at", "?"))
        at = record.get("at")
        if not isinstance(at, (int, float)) or isinstance(at, bool) \
                or at < 0:
            raise SimulationError(
                label + ": 'at' must be a non-negative number")
        kind = record.get("kind")
        if kind not in KINDS:
            raise SimulationError(
                "{}: unknown kind {!r} (known: {})".format(
                    label, kind, ", ".join(KINDS)))
        params = {key: value for key, value in record.items()
                  if key not in ("at", "kind")}
        for name in _REQUIRED_PARAMS[kind]:
            if name not in params:
                raise SimulationError(
                    "{}: missing required param {!r}".format(label, name))
        _validate_params(label, kind, params)
        return cls(float(at), kind, params, seq)

    def __repr__(self) -> str:
        return "<FaultEvent {} @{:g} {}>".format(
            self.kind, self.at, self.params)


class FaultSchedule:
    """A buildable, serialisable list of fault events.

    Helper methods append events; durations and flap counts expand into
    explicit paired events immediately, so the executed sequence is
    fully visible in :meth:`to_dict` before the run starts.
    """

    def __init__(self) -> None:
        self.events: List[FaultEvent] = []
        self._seq = 0

    def _add(self, at: float, kind: str, **params: Any) -> "FaultSchedule":
        self.events.append(FaultEvent(at, kind, params, self._seq))
        self._seq += 1
        return self

    # -- links --------------------------------------------------------------

    def link_down(self, at: float, a: str, b: str,
                  up_at: Optional[float] = None) -> "FaultSchedule":
        """Cut the ``a``–``b`` link (optionally restoring at ``up_at``)."""
        self._add(at, "link-down", a=a, b=b)
        if up_at is not None:
            if up_at <= at:
                raise SimulationError("up_at must be after at")
            self._add(up_at, "link-up", a=a, b=b)
        return self

    def link_up(self, at: float, a: str, b: str) -> "FaultSchedule":
        """Restore the ``a``–``b`` link."""
        return self._add(at, "link-up", a=a, b=b)

    def link_flap(self, at: float, a: str, b: str, count: int,
                  period: float) -> "FaultSchedule":
        """``count`` down/up cycles of length ``period`` (half down,
        half up), starting at ``at`` — expanded into explicit events."""
        if count < 1:
            raise SimulationError("flap count must be >= 1")
        if period <= 0:
            raise SimulationError("flap period must be positive")
        for i in range(count):
            start = at + i * period
            self._add(start, "link-down", a=a, b=b, flap=i)
            self._add(start + period / 2.0, "link-up", a=a, b=b, flap=i)
        return self

    # -- partitions ---------------------------------------------------------

    def partition(self, at: float, groups: Sequence[Sequence[str]],
                  name: str = "partition",
                  heal_at: Optional[float] = None) -> "FaultSchedule":
        """Split the network: every link crossing between two of the
        ``groups`` goes down.  ``heal(name)`` (or ``heal_at``) reverses
        exactly the links this partition cut."""
        if len(groups) < 2:
            raise SimulationError("a partition needs at least two groups")
        self._add(at, "partition", name=name,
                  groups=[sorted(group) for group in groups])
        if heal_at is not None:
            if heal_at <= at:
                raise SimulationError("heal_at must be after at")
            self._add(heal_at, "heal", name=name)
        return self

    def heal(self, at: float, name: str = "partition") -> "FaultSchedule":
        """Restore the links cut by the named partition."""
        return self._add(at, "heal", name=name)

    # -- nodes --------------------------------------------------------------

    def node_crash(self, at: float, node: str,
                   restart_at: Optional[float] = None) -> "FaultSchedule":
        """Fail-stop ``node`` from the network's point of view: every
        adjacent link goes down (its local processes keep running — their
        packets simply stop arriving, which is what a remote observer of
        a crashed node actually sees)."""
        self._add(at, "node-crash", node=node)
        if restart_at is not None:
            if restart_at <= at:
                raise SimulationError("restart_at must be after at")
            self._add(restart_at, "node-restart", node=node)
        return self

    def node_restart(self, at: float, node: str) -> "FaultSchedule":
        """Bring a crashed node's links back up."""
        return self._add(at, "node-restart", node=node)

    # -- impairments --------------------------------------------------------

    def latency_storm(self, at: float, scale: float, duration: float,
                      links: Optional[Sequence[Tuple[str, str]]] = None
                      ) -> "FaultSchedule":
        """Multiply propagation latency by ``scale`` on ``links`` (all
        links when ``None``) for ``duration`` seconds."""
        if scale <= 0:
            raise SimulationError("latency scale must be positive")
        if duration <= 0:
            raise SimulationError("storm duration must be positive")
        targets = self._targets(links)
        self._add(at, "latency-storm", scale=scale, links=targets)
        self._add(at + duration, "latency-calm", scale=scale,
                  links=targets)
        return self

    def loss_burst(self, at: float, extra_loss: float, duration: float,
                   links: Optional[Sequence[Tuple[str, str]]] = None
                   ) -> "FaultSchedule":
        """Add ``extra_loss`` drop probability on ``links`` (all when
        ``None``) for ``duration`` seconds."""
        if not 0 < extra_loss < 1:
            raise SimulationError("extra_loss must be in (0, 1)")
        if duration <= 0:
            raise SimulationError("burst duration must be positive")
        targets = self._targets(links)
        self._add(at, "loss-burst", extra_loss=extra_loss, links=targets)
        self._add(at + duration, "loss-calm", extra_loss=extra_loss,
                  links=targets)
        return self

    @staticmethod
    def _targets(links: Optional[Sequence[Tuple[str, str]]]
                 ) -> Optional[List[List[str]]]:
        if links is None:
            return None
        return [sorted((a, b)) for a, b in links]

    # -- introspection ------------------------------------------------------

    def ordered(self) -> List[FaultEvent]:
        """Events in execution order (time, then declaration order)."""
        return sorted(self.events, key=lambda event: event.sort_key)

    def to_dict(self) -> Dict[str, Any]:
        """A canonical JSON-safe form for replay digests."""
        return {"events": [event.to_dict() for event in self.ordered()]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSchedule":
        """Rebuild a schedule from its :meth:`to_dict` form.

        Round-trip stable: ``s.from_dict(d).to_dict() == d`` for any
        canonical ``d`` (events already in execution order).  Validation
        errors name the offending event.
        """
        if not isinstance(data, dict) or "events" not in data:
            raise SimulationError(
                "schedule must be an object with an 'events' list")
        events = data["events"]
        if not isinstance(events, list):
            raise SimulationError("'events' must be a list")
        schedule = cls()
        for index, record in enumerate(events):
            schedule.events.append(FaultEvent.from_dict(record, index))
            schedule._seq = index + 1
        return schedule

    def balanced(self) -> bool:
        """True when every onset event has a matching lift after it.

        Link cuts need a later ``link-up`` for the same pair, crashes a
        restart, partitions a heal, impairments their calm — the
        precondition of the fuzzer's liveness/recovery oracles ("after
        everything healed, the system must converge").
        """
        pending: Dict[Tuple[Any, ...], int] = {}
        for event in self.ordered():
            kind = event.kind
            if kind in LIFT_KINDS:
                pending[_pair_key(kind, event.params)] = \
                    pending.get(_pair_key(kind, event.params), 0) + 1
            else:
                for onset, lift in LIFT_KINDS.items():
                    if kind == lift:
                        key = _pair_key(onset, event.params)
                        if pending.get(key, 0) > 0:
                            pending[key] -= 1
                        break
        return not any(count > 0 for count in pending.values())

    def last_lift_at(self) -> float:
        """Time of the last lifting event (0.0 for an empty schedule)."""
        lifts = [event.at for event in self.events
                 if event.kind in LIFT_KINDS.values()]
        return max(lifts) if lifts else 0.0

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return "<FaultSchedule events={}>".format(len(self.events))


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _validate_params(label: str, kind: str, params: Dict[str, Any]) -> None:
    """Per-kind parameter validation for :meth:`FaultEvent.from_dict`."""
    def fail(problem: str) -> None:
        raise SimulationError("{}: {}".format(label, problem))

    for name in ("a", "b", "node", "name"):
        if name in params and not isinstance(params[name], str):
            fail("param {!r} must be a string".format(name))
    if kind == "partition":
        groups = params["groups"]
        if not isinstance(groups, list) or len(groups) < 2:
            fail("'groups' must be a list of at least two groups")
        for group in groups:
            if not isinstance(group, list) or not group \
                    or not all(isinstance(node, str) for node in group):
                fail("every partition group must be a non-empty "
                     "list of node names")
    if "scale" in params and (not _is_number(params["scale"])
                              or params["scale"] <= 0):
        fail("'scale' must be a positive number")
    if "extra_loss" in params \
            and (not _is_number(params["extra_loss"])
                 or not 0 < params["extra_loss"] < 1):
        fail("'extra_loss' must be a number in (0, 1)")
    if "links" in params and params["links"] is not None:
        links = params["links"]
        if not isinstance(links, list):
            fail("'links' must be null (all links) or a list of pairs")
        for pair in links:
            if not isinstance(pair, list) or len(pair) != 2 \
                    or not all(isinstance(end, str) for end in pair):
                fail("every link target must be a [a, b] pair "
                     "of node names")
    if "flap" in params and not isinstance(params["flap"], int):
        fail("'flap' must be an integer cycle index")


def _canon_links(links: Any) -> Any:
    if links is None:
        return None
    return tuple(tuple(pair) for pair in links)


def _pair_key(onset_kind: str, params: Dict[str, Any]) -> Tuple[Any, ...]:
    """The identity an onset shares with its lifting counterpart."""
    if onset_kind == "link-down":
        return ("link",) + tuple(sorted((params["a"], params["b"])))
    if onset_kind == "partition":
        return ("partition", params["name"])
    if onset_kind == "node-crash":
        return ("node", params["node"])
    if onset_kind == "latency-storm":
        return ("latency", params["scale"], _canon_links(params["links"]))
    return ("loss", params["extra_loss"], _canon_links(params["links"]))


#: Process-default schedule override: when set, every new
#: :class:`FaultInjector` passes ``(network, schedule)`` through the
#: factory and executes what it returns instead.  This is the fuzzer's
#: injection point — a campaign swaps a workload's hand-written
#: schedule for a generated candidate without the workload knowing.
_schedule_override: Optional[Callable[..., "FaultSchedule"]] = None


def get_schedule_override() -> Optional[Callable[..., "FaultSchedule"]]:
    """The active override factory (``None`` outside a fuzz campaign)."""
    return _schedule_override


def set_schedule_override(
        factory: Optional[Callable[..., "FaultSchedule"]]
) -> Optional[Callable[..., "FaultSchedule"]]:
    """Install ``factory`` as the override; returns the previous one."""
    global _schedule_override
    previous = _schedule_override
    _schedule_override = factory
    return previous


@contextlib.contextmanager
def use_schedule_override(factory: Callable[..., "FaultSchedule"]):
    """Scope ``factory`` as the schedule override, restoring on exit."""
    previous = set_schedule_override(factory)
    try:
        yield factory
    finally:
        set_schedule_override(previous)


class FaultInjector:
    """Executes a :class:`FaultSchedule` against a network.

    Link state is reference-counted: a link cut by both a partition and
    a node crash stays down until *both* faults lift, so overlapping
    faults compose instead of cancelling.  Every executed event lands in
    :attr:`log` (JSON-safe, for workload results), emits a
    ``fault.<kind>`` span and counts in ``fault.injected``.

    ``on_fault`` callbacks (added via :meth:`add_listener`) let a
    workload react to injections — e.g. start rejoin after a ``heal``.
    """

    def __init__(self, env, network, schedule: FaultSchedule,
                 name: str = "fault-injector") -> None:
        self.env = env
        self.network = network
        override = get_schedule_override()
        if override is not None:
            schedule = override(network, schedule)
        self.schedule = schedule
        self.name = name
        self.log: List[Dict[str, Any]] = []
        self._down_counts: Dict[Tuple[str, str], int] = {}
        self._partitions: Dict[str, List[Tuple[str, str]]] = {}
        self._crashed: Dict[str, List[Tuple[str, str]]] = {}
        self._listeners: List[Callable[[FaultEvent], None]] = []
        self.process = env.process(self._run(), name=name)

    def add_listener(self, callback: Callable[[FaultEvent], None]) -> None:
        """Call ``callback(event)`` after each event executes."""
        self._listeners.append(callback)

    @property
    def links_down(self) -> int:
        """Links currently held down by the injector."""
        return sum(1 for count in self._down_counts.values() if count > 0)

    # -- internals ----------------------------------------------------------

    def _run(self):
        tracer = get_tracer()
        metrics = get_metrics()
        for event in self.schedule.ordered():
            if event.at > self.env.now:
                yield self.env.timeout(event.at - self.env.now)
            span = tracer.start_span(
                "fault." + event.kind, at=self.env.now,
                injector=self.name, **_span_attrs(event))
            affected = self._execute(event)
            metrics.counter("fault.injected", kind=event.kind).add()
            metrics.gauge("fault.links_down").set(
                self.links_down, at=self.env.now)
            span.set_attribute("links_affected", affected)
            span.finish(at=self.env.now)
            entry = {"at": self.env.now, "kind": event.kind,
                     "links_affected": affected}
            entry.update(_span_attrs(event))
            self.log.append(entry)
            for listener in self._listeners:
                listener(event)

    def _execute(self, event: FaultEvent) -> int:
        kind = event.kind
        params = event.params
        if kind == "link-down":
            return self._down([(params["a"], params["b"])])
        if kind == "link-up":
            return self._up([(params["a"], params["b"])])
        if kind == "partition":
            crossing = self._crossing_links(params["groups"])
            self._partitions[params["name"]] = crossing
            return self._down(crossing)
        if kind == "heal":
            crossing = self._partitions.pop(params["name"], [])
            return self._up(crossing)
        if kind == "node-crash":
            adjacent = self._adjacent_links(params["node"])
            self._crashed[params["node"]] = adjacent
            return self._down(adjacent)
        if kind == "node-restart":
            adjacent = self._crashed.pop(params["node"], [])
            return self._up(adjacent)
        if kind == "latency-storm":
            return self._impair(params["links"],
                                latency_scale=params["scale"])
        if kind == "latency-calm":
            return self._relieve(params["links"],
                                 latency_scale=params["scale"])
        if kind == "loss-burst":
            return self._impair(params["links"],
                                extra_loss=params["extra_loss"])
        if kind == "loss-calm":
            return self._relieve(params["links"],
                                 extra_loss=params["extra_loss"])
        raise SimulationError("unhandled fault kind: " + kind)

    # -- link-state bookkeeping ---------------------------------------------

    def _key(self, a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a < b else (b, a)

    def _down(self, pairs: Sequence[Tuple[str, str]]) -> int:
        topology = self.network.topology
        for a, b in pairs:
            key = self._key(a, b)
            self._down_counts[key] = self._down_counts.get(key, 0) + 1
            topology.link_between(a, b).set_up(False)
        if pairs:
            topology.invalidate_routes()
        return len(pairs)

    def _up(self, pairs: Sequence[Tuple[str, str]]) -> int:
        topology = self.network.topology
        for a, b in pairs:
            key = self._key(a, b)
            count = self._down_counts.get(key, 0)
            if count <= 1:
                self._down_counts.pop(key, None)
                topology.link_between(a, b).set_up(True)
            else:
                self._down_counts[key] = count - 1
        if pairs:
            topology.invalidate_routes()
        return len(pairs)

    def _impair(self, targets, latency_scale: float = 1.0,
                extra_loss: float = 0.0) -> int:
        links = self._resolve(targets)
        for link in links:
            link.impair(latency_scale=latency_scale,
                        extra_loss=extra_loss)
        return len(links)

    def _relieve(self, targets, latency_scale: float = 1.0,
                 extra_loss: float = 0.0) -> int:
        links = self._resolve(targets)
        for link in links:
            link.relieve(latency_scale=latency_scale,
                         extra_loss=extra_loss)
        return len(links)

    def _resolve(self, targets) -> List[Any]:
        if targets is None:
            return sorted(self.network.topology.links(),
                          key=lambda link: (link.a, link.b))
        return [self.network.topology.link_between(a, b)
                for a, b in targets]

    def _crossing_links(self, groups: Sequence[Sequence[str]]
                        ) -> List[Tuple[str, str]]:
        membership: Dict[str, int] = {}
        for index, group in enumerate(groups):
            for node in group:
                if node in membership:
                    raise SimulationError(
                        "{} appears in two partition groups".format(node))
                membership[node] = index
        crossing: List[Tuple[str, str]] = []
        for link in sorted(self.network.topology.links(),
                           key=lambda link: (link.a, link.b)):
            side_a = membership.get(link.a)
            side_b = membership.get(link.b)
            if side_a is not None and side_b is not None \
                    and side_a != side_b:
                crossing.append((link.a, link.b))
        return crossing

    def _adjacent_links(self, node: str) -> List[Tuple[str, str]]:
        topology = self.network.topology
        return [(node, peer) if node < peer else (peer, node)
                for peer in sorted(topology.neighbours(node))]

    def __repr__(self) -> str:
        return "<FaultInjector {} events={} links_down={}>".format(
            self.name, len(self.schedule), self.links_down)


def _span_attrs(event: FaultEvent) -> Dict[str, Any]:
    """Small, JSON-safe span/log attributes for one event."""
    attrs: Dict[str, Any] = {}
    for key in sorted(event.params):
        value = event.params[key]
        if key == "groups":
            attrs["groups"] = "|".join(",".join(g) for g in value)
        elif key == "links":
            attrs["links"] = "all" if value is None else len(value)
        elif key == "name":
            # Avoid colliding with start_span's positional span name.
            attrs["fault_name"] = value
        else:
            attrs[key] = value
    return attrs
