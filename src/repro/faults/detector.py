"""Phi-accrual adaptive failure detection.

The fixed-timeout rule in :mod:`repro.groups.failure` answers "is this
member dead?" with a boolean derived from one constant.  Accrual
detectors (Hayashibara et al., "The phi accrual failure detector", SRDS
2004) instead output a *suspicion level* phi that grows continuously as
silence extends beyond what the observed heartbeat arrival distribution
predicts:

    phi(t) = -log10( P(next heartbeat takes longer than t) )

with the tail probability taken from a normal fit over a sliding window
of recent inter-arrival times.  phi = 1 means roughly a 10% chance the
member is actually alive, phi = 3 roughly 0.1%.  Because the window
adapts, a latency storm that stretches *every* arrival also stretches
the fitted distribution — the detector slows down instead of producing
a burst of false suspicions, exactly the §2.3 property that group
reliability should degrade gracefully rather than collapse.

:class:`PhiAccrualDetector` implements the
:class:`~repro.groups.failure.HeartbeatMonitor` strategy interface
(``watch`` / ``forget`` / ``observe`` / ``suspect``), so it drops into
:class:`~repro.groups.failure.MonitoredMembership` via the ``strategy``
argument.  Everything is driven by the simulation clock and plain
arithmetic — no randomness, so runs replay exactly.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.obs.metrics import get_metrics

#: Floor on the fitted standard deviation, as a fraction of the mean
#: interval — keeps phi finite when arrivals are metronome-regular.
MIN_STD_FRACTION = 0.1


class _ArrivalWindow:
    """A bounded window of heartbeat inter-arrival intervals."""

    __slots__ = ("intervals", "max_samples", "last_arrival")

    def __init__(self, max_samples: int) -> None:
        self.intervals: List[float] = []
        self.max_samples = max_samples
        self.last_arrival: Optional[float] = None

    def add_arrival(self, now: float) -> None:
        if self.last_arrival is not None:
            self.intervals.append(now - self.last_arrival)
            if len(self.intervals) > self.max_samples:
                self.intervals.pop(0)
        self.last_arrival = now

    def mean(self) -> float:
        return sum(self.intervals) / len(self.intervals)

    def std(self) -> float:
        mean = self.mean()
        variance = sum((x - mean) ** 2 for x in self.intervals) \
            / len(self.intervals)
        return math.sqrt(variance)


class PhiAccrualDetector:
    """An accrual suspicion strategy for :class:`HeartbeatMonitor`.

    Parameters
    ----------
    threshold:
        Suspect when phi reaches this value (8.0 is the literature's
        conservative default; lower reacts faster, falsely suspects
        more).
    window:
        How many recent inter-arrival intervals feed the normal fit.
    min_samples:
        Before this many intervals arrive the detector *bootstraps*:
        silence is judged against ``bootstrap_interval`` with the same
        phi formula, so a member that never heartbeats at all (cold
        start) is still eventually suspected.
    bootstrap_interval:
        The assumed mean interval during bootstrap.
    """

    def __init__(self, threshold: float = 8.0, window: int = 100,
                 min_samples: int = 3,
                 bootstrap_interval: float = 1.0) -> None:
        if threshold <= 0:
            raise SimulationError("phi threshold must be positive")
        if window < 2:
            raise SimulationError("window must hold at least 2 samples")
        if min_samples < 2:
            raise SimulationError("min_samples must be >= 2")
        if bootstrap_interval <= 0:
            raise SimulationError("bootstrap_interval must be positive")
        self.threshold = threshold
        self.window = window
        self.min_samples = min_samples
        self.bootstrap_interval = bootstrap_interval
        self._windows: Dict[str, _ArrivalWindow] = {}

    # -- strategy interface -------------------------------------------------

    def watch(self, member: str, now: float) -> None:
        """Start observing ``member`` (fresh window, watch time as the
        first pseudo-arrival so cold-start silence is measurable)."""
        window = _ArrivalWindow(self.window)
        window.last_arrival = now
        self._windows[member] = window

    def forget(self, member: str) -> None:
        self._windows.pop(member, None)

    def observe(self, member: str, now: float) -> None:
        window = self._windows.get(member)
        if window is None:
            window = _ArrivalWindow(self.window)
            self._windows[member] = window
        window.add_arrival(now)

    def suspect(self, member: str, silent_for: float, now: float) -> bool:
        phi = self.phi(member, now)
        if phi >= self.threshold:
            get_metrics().counter("detector.suspicions",
                                  member=member).add()
            return True
        return False

    # -- phi ----------------------------------------------------------------

    def phi(self, member: str, now: float) -> float:
        """The current suspicion level for ``member``."""
        window = self._windows.get(member)
        if window is None or window.last_arrival is None:
            return 0.0
        elapsed = now - window.last_arrival
        if elapsed <= 0:
            return 0.0
        if len(window.intervals) < self.min_samples:
            mean = self.bootstrap_interval
            std = mean * MIN_STD_FRACTION
        else:
            mean = window.mean()
            std = max(window.std(), mean * MIN_STD_FRACTION)
        return _phi(elapsed, mean, std)

    def intervals_observed(self, member: str) -> int:
        """How many inter-arrival samples back the fit for ``member``."""
        window = self._windows.get(member)
        return 0 if window is None else len(window.intervals)

    def __repr__(self) -> str:
        return "<PhiAccrualDetector threshold={:g} members={}>".format(
            self.threshold, len(self._windows))


def _phi(elapsed: float, mean: float, std: float) -> float:
    """phi = -log10 of the normal upper-tail probability of ``elapsed``.

    Uses ``erfc`` for a numerically stable far tail (the interesting
    regime: a member many standard deviations overdue).
    """
    z = (elapsed - mean) / (std * math.sqrt(2.0))
    tail = 0.5 * math.erfc(z)
    if tail <= 0.0:
        # Beyond double precision: the member is overwhelmingly overdue.
        return float("inf")
    return -math.log10(tail)
