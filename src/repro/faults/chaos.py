"""Chaos workloads: injected faults against the full collaboration stack.

Two replayable workloads, registered in
:data:`repro.analysis.workloads.WORKLOADS` so the replay checker, the
races CLI and the profiler all see them:

* ``partition-recovery`` — a four-member session (floor control, causal
  group, QoS-monitored media flow) across a two-site WAN.  A scheduled
  partition splits the sites; the phi-accrual detector suspects the far
  members and drives view changes, the degradation manager reclaims the
  suspected holder's floor, sheds the media contract toward its minimum
  and drops the session to asynchronous mode when the SLO burn alert
  fires; after the heal the members rejoin, the alert clears and full
  service is restored.  The result captures the whole arc: view history,
  suspicion times, SLO fire/clear, degradation log, recovery latency.
* ``flaky-links`` — a client invoking through link flaps, a loss burst
  and a latency storm, protected by the full recovery-policy bundle
  (exponential backoff with deterministic jitter, deadline budget,
  per-destination circuit breaker) plus a backoff-driven
  :class:`~repro.net.transport.ReliableChannel`.  Traced under a head
  sampler *with tail-based sampling*, so error traces survive the head
  drop — the result counts the rescued spans.

Both are pure functions of the seed: every random draw comes from a
named :class:`~repro.sim.RandomStreams` stream and every fault fires
from a declarative :class:`~repro.faults.schedule.FaultSchedule`, so
``python -m repro.analysis.replay`` digest-checks them.
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict

from repro.faults.degrade import DegradationManager
from repro.faults.detector import PhiAccrualDetector
from repro.faults.policies import (
    CircuitBreaker,
    FaultPolicies,
    RetryPolicy,
)
from repro.faults.schedule import FaultInjector, FaultSchedule
from repro.groups import MonitoredMembership, ProcessGroup
from repro.net import Network, Topology, wan
from repro.net.transport import ReliableChannel
from repro.node import ODPRuntime
from repro.obs import slo
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.sampling import Sampler
from repro.obs.tracer import Tracer, get_tracer, use_tracer
from repro.qos.broker import QoSBroker
from repro.qos.monitor import QoSMonitor
from repro.qos.params import QoSParameters
from repro.sessions.floor import FcfsFloor
from repro.sessions.session import Session
from repro.sim import Environment, RandomStreams, exponential

# -- partition-recovery ------------------------------------------------------

PARTITION_AT = 10.0
HEAL_AT = 30.0
REJOIN_DELAY = 1.0
RUN_UNTIL = 60.0
MEDIA_UNTIL = 60.0
MEDIA_PORT = 30
FRAME_PERIOD = 0.05
FRAME_BYTES = 1250
HB_INTERVAL = 0.5
PHI_THRESHOLD = 8.0
QOS_WINDOW = 1.0
SLO_TARGET = 0.9
SLO_WINDOWS = ((8.0, 2.0, 2.0, "page"),)
SITE0 = ("site0.host0", "site0.host1", "site0.router")
SITE1 = ("site1.host0", "site1.host1", "site1.router")
MEMBERS = ("site0.host0", "site0.host1", "site1.host0", "site1.host1")
MEDIA_SRC = "site0.host0"
MEDIA_DST = "site1.host0"


def partition_recovery_workload(seed: int = 31,
                                include_faults: bool = True
                                ) -> Dict[str, Any]:
    """A session surviving a two-way WAN partition, end to end.

    ``include_faults=False`` runs the identical stack under an empty
    fault schedule — the healthy baseline the benchmark compares
    against (and a direct check that the injector is inert without
    scheduled events).
    """
    ambient = get_tracer()
    if ambient.enabled:
        tracer = ambient
        scope = contextlib.nullcontext()
    else:
        tracer = Tracer()
        scope = use_tracer(tracer)

    env = Environment()
    topo = wan(env, sites=2, hosts_per_site=2, site_latency=0.02,
               seed=seed)
    net = Network(env, topo)
    metrics = MetricsRegistry()

    with scope, use_metrics(metrics):
        # The cooperating group, failure-detected by phi accrual.
        group = ProcessGroup(net, "team", ordering="causal")
        views = []
        group.on_view(lambda view: views.append(
            {"at": env.now, "view_id": view.view_id,
             "members": list(view.members)}))
        for member in MEMBERS:
            group.join(member)
        detector = PhiAccrualDetector(threshold=PHI_THRESHOLD,
                                      window=40, min_samples=3,
                                      bootstrap_interval=HB_INTERVAL)
        membership = MonitoredMembership(group, interval=HB_INTERVAL,
                                         suspect_after=2.0,
                                         strategy=detector)

        # The session: floor-controlled, synchronous while healthy.
        session = Session(env, "design-review", floor=FcfsFloor(env))
        for member in MEMBERS:
            session.join(member)

        # The QoS-managed media flow crossing the partition boundary.
        broker = QoSBroker(net)
        contract = broker.negotiate(
            MEDIA_SRC, MEDIA_DST,
            desired=QoSParameters(throughput=150000.0, latency=0.5,
                                  jitter=0.5, loss=0.1),
            minimum=QoSParameters(throughput=50000.0, latency=0.5,
                                  jitter=0.5, loss=0.1))
        qos_monitor = QoSMonitor(env, contract, window=QOS_WINDOW,
                                 expected_frames_per_window=QOS_WINDOW
                                 / FRAME_PERIOD,
                                 stop_on_violation=False)

        manager = DegradationManager(env, session=session, broker=broker,
                                     contracts=[contract])
        slo_monitor = slo.SLOMonitor(
            env, [slo.qos_slo("{}->{}".format(MEDIA_SRC, MEDIA_DST),
                              target=SLO_TARGET)],
            registry=metrics, interval=1.0, windows=SLO_WINDOWS,
            until=RUN_UNTIL - 2.0, on_alert=manager.on_alert)

        # Suspicions flow to the manager (floor reclaim, degradation)
        # before the membership reacts (view change).
        suspicions = []
        membership_reaction = membership.monitor.on_suspect

        def on_suspect(member):
            suspicions.append({"at": env.now, "member": member})
            manager.on_suspect(member)
            membership_reaction(member)

        membership.monitor.on_suspect = on_suspect

        # The fault schedule: one two-way partition, healed later.
        schedule = FaultSchedule()
        if include_faults:
            schedule.partition(PARTITION_AT, [list(SITE0), list(SITE1)],
                               name="site-split", heal_at=HEAL_AT)
        injector = FaultInjector(env, net, schedule)

        def rejoin_proc():
            yield env.timeout(REJOIN_DELAY)
            for member in sorted(MEMBERS):
                if member not in group.view.members:
                    membership.restart(member)

        def on_fault(event):
            if event.kind == "heal":
                env.process(rejoin_proc(), name="rejoin")

        injector.add_listener(on_fault)

        # The media stream feeding the QoS monitor.
        src_host = net.host(MEDIA_SRC)
        dst_host = net.host(MEDIA_DST)

        def on_frame(packet):
            qos_monitor.record_frame(packet.headers["sent_at"], env.now,
                                     FRAME_BYTES)

        dst_host.on_packet(MEDIA_PORT, on_frame)

        def media_proc():
            while env.now < MEDIA_UNTIL:
                src_host.send(MEDIA_DST, size=FRAME_BYTES,
                              port=MEDIA_PORT,
                              headers={"type": "media",
                                       "sent_at": env.now})
                yield env.timeout(FRAME_PERIOD)

        env.process(media_proc(), name="media")

        # A far-site member holds the floor going into the partition.
        def floor_proc():
            yield env.timeout(1.0)
            yield session.floor.request("site1.host0")

        env.process(floor_proc(), name="floor-holder")

        env.run(until=RUN_UNTIL)

    fired = [e for e in slo_monitor.events if e["event"] == "fired"]
    cleared = [e for e in slo_monitor.events if e["event"] == "cleared"]
    recovered_at = None
    for view in views:
        if view["at"] >= HEAL_AT and len(view["members"]) == len(MEMBERS):
            recovered_at = view["at"]
            break
    return {
        "workload": "partition-recovery",
        "seed": seed,
        "partition_at": PARTITION_AT,
        "heal_at": HEAL_AT,
        "faults": injector.log,
        "views": views,
        "suspicions": suspicions,
        "first_suspicion_at": suspicions[0]["at"] if suspicions else None,
        "recovered_at": recovered_at,
        "recovery_time": None if recovered_at is None
        else recovered_at - HEAL_AT,
        "slo_fired_at": fired[0]["at"] if fired else None,
        "slo_cleared_at": cleared[0]["at"] if cleared else None,
        "degradation_log": manager.log,
        "session_transitions": session.transitions,
        "session_counters": dict(session.counters.as_dict()),
        "final_throughput": contract.agreed.throughput,
        "qos_windows": {
            "ok": metrics.counter_total("qos.windows_ok"),
            "violated": metrics.counter_total("qos.violations"),
        },
        "faults_injected": metrics.counter_total("fault.injected"),
        "fault_spans": sorted(span.name for span in tracer.spans
                              if span.name.startswith("fault.")),
        "drops": net.drop_stats(),
        "env": env.stats(),
    }


# -- flaky-links -------------------------------------------------------------

FLAP_AT = 5.0
FLAP_COUNT = 2
FLAP_PERIOD = 6.0
BURST_AT = 20.0
BURST_LOSS = 0.4
BURST_DURATION = 5.0
STORM_AT = 28.0
STORM_SCALE = 5.0
STORM_DURATION = 4.0
FLAKY_UNTIL = 40.0
RPC_TIMEOUT = 0.5
THINK_MEAN = 0.2
CHAN_PERIOD = 0.25
CHAN_BYTES = 600
SAMPLE_RATE = 0.25
TAIL_BUFFER = 4096


def flaky_links_workload(seed: int = 31) -> Dict[str, Any]:
    """Recovery policies under flaps, loss bursts and latency storms."""
    ambient = get_tracer()
    if ambient.enabled:
        tracer = ambient
        scope = contextlib.nullcontext()
    else:
        tracer = Tracer(sampler=Sampler(rate=SAMPLE_RATE, seed=seed),
                        tail_keep_errors=True, tail_buffer=TAIL_BUFFER)
        scope = use_tracer(tracer)

    env = Environment()
    streams = RandomStreams(seed)
    topo = Topology(env)
    topo.add_link("client", "server", latency=0.005, bandwidth=1e7,
                  rng=streams.stream("link"))
    net = Network(env, topo)
    metrics = MetricsRegistry()

    with scope, use_metrics(metrics):
        policies = FaultPolicies(
            retry=RetryPolicy(base=0.05, multiplier=2.0, cap=1.0,
                              jitter=0.2, max_retries=4,
                              rng=streams.stream("backoff")),
            breaker=CircuitBreaker(env, failure_threshold=3,
                                   reset_timeout=1.5),
            deadline=4.0)
        runtime = ODPRuntime(net, registry_node="server",
                             policies=policies)
        server = runtime.nucleus("server")
        capsule = server.create_capsule("cap")
        counter = server.create_object(capsule, "counter",
                                       state={"hits": 0})

        def hit(caller, state, args):
            state["hits"] += 1
            return state["hits"]

        counter.operation("hit", hit)
        client = runtime.nucleus("client")

        # A reliable channel with jittered exponential backoff.
        chan_rng = streams.stream("chan-backoff")
        chan_client = ReliableChannel(
            net.host("client"), port=5,
            backoff=RetryPolicy(base=0.1, multiplier=2.0, jitter=0.25,
                                max_retries=2, rng=chan_rng))
        chan_server = ReliableChannel(net.host("server"), port=5)
        received = []

        def drain_proc():
            while True:
                packet = yield chan_server.receive()
                received.append(packet.payload)

        env.process(drain_proc(), name="drain")

        outcomes: Dict[str, int] = {}
        think_rng = streams.stream("think")

        def rpc_proc():
            step = 0
            while env.now < FLAKY_UNTIL:
                yield env.timeout(exponential(think_rng, THINK_MEAN))
                step += 1
                try:
                    yield client.invoke(counter.oid, "hit", None,
                                        timeout=RPC_TIMEOUT)
                    key = "ok"
                except Exception as error:  # noqa: BLE001 - tallied
                    key = type(error).__name__
                outcomes[key] = outcomes.get(key, 0) + 1

        env.process(rpc_proc(), name="rpc-client")

        chan_failures = [0]
        chan_sent = [0]

        def chan_proc():
            while env.now < FLAKY_UNTIL:
                yield env.timeout(CHAN_PERIOD)
                chan_sent[0] += 1
                try:
                    yield chan_client.send("server",
                                           payload=chan_sent[0],
                                           size=CHAN_BYTES)
                except Exception:  # noqa: BLE001 - tallied
                    chan_failures[0] += 1

        env.process(chan_proc(), name="chan-sender")

        schedule = FaultSchedule()
        schedule.link_flap(FLAP_AT, "client", "server",
                           count=FLAP_COUNT, period=FLAP_PERIOD)
        schedule.loss_burst(BURST_AT, BURST_LOSS, BURST_DURATION,
                            links=[("client", "server")])
        schedule.latency_storm(STORM_AT, STORM_SCALE, STORM_DURATION,
                               links=[("client", "server")])
        injector = FaultInjector(env, net, schedule)

        env.run(until=FLAKY_UNTIL + 5.0)

    tail_promoted = tracer.tail_flush()
    error_spans = sum(1 for span in tracer.spans
                      if span.status != "ok")
    return {
        "workload": "flaky-links",
        "seed": seed,
        "faults": injector.log,
        # Operations that never resolved by the end of the drained run
        # (senders stop at FLAKY_UNTIL, the run extends 5 s past it) —
        # the fuzzer's liveness oracle requires every value to be zero
        # once all scheduled faults have lifted.
        "inflight": {
            "chan.client": chan_client.inflight(),
            "chan.server": chan_server.inflight(),
            "rpc.client": client.rpc.inflight(),
            "rpc.server": server.rpc.inflight(),
        },
        "outcomes": {key: outcomes[key] for key in sorted(outcomes)},
        "hits": counter.state["hits"],
        "chan_sent": chan_sent[0],
        # In-order deliveries: a send the channel gave up on leaves a
        # permanent sequence gap, so exactly-once FIFO delivery stalls
        # at the first give-up (head-of-line blocking by design).
        "chan_delivered": len(received),
        "chan_retries": chan_client.retries,
        "chan_gave_up": chan_client.gave_up,
        "chan_send_failures": chan_failures[0],
        "breaker": policies.breaker.snapshot(),
        "breaker_rejected": policies.breaker.rejected,
        "metric_chan_retries": metrics.counter_total("chan.retries"),
        "metric_rpc_retries": metrics.counter_total("rpc.retries"),
        "metric_breaker_opened": metrics.counter_total("breaker.opened"),
        "tail_promoted": tail_promoted,
        "error_spans": error_spans,
        "spans_retained": len(tracer.spans),
        "spans_sampled_out": tracer.sampled_out,
        "drops": net.drop_stats(),
        "env": env.stats(),
    }


# -- fuzz-probe --------------------------------------------------------------


def _inflight_table(server, clients, chan_src, chan_dst
                    ) -> Dict[str, int]:
    """Pending-operation counts per endpoint, sorted for digests."""
    table = {"chan.n1": chan_src.inflight(),
             "chan.n3": chan_dst.inflight(),
             "rpc.n0": server.rpc.inflight()}
    for name in sorted(clients):
        table["rpc." + name] = clients[name].rpc.inflight()
    return {key: table[key] for key in sorted(table)}

PROBE_ACTIVE_UNTIL = 18.0
PROBE_DRAIN = 6.0
PROBE_RPC_TIMEOUT = 0.4
PROBE_THINK_MEAN = 0.3
PROBE_CHAN_PERIOD = 0.5
PROBE_CHAN_BYTES = 400
PROBE_NODES = ("n0", "n1", "n2", "n3")
#: Ring plus one chord, so single link cuts reroute and partitions
#: genuinely isolate subsets.
PROBE_LINKS = (("n0", "n1"), ("n1", "n2"), ("n2", "n3"), ("n0", "n3"),
               ("n0", "n2"))


def fuzz_probe_workload(seed: int = 31) -> Dict[str, Any]:
    """The fuzzer's cheap target: RPC + reliable-channel traffic on a
    four-node mesh, with an *empty* built-in fault schedule.

    On its own this workload is deliberately boring — every probe
    succeeds, nothing degrades.  Its point is the injection surface:
    the :class:`FaultInjector` built here executes whatever schedule
    the ambient override supplies, clients tolerate faults through the
    full recovery-policy bundle, and the result exposes the pending-
    operation accounting (``inflight``) the liveness oracle needs.
    Senders stop at ``PROBE_ACTIVE_UNTIL``; the run drains for
    ``PROBE_DRAIN`` seconds more, long enough for the slowest possible
    retry ladder to resolve either way.
    """
    env = Environment()
    streams = RandomStreams(seed)
    topo = Topology(env)
    for a, b in PROBE_LINKS:
        topo.add_link(a, b, latency=0.005, bandwidth=1e7,
                      rng=streams.stream("link-{}-{}".format(a, b)))
    net = Network(env, topo)
    metrics = MetricsRegistry()

    with use_metrics(metrics):
        policies = FaultPolicies(
            retry=RetryPolicy(base=0.05, multiplier=2.0, cap=0.4,
                              jitter=0.2, max_retries=3,
                              rng=streams.stream("rpc-backoff")),
            breaker=CircuitBreaker(env, failure_threshold=4,
                                   reset_timeout=1.0),
            deadline=3.0)
        runtime = ODPRuntime(net, registry_node="n0", policies=policies)
        server = runtime.nucleus("n0")
        capsule = server.create_capsule("probe-cap")
        board = server.create_object(capsule, "board",
                                     state={"hits": 0})

        def hit(caller, state, args):
            state["hits"] += 1
            return state["hits"]

        board.operation("hit", hit)
        clients = {name: runtime.nucleus(name)
                   for name in PROBE_NODES[1:]}

        outcomes: Dict[str, Dict[str, int]] = {
            name: {} for name in sorted(clients)}
        think_rng = streams.stream("think")

        def probe_proc(name, nucleus):
            while env.now < PROBE_ACTIVE_UNTIL:
                yield env.timeout(exponential(think_rng,
                                              PROBE_THINK_MEAN))
                try:
                    yield nucleus.invoke(board.oid, "hit", None,
                                         timeout=PROBE_RPC_TIMEOUT)
                    key = "ok"
                except Exception as error:  # noqa: BLE001 - tallied
                    key = type(error).__name__
                tally = outcomes[name]
                tally[key] = tally.get(key, 0) + 1

        for name in sorted(clients):
            env.process(probe_proc(name, clients[name]),
                        name="probe-" + name)

        chan_src = ReliableChannel(
            net.host("n1"), port=7,
            backoff=RetryPolicy(base=0.1, multiplier=2.0, jitter=0.25,
                                max_retries=2,
                                rng=streams.stream("chan-backoff")))
        chan_dst = ReliableChannel(net.host("n3"), port=7)
        delivered = []

        def drain_proc():
            while True:
                packet = yield chan_dst.receive()
                delivered.append(packet.payload)

        env.process(drain_proc(), name="chan-drain")

        chan_stats = {"sent": 0, "failed": 0}

        def chan_proc():
            while env.now < PROBE_ACTIVE_UNTIL:
                yield env.timeout(PROBE_CHAN_PERIOD)
                chan_stats["sent"] += 1
                try:
                    yield chan_src.send("n3", payload=chan_stats["sent"],
                                        size=PROBE_CHAN_BYTES)
                except Exception:  # noqa: BLE001 - tallied
                    chan_stats["failed"] += 1

        env.process(chan_proc(), name="chan-sender")

        # The injection surface: empty unless a fuzz campaign (or a
        # corpus regression) overrides the schedule.
        injector = FaultInjector(env, net, FaultSchedule())

        env.run(until=PROBE_ACTIVE_UNTIL + PROBE_DRAIN)

    return {
        "workload": "fuzz-probe",
        "seed": seed,
        "faults": injector.log,
        "outcomes": outcomes,
        "hits": board.state["hits"],
        "chan_sent": chan_stats["sent"],
        "chan_failed": chan_stats["failed"],
        "chan_delivered": len(delivered),
        "chan_retries": chan_src.retries,
        "chan_gave_up": chan_src.gave_up,
        "breaker_rejected": policies.breaker.rejected,
        "inflight": _inflight_table(server, clients, chan_src, chan_dst),
        "faults_injected": metrics.counter_total("fault.injected"),
        "drops": net.drop_stats(),
        "env": env.stats(),
    }
