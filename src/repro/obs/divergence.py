"""Divergence localizer: find *where* two runs forked, not just that they did.

``python -m repro.analysis.replay`` proves or refutes determinism;
this CLI turns a refutation into a location.  Two runs of a registered
workload are journalled by the flight recorder
(:mod:`repro.obs.flight`) into chained per-epoch digests; because
digest ``e`` covers the whole run prefix up to epoch ``e``, the first
divergent epoch is found by binary search over the digest lists.  Both
runs are then re-executed with full journaling *only* for that epoch
(``keep_epochs``), and the first mismatched record is printed with its
causal context: the owning span/trace (via the ambient
:class:`~repro.obs.tracer.Tracer`) and the K records preceding the
mismatch in each run.

Usage::

    PYTHONPATH=src python -m repro.obs.divergence locks-hard --seed 31
    PYTHONPATH=src python -m repro.obs.divergence locks-hard \\
        --seed 31 --seed2 32
    PYTHONPATH=src python -m repro.obs.divergence --dumps a.jsonl b.jsonl

The first form self-compares one seed (the determinism check, with
localization when it fails); ``--seed2`` compares two different seeds
— a guaranteed fork, which is how CI smoke-tests the localizer end to
end.  ``--dumps`` compares two flight-bearing JSONL dumps offline.

Exit status: 0 when the runs agree, 1 when a divergence was localized,
2 on usage errors or unusable dumps.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.flight import (
    DEFAULT_EPOCH_EVENTS,
    FlightRecorder,
    canonical,
    use_flight,
)

#: Ring size for the full-journal re-run: must hold every record of the
#: divergent epoch (dispatches plus their rng/net/lock records).
JOURNAL_RING = 1 << 16


def first_divergent_epoch(a: Sequence[str], b: Sequence[str]
                          ) -> Optional[int]:
    """The first epoch whose chained digests differ, or ``None``.

    Chaining gives the prefix property — ``a[e] == b[e]`` implies the
    runs agree on *every* epoch up to ``e`` — so the first mismatch is
    found by binary search rather than a linear scan.  When one run has
    fewer epochs but agrees on the shared prefix, the divergence is the
    first epoch the shorter run never closed.
    """
    limit = min(len(a), len(b))
    if limit == 0 or a[limit - 1] == b[limit - 1]:
        return limit if len(a) != len(b) else None
    lo, hi = 0, limit - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if a[mid] == b[mid]:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _run(name: str, seed: int, recorder: FlightRecorder,
         traced: bool) -> str:
    """One isolated workload run under ``recorder``; its result digest.

    ``traced`` installs a recording tracer so journal records carry
    owning-span side metadata; side fields are excluded from digests,
    so traced and untraced runs journal identically.
    """
    # Function-level imports: repro.analysis.replay lazily imports this
    # module on digest mismatch, and the workload registry pulls in the
    # whole net/node stack.
    from repro.analysis.replay import run_isolated, trace_digest
    from repro.obs.tracer import Tracer, use_tracer

    with use_flight(recorder):
        if traced:
            with use_tracer(Tracer()):
                result = run_isolated(name, seed)
        else:
            result = run_isolated(name, seed)
    recorder.finish()
    return trace_digest(result)


def compare_digests(name: str, seed: int, seed2: Optional[int] = None,
                    epoch_events: int = DEFAULT_EPOCH_EVENTS
                    ) -> Dict[str, Any]:
    """The cheap pass: two digest-only runs and their first divergence."""
    second_seed = seed if seed2 is None else seed2
    run_a = FlightRecorder(ring=16, epoch_events=epoch_events)
    run_b = FlightRecorder(ring=16, epoch_events=epoch_events)
    digest_a = _run(name, seed, run_a, traced=False)
    digest_b = _run(name, second_seed, run_b, traced=False)
    epoch = first_divergent_epoch(run_a.epoch_digests, run_b.epoch_digests)
    return {
        "workload": name,
        "seed": seed,
        "seed2": second_seed,
        "epoch_events": epoch_events,
        "epochs": [len(run_a.epoch_digests), len(run_b.epoch_digests)],
        "result_digests": [digest_a, digest_b],
        "diverged": epoch is not None,
        "epoch": epoch,
    }


def _first_mismatch(records_a: List[Dict[str, Any]],
                    records_b: List[Dict[str, Any]]) -> Optional[int]:
    """Index of the first record pair whose canonical forms differ."""
    for index, (record_a, record_b) in enumerate(zip(records_a,
                                                     records_b)):
        if canonical(record_a) != canonical(record_b):
            return index
    if len(records_a) != len(records_b):
        return min(len(records_a), len(records_b))
    return None


def localize(name: str, seed: int, seed2: Optional[int] = None,
             epoch_events: int = DEFAULT_EPOCH_EVENTS,
             context: int = 8) -> Dict[str, Any]:
    """Full localization: digest pass, bisection, epoch-only re-journal."""
    report = compare_digests(name, seed, seed2,
                             epoch_events=epoch_events)
    report["context"] = context
    if not report["diverged"]:
        return report
    epoch = report["epoch"]
    journal_a = FlightRecorder(ring=JOURNAL_RING,
                               epoch_events=epoch_events,
                               keep_epochs=(epoch, epoch),
                               context=context)
    journal_b = FlightRecorder(ring=JOURNAL_RING,
                               epoch_events=epoch_events,
                               keep_epochs=(epoch, epoch),
                               context=context)
    _run(name, seed, journal_a, traced=True)
    _run(name, report["seed2"], journal_b, traced=True)
    records_a = list(journal_a.ring)
    records_b = list(journal_b.ring)
    index = _first_mismatch(records_a, records_b)
    report["epoch_records"] = [len(records_a), len(records_b)]
    report["record_index"] = index
    if index is None:
        # Digests disagreed but the retained records do not — the fork
        # is in a journal channel the re-run disabled, or past the ring.
        return report
    preceding_a = (list(journal_a.context) + records_a[:index])[-context:]
    preceding_b = (list(journal_b.context) + records_b[:index])[-context:]
    report["record_a"] = records_a[index] if index < len(records_a) \
        else None
    report["record_b"] = records_b[index] if index < len(records_b) \
        else None
    report["context_a"] = preceding_a
    report["context_b"] = preceding_b
    return report


# -- dump-vs-dump mode -----------------------------------------------------


def _load_flight(path: str, err) -> Optional[Tuple[List[str],
                                                   List[Dict[str, Any]]]]:
    """(epoch digests, flight records) from a JSONL dump, or ``None``."""
    from repro.obs._cli import load_dump_records

    records = load_dump_records(path, err)
    if records is None:
        return None
    digests = {r["index"]: r["digest"] for r in records
               if r.get("kind") == "flight-epoch"
               and "index" in r and "digest" in r}
    flight = [r for r in records
              if r.get("kind") in ("dispatch", "rng", "hop", "drop",
                                   "lock", "spawn", "exit")]
    if not digests:
        err.write("error: {} carries no flight-epoch records\n"
                  .format(path))
        return None
    ordered = [digests[index] for index in sorted(digests)]
    return ordered, flight


def compare_dumps(path_a: str, path_b: str, context: int = 8,
                  err=None) -> Optional[Dict[str, Any]]:
    """Offline comparison of two flight-bearing dumps."""
    err = err if err is not None else sys.stderr
    loaded_a = _load_flight(path_a, err)
    loaded_b = _load_flight(path_b, err)
    if loaded_a is None or loaded_b is None:
        return None
    digests_a, records_a = loaded_a
    digests_b, records_b = loaded_b
    epoch = first_divergent_epoch(digests_a, digests_b)
    report: Dict[str, Any] = {
        "dumps": [path_a, path_b],
        "epochs": [len(digests_a), len(digests_b)],
        "diverged": epoch is not None,
        "epoch": epoch,
        "context": context,
    }
    if epoch is None:
        return report
    epoch_a = [r for r in records_a if r.get("epoch") == epoch]
    epoch_b = [r for r in records_b if r.get("epoch") == epoch]
    report["epoch_records"] = [len(epoch_a), len(epoch_b)]
    if not epoch_a or not epoch_b:
        # The dumps' rings did not retain the divergent epoch; the
        # digests still name it.
        report["record_index"] = None
        return report
    index = _first_mismatch(epoch_a, epoch_b)
    report["record_index"] = index
    if index is not None:
        report["record_a"] = epoch_a[index] if index < len(epoch_a) \
            else None
        report["record_b"] = epoch_b[index] if index < len(epoch_b) \
            else None
        report["context_a"] = epoch_a[max(0, index - context):index]
        report["context_b"] = epoch_b[max(0, index - context):index]
    return report


# -- rendering -------------------------------------------------------------


def _span_line(record: Optional[Dict[str, Any]]) -> Optional[str]:
    if not record or "_trace" not in record:
        return None
    return "{} ({}, trace {})".format(
        record.get("_op", "?"), record.get("_span", "?"),
        record["_trace"])


def render(report: Dict[str, Any], out=None) -> None:
    """Human-readable localization transcript."""
    out = out if out is not None else sys.stdout
    if "workload" in report:
        versus = "seed {} vs seed {}".format(report["seed"],
                                             report["seed2"]) \
            if report["seed"] != report["seed2"] \
            else "seed {} self-compare".format(report["seed"])
        out.write("workload {}: {} (epoch = {} events)\n".format(
            report["workload"], versus, report["epoch_events"]))
    else:
        out.write("dumps: {} vs {}\n".format(*report["dumps"]))
    out.write("epochs: run A = {}, run B = {}\n".format(
        *report["epochs"]))
    if not report["diverged"]:
        out.write("no divergence: all {} epoch digest(s) identical\n"
                  .format(report["epochs"][0]))
        return
    out.write("first divergent epoch: {}\n".format(report["epoch"]))
    index = report.get("record_index")
    if index is None:
        out.write("(the divergent epoch's records were not retained; "
                  "re-run with the workload form to journal it)\n")
        return
    record_a = report.get("record_a")
    record_b = report.get("record_b")
    out.write("first mismatched record (epoch {}, record {}):\n".format(
        report["epoch"], index))
    out.write("  A: {}\n".format(
        canonical(record_a) if record_a else "<run ended>"))
    out.write("  B: {}\n".format(
        canonical(record_b) if record_b else "<run ended>"))
    for label, record in (("A", record_a), ("B", record_b)):
        span = _span_line(record)
        if span:
            out.write("  owning span ({}): {}\n".format(label, span))
    for label, key in (("A", "context_a"), ("B", "context_b")):
        preceding = report.get(key) or []
        if preceding:
            out.write("context {} — {} record(s) before the "
                      "mismatch:\n".format(label, len(preceding)))
            for record in preceding:
                out.write("  {}| {}\n".format(label, canonical(record)))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.divergence",
        description="Localize the first divergent epoch between two "
                    "flight-journalled runs (or dumps).")
    parser.add_argument("workload", nargs="?", default=None,
                        help="registered workload name")
    parser.add_argument("--seed", type=int, default=31,
                        help="experiment seed (default 31)")
    parser.add_argument("--seed2", type=int, default=None,
                        help="second run's seed (default: same as "
                             "--seed, a determinism self-compare)")
    parser.add_argument("--epoch-events", type=int,
                        default=DEFAULT_EPOCH_EVENTS, metavar="N",
                        help="events per digest epoch (default {})"
                        .format(DEFAULT_EPOCH_EVENTS))
    parser.add_argument("--context", type=int, default=8, metavar="K",
                        help="preceding records to show per run "
                             "(default 8)")
    parser.add_argument("--dumps", nargs=2, default=None,
                        metavar=("A", "B"),
                        help="compare two flight-bearing JSONL dumps "
                             "instead of running a workload")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", dest="fmt",
                        help="transcript (default) or one JSON document")
    options = parser.parse_args(argv)

    if (options.workload is None) == (options.dumps is None):
        parser.error("exactly one of WORKLOAD or --dumps is required")
    if options.epoch_events <= 0:
        parser.error("--epoch-events must be positive")
    if options.context <= 0:
        parser.error("--context must be positive")

    if options.dumps is not None:
        report = compare_dumps(options.dumps[0], options.dumps[1],
                               context=options.context)
        if report is None:
            return 2
    else:
        try:
            report = localize(options.workload, options.seed,
                              options.seed2,
                              epoch_events=options.epoch_events,
                              context=options.context)
        except KeyError as error:
            sys.stderr.write("error: {}\n".format(error.args[0]))
            return 2
    if options.fmt == "json":
        print(json.dumps(report, sort_keys=True, indent=2))
    else:
        render(report)
    return 1 if report["diverged"] else 0


if __name__ == "__main__":
    sys.exit(main())
