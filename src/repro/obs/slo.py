"""Service-level objectives with multi-window burn-rate alerting.

The paper requires *"end-to-end monitoring of QoS so that the application
can be informed if degradations occur"* (§4.2.2-ii).  The QoS monitor
already measures each flow; this module adds the operational half:
**declarative objectives** over the instruments the middleware already
records (``qos.*`` windows, ``rpc.latency``, ``resource.wait``, …) and a
**burn-rate evaluator** that tells the application not merely *that* a
window was bad, but that badness is consuming the error budget fast
enough to warrant interruption.

Burn rate is the SRE yardstick: with a target of 99% good events the
error budget is 1%; a burn rate of 10 means errors are arriving at ten
times the rate the budget can absorb.  Alerting on *two* windows at once
— a long one for significance, a short one to confirm the problem is
still live — is what keeps alerts both fast and non-flappy; the short
window is also what lets an alert *clear* promptly once the system
recovers.

Everything here is driven by simulated time and the metrics registry:
no wall clock, no randomness, no effect on the event schedule beyond the
monitor's own periodic ticks — so a run with SLO monitoring enabled
replays bit-for-bit, and one without it is byte-identical to a run
before this module existed.

Typical use::

    from repro.obs import slo

    monitor = slo.SLOMonitor(env, [
        slo.qos_slo("cam->viewer", target=0.95),
        slo.LatencySLO("invoke-fast", "rpc.latency",
                       threshold=0.25, target=0.99),
    ], until=300.0)
    env.run()
    monitor.events      # fired / cleared alert log
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import QoSError
from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.sim import Environment, Interrupt

#: Default multi-window burn-rate policy, patterned on the SRE workbook
#: pairs but in simulated seconds: (long window, short window, burn-rate
#: factor, severity).  Tune per experiment; horizons of minutes suit the
#: repo's session-scale workloads.
DEFAULT_WINDOWS: Tuple[Tuple[float, float, float, str], ...] = (
    (60.0, 5.0, 14.4, "page"),
    (360.0, 30.0, 6.0, "ticket"),
)


class SLO:
    """One declarative objective: a target fraction of good events.

    Subclasses define :meth:`totals` — cumulative (good, bad) event
    counts read from a metrics registry.  The evaluator differences
    totals over sliding windows, so instruments only need to be
    monotone, which counters and histogram counts already are.
    """

    def __init__(self, name: str, target: float,
                 description: str = "") -> None:
        if not 0.0 < target < 1.0:
            raise QoSError(
                "SLO target must be in (0, 1), got {}".format(target))
        self.name = name
        self.target = target
        self.description = description

    @property
    def error_budget(self) -> float:
        """The tolerable bad-event fraction (1 - target)."""
        return 1.0 - self.target

    def totals(self, registry: MetricsRegistry) -> Tuple[float, float]:
        """Cumulative (good, bad) event counts."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return "<{} {} target={}>".format(
            type(self).__name__, self.name, self.target)


class CounterRatioSLO(SLO):
    """Good/bad as two counter selectors (name plus a label subset).

    ``good`` / ``bad`` are either a bare counter name or a
    ``(name, labels_dict)`` pair; all matching label sets are summed.
    """

    def __init__(self, name: str, good, bad, target: float,
                 description: str = "") -> None:
        super().__init__(name, target, description)
        self.good = _selector(good)
        self.bad = _selector(bad)

    def totals(self, registry: MetricsRegistry) -> Tuple[float, float]:
        good_name, good_labels = self.good
        bad_name, bad_labels = self.bad
        return (float(registry.counter_total(good_name, **good_labels)),
                float(registry.counter_total(bad_name, **bad_labels)))


class LatencySLO(SLO):
    """Good = histogram observations at or below a latency threshold."""

    def __init__(self, name: str, instrument: str, threshold: float,
                 target: float, labels: Optional[Dict[str, Any]] = None,
                 description: str = "") -> None:
        super().__init__(name, target, description)
        if threshold < 0:
            raise QoSError("latency threshold must be non-negative")
        self.instrument = instrument
        self.threshold = threshold
        self.labels = dict(labels or {})

    def totals(self, registry: MetricsRegistry) -> Tuple[float, float]:
        total = registry.histogram_count(self.instrument, **self.labels)
        good = registry.histogram_count_below(
            self.instrument, self.threshold, **self.labels)
        return (float(good), float(total - good))


def qos_slo(flow: str, target: float = 0.95,
            name: Optional[str] = None) -> CounterRatioSLO:
    """An SLO over the QoS monitor's per-flow window verdicts.

    :class:`~repro.qos.monitor.QoSMonitor` records every monitoring
    window as ``qos.windows_ok`` or ``qos.violations`` (labelled by
    flow); this objective turns those into a burn-rate-evaluable target —
    the paper's degradation notification, with teeth.
    """
    return CounterRatioSLO(
        name or "qos:" + flow,
        good=("qos.windows_ok", {"flow": flow}),
        bad=("qos.violations", {"flow": flow}),
        target=target,
        description="fraction of QoS windows honouring the contract")


class BurnAlert:
    """One alert lifecycle: fired when both windows burn hot, cleared
    when either cools back below the factor."""

    __slots__ = ("slo", "severity", "long_window", "short_window",
                 "factor", "fired_at", "cleared_at", "peak_burn")

    def __init__(self, slo: str, severity: str, long_window: float,
                 short_window: float, factor: float,
                 fired_at: float) -> None:
        self.slo = slo
        self.severity = severity
        self.long_window = long_window
        self.short_window = short_window
        self.factor = factor
        self.fired_at = fired_at
        self.cleared_at: Optional[float] = None
        self.peak_burn = 0.0

    @property
    def active(self) -> bool:
        return self.cleared_at is None

    def __repr__(self) -> str:
        return "<BurnAlert {} {} fired={:g}{}>".format(
            self.slo, self.severity, self.fired_at,
            "" if self.active else " cleared={:g}".format(self.cleared_at))


class SLOMonitor:
    """Periodically evaluates SLO burn rates and records alert events.

    Every ``interval`` simulated seconds the monitor snapshots each
    SLO's cumulative totals, differences them over each configured
    window pair and compares the burn rates against the pair's factor.
    Alerts fire when *both* windows exceed the factor and clear when the
    condition lapses; both transitions land in :attr:`events`, in the
    registry (``slo.alerts_fired`` / ``slo.alerts_cleared`` counters,
    ``slo.burn_rate`` gauges) and on the optional ``on_alert`` callback
    — the degradation notification the application asked for.

    Pass ``until`` (or call :meth:`stop`) so ``env.run()`` with no
    deadline can drain; windows with no events burn at rate zero.
    """

    def __init__(self, env: Environment, slos: Sequence[SLO],
                 registry: Optional[MetricsRegistry] = None,
                 interval: float = 1.0,
                 windows: Sequence[Tuple[float, float, float, str]]
                 = DEFAULT_WINDOWS,
                 until: Optional[float] = None,
                 on_alert: Optional[Callable[[str, BurnAlert], None]]
                 = None) -> None:
        if interval <= 0:
            raise QoSError("evaluation interval must be positive")
        names = [slo.name for slo in slos]
        if len(set(names)) != len(names):
            raise QoSError("duplicate SLO names: {}".format(names))
        for long_window, short_window, factor, _severity in windows:
            if short_window > long_window:
                raise QoSError("short window must not exceed long window")
            if factor <= 0:
                raise QoSError("burn-rate factor must be positive")
        self.env = env
        self.slos = list(slos)
        self._registry = registry
        self.interval = interval
        self.windows = tuple(windows)
        self.until = until
        self.on_alert = on_alert
        self._keep = (max(w[0] for w in windows) if windows else 0.0) \
            + 2 * interval
        #: (time, {slo name: (good, bad)}) samples, oldest first.
        self._history: List[Tuple[float, Dict[str, Tuple[float, float]]]] \
            = []
        self._active: Dict[Tuple[str, str], BurnAlert] = {}
        #: Chronological fired/cleared event dicts (JSON-safe).
        self.events: List[Dict[str, Any]] = []
        self.alerts: List[BurnAlert] = []
        self._stopped = False
        self.process = env.process(self._run())

    @property
    def registry(self) -> MetricsRegistry:
        """The registry read and written each tick.

        Resolved lazily so a monitor built before ``use_metrics`` scoping
        still observes the scoped registry.
        """
        return self._registry if self._registry is not None \
            else get_metrics()

    def stop(self) -> None:
        """Stop evaluating (lets an open-ended ``env.run()`` drain)."""
        if not self._stopped:
            self._stopped = True
            if self.process.is_alive:
                self.process.interrupt("slo-monitor-stopped")

    def active_alerts(self) -> List[BurnAlert]:
        """Alerts currently firing, stable-ordered."""
        return [self._active[key] for key in sorted(self._active)]

    def burn_rate(self, slo: SLO, window: float,
                  now: Optional[float] = None) -> float:
        """The burn rate of ``slo`` over the trailing ``window`` seconds."""
        good, bad = slo.totals(self.registry)
        return self._burn(slo, (good, bad), window,
                          self.env.now if now is None else now)

    # -- internals ---------------------------------------------------------

    def _run(self):
        while not self._stopped and \
                (self.until is None or self.env.now < self.until):
            try:
                yield self.env.timeout(self.interval)
            except Interrupt:
                break
            self._evaluate()

    def _evaluate(self) -> None:
        now = self.env.now
        registry = self.registry
        totals = {slo.name: slo.totals(registry) for slo in self.slos}
        self._history.append((now, totals))
        while self._history and self._history[0][0] < now - self._keep:
            self._history.pop(0)
        for slo in self.slos:
            current = totals[slo.name]
            for long_window, short_window, factor, severity in self.windows:
                burn_long = self._burn(slo, current, long_window, now)
                burn_short = self._burn(slo, current, short_window, now)
                registry.gauge("slo.burn_rate", slo=slo.name,
                               window="{:g}s".format(long_window)) \
                    .set(burn_long, at=now)
                self._transition(slo, severity, long_window, short_window,
                                 factor, burn_long, burn_short, now,
                                 registry)

    def _baseline(self, name: str, cutoff: float) -> Tuple[float, float]:
        """Totals at the newest sample at or before ``cutoff``.

        With no history that old (early in the run, or after pruning)
        the window is evaluated from zero — i.e. over all events so far.
        """
        baseline = (0.0, 0.0)
        for at, totals in self._history:
            if at > cutoff:
                break
            baseline = totals.get(name, baseline)
        return baseline

    def _burn(self, slo: SLO, current: Tuple[float, float],
              window: float, now: float) -> float:
        base_good, base_bad = self._baseline(slo.name, now - window)
        good = current[0] - base_good
        bad = current[1] - base_bad
        total = good + bad
        if total <= 0:
            return 0.0
        bad_fraction = bad / total
        budget = slo.error_budget
        if budget <= 0:
            return float("inf") if bad else 0.0
        return bad_fraction / budget

    def _transition(self, slo: SLO, severity: str, long_window: float,
                    short_window: float, factor: float, burn_long: float,
                    burn_short: float, now: float,
                    registry: MetricsRegistry) -> None:
        key = (slo.name, severity)
        firing = burn_long >= factor and burn_short >= factor
        alert = self._active.get(key)
        if firing and alert is None:
            alert = BurnAlert(slo.name, severity, long_window,
                              short_window, factor, fired_at=now)
            self._active[key] = alert
            self.alerts.append(alert)
            registry.counter("slo.alerts_fired", slo=slo.name,
                             severity=severity).add()
            self._record_event("fired", alert, burn_long, burn_short, now)
        if alert is not None and alert.active:
            alert.peak_burn = max(alert.peak_burn, burn_long)
        if not firing and alert is not None:
            alert.cleared_at = now
            del self._active[key]
            registry.counter("slo.alerts_cleared", slo=slo.name,
                             severity=severity).add()
            self._record_event("cleared", alert, burn_long, burn_short,
                               now)

    def _record_event(self, kind: str, alert: BurnAlert, burn_long: float,
                      burn_short: float, now: float) -> None:
        event = {
            "event": kind,
            "slo": alert.slo,
            "severity": alert.severity,
            "at": now,
            "burn_long": burn_long,
            "burn_short": burn_short,
            "long_window": alert.long_window,
            "short_window": alert.short_window,
        }
        self.events.append(event)
        if self.on_alert is not None:
            self.on_alert(kind, alert)

    def summary(self) -> Dict[str, Any]:
        """A JSON-safe digest (for workload results and bench telemetry)."""
        return {
            "slos": [slo.name for slo in self.slos],
            "events": list(self.events),
            "active": [alert.slo + "/" + alert.severity
                       for alert in self.active_alerts()],
            "fired": sum(1 for e in self.events if e["event"] == "fired"),
            "cleared": sum(1 for e in self.events
                           if e["event"] == "cleared"),
        }

    def __repr__(self) -> str:
        return "<SLOMonitor slos={} active={} events={}>".format(
            len(self.slos), len(self._active), len(self.events))


def _selector(spec) -> Tuple[str, Dict[str, Any]]:
    if isinstance(spec, str):
        return (spec, {})
    name, labels = spec
    return (name, dict(labels or {}))
