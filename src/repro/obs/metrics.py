"""The metrics registry: named, labelled instruments with one snapshot.

Unifies the ad-hoc probes (:class:`~repro.sim.monitor.Tally`,
:class:`~repro.sim.monitor.Counter`, :class:`~repro.sim.monitor.TimeSeries`)
behind named instruments with labels::

    metrics = obs.get_metrics()
    metrics.counter("net.drops", reason="loss").add()
    metrics.histogram("rpc.latency", node="host1").record(0.012)
    metrics.snapshot()   # one dict for benchmark tables / JSONL export

Instruments are created on first use and cached by ``(name, labels)``.
Recording never touches the simulation clock or RNG streams, so enabling
metrics cannot change experiment output.
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.sim.monitor import Tally, TimeSeries

LabelKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, Any]) -> LabelKey:
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


def _render(key: LabelKey) -> str:
    name, labels = key
    if not labels:
        return name
    return "{}{{{}}}".format(
        name, ",".join("{}={}".format(k, v) for k, v in labels))


class CounterInstrument:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]
                 ) -> None:
        self.name = name
        self.labels = dict(labels)
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return "<Counter {}={}>".format(self.name, self.value)


class HistogramInstrument:
    """A distribution of observations (backed by a Tally)."""

    __slots__ = ("name", "labels", "tally")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]
                 ) -> None:
        self.name = name
        self.labels = dict(labels)
        self.tally = Tally(name)

    def record(self, value: float) -> None:
        self.tally.record(value)

    @property
    def count(self) -> int:
        return self.tally.count

    @property
    def mean(self) -> float:
        return self.tally.mean

    def count_below(self, threshold: float) -> int:
        """Observations ``<= threshold`` (the SLO "good event" count)."""
        return sum(1 for value in self.tally.values if value <= threshold)

    def summary(self) -> Dict[str, float]:
        return self.tally.summary()

    def __repr__(self) -> str:
        return "<Histogram {} n={}>".format(self.name, self.tally.count)


class GaugeInstrument:
    """A sampled value over simulated time (backed by a TimeSeries)."""

    __slots__ = ("name", "labels", "series")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]
                 ) -> None:
        self.name = name
        self.labels = dict(labels)
        self.series = TimeSeries(name)

    def set(self, value: float, at: float) -> None:
        self.series.record(at, value)

    @property
    def last(self) -> float:
        return self.series.samples[-1][1] if self.series.samples else 0.0

    def __repr__(self) -> str:
        return "<Gauge {}={}>".format(self.name, self.last)


class MetricsRegistry:
    """All instruments for one collection scope, keyed by name + labels."""

    def __init__(self) -> None:
        self._counters: Dict[LabelKey, CounterInstrument] = {}
        self._histograms: Dict[LabelKey, HistogramInstrument] = {}
        self._gauges: Dict[LabelKey, GaugeInstrument] = {}

    # -- instrument factories (create-on-first-use, cached) ----------------

    def counter(self, name: str, **labels: Any) -> CounterInstrument:
        key = _key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = CounterInstrument(
                name, key[1])
        return instrument

    def histogram(self, name: str, **labels: Any) -> HistogramInstrument:
        key = _key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = HistogramInstrument(
                name, key[1])
        return instrument

    def gauge(self, name: str, **labels: Any) -> GaugeInstrument:
        key = _key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = GaugeInstrument(name, key[1])
        return instrument

    # -- querying ----------------------------------------------------------

    def counters(self, name: Optional[str] = None
                 ) -> Dict[str, int]:
        """Counter values, optionally restricted to one instrument name."""
        return {_render(key): instrument.value
                for key, instrument in sorted(self._counters.items())
                if name is None or key[0] == name}

    # -- aggregation across label sets (the SLO layer's read path) ---------

    @staticmethod
    def _matches(key: LabelKey, name: str, labels: Dict[str, Any]) -> bool:
        """Does an instrument key match ``name`` + a label *subset*?"""
        if key[0] != name:
            return False
        have = dict(key[1])
        return all(have.get(k) == str(v) for k, v in labels.items())

    def counter_total(self, name: str, **labels: Any) -> int:
        """Sum of every counter named ``name`` whose labels ⊇ ``labels``."""
        return sum(inst.value for key, inst in sorted(self._counters.items())
                   if self._matches(key, name, labels))

    def histogram_count(self, name: str, **labels: Any) -> int:
        """Total observations across matching histograms."""
        return sum(inst.count
                   for key, inst in sorted(self._histograms.items())
                   if self._matches(key, name, labels))

    def histogram_count_below(self, name: str, threshold: float,
                              **labels: Any) -> int:
        """Observations ``<= threshold`` across matching histograms."""
        return sum(inst.count_below(threshold)
                   for key, inst in sorted(self._histograms.items())
                   if self._matches(key, name, labels))

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Everything, as one nested dict for tables and assertions."""
        return {
            "counters": {_render(key): inst.value
                         for key, inst in sorted(self._counters.items())},
            "histograms": {_render(key): inst.summary()
                           for key, inst in
                           sorted(self._histograms.items())},
            "gauges": {_render(key): inst.last
                       for key, inst in sorted(self._gauges.items())},
        }

    def records(self) -> Iterator[Dict[str, Any]]:
        """Flat metric records for the JSONL exporter."""
        for key, counter in sorted(self._counters.items()):
            yield {"kind": "metric", "type": "counter", "name": key[0],
                   "labels": dict(key[1]), "value": counter.value}
        for key, hist in sorted(self._histograms.items()):
            yield {"kind": "metric", "type": "histogram", "name": key[0],
                   "labels": dict(key[1]), "summary": hist.summary()}
        for key, gauge in sorted(self._gauges.items()):
            yield {"kind": "metric", "type": "gauge", "name": key[0],
                   "labels": dict(key[1]), "value": gauge.last,
                   "samples": len(gauge.series.samples)}

    def reset(self) -> None:
        self._counters.clear()
        self._histograms.clear()
        self._gauges.clear()

    def __repr__(self) -> str:
        return "<MetricsRegistry counters={} histograms={} gauges={}>".format(
            len(self._counters), len(self._histograms), len(self._gauges))


_metrics = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide registry consulted by instrumentation sites."""
    return _metrics


def set_metrics(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` (``None`` installs a fresh one); returns the
    previous one."""
    global _metrics
    previous = _metrics
    _metrics = registry if registry is not None else MetricsRegistry()
    return previous


@contextlib.contextmanager
def use_metrics(registry: MetricsRegistry):
    """Scope ``registry`` as the process default, restoring on exit."""
    previous = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)
