"""The metrics registry: named, labelled instruments with one snapshot.

Unifies the ad-hoc probes (:class:`~repro.sim.monitor.Tally`,
:class:`~repro.sim.monitor.Counter`, :class:`~repro.sim.monitor.TimeSeries`)
behind named instruments with labels::

    metrics = obs.get_metrics()
    metrics.counter("net.drops", reason="loss").add()
    metrics.histogram("rpc.latency", node="host1").record(0.012)
    metrics.snapshot()   # one dict for benchmark tables / JSONL export

Instruments are created on first use and cached by ``(name, labels)``.
Recording never touches the simulation clock or RNG streams, so enabling
metrics cannot change experiment output.

Batched flushing (PR 10): hot paths that cannot afford an instrument
call per record accumulate into local cells and register a *flush hook*
(:meth:`MetricsRegistry.add_flush_hook`).  Every read path — the keyed
factories, ``counters()``/``snapshot()``/``records()``, the
``*_items()`` iteration the timeline recorder uses at window boundaries,
and the SLO aggregations — runs the hooks first, so readers always see
fresh values while writers schedule zero flush events and pay one int
add per record.  Hooks must be idempotent when their cells are empty.
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.sim.monitor import Tally, TimeSeries

LabelKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, Any]) -> LabelKey:
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


def _render(key: LabelKey) -> str:
    name, labels = key
    if not labels:
        return name
    return "{}{{{}}}".format(
        name, ",".join("{}={}".format(k, v) for k, v in labels))


class CounterInstrument:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]
                 ) -> None:
        self.name = name
        self.labels = dict(labels)
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return "<Counter {}={}>".format(self.name, self.value)


class HistogramInstrument:
    """A distribution of observations (backed by a Tally)."""

    __slots__ = ("name", "labels", "tally", "_below")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]
                 ) -> None:
        self.name = name
        self.labels = dict(labels)
        self.tally = Tally(name)
        # threshold -> running count of observations <= threshold; a
        # threshold registers on its first count_below() query, so the SLO
        # layer's repeated window evals are O(1) instead of a full rescan.
        self._below: Dict[float, int] = {}

    def record(self, value: float) -> None:
        self.tally.record(value)
        for threshold in self._below:
            if value <= threshold:
                self._below[threshold] += 1

    @property
    def count(self) -> int:
        return self.tally.count

    @property
    def mean(self) -> float:
        return self.tally.mean

    def count_below(self, threshold: float) -> int:
        """Observations ``<= threshold`` (the SLO "good event" count).

        The first query for a threshold scans the recorded values once and
        registers it; later records keep the count incrementally.
        """
        cached = self._below.get(threshold)
        if cached is None:
            cached = sum(1 for value in self.tally.values
                         if value <= threshold)
            self._below[threshold] = cached
        return cached

    def summary(self) -> Dict[str, float]:
        return self.tally.summary()

    def __repr__(self) -> str:
        return "<Histogram {} n={}>".format(self.name, self.tally.count)


class GaugeInstrument:
    """A sampled value over simulated time (backed by a TimeSeries)."""

    __slots__ = ("name", "labels", "series")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]
                 ) -> None:
        self.name = name
        self.labels = dict(labels)
        self.series = TimeSeries(name)

    def set(self, value: float, at: float) -> None:
        self.series.record(at, value)

    @property
    def last(self) -> float:
        return self.series.samples[-1][1] if self.series.samples else 0.0

    def __repr__(self) -> str:
        return "<Gauge {}={}>".format(self.name, self.last)


class MetricsRegistry:
    """All instruments for one collection scope, keyed by name + labels."""

    def __init__(self) -> None:
        self._counters: Dict[LabelKey, CounterInstrument] = {}
        self._histograms: Dict[LabelKey, HistogramInstrument] = {}
        self._gauges: Dict[LabelKey, GaugeInstrument] = {}
        # Deferred-write hooks (see module docstring).  _flushing guards
        # against recursion: a hook folding its cells goes through the
        # keyed factories, which flush on entry.
        self._flush_hooks: List[Any] = []
        self._flushing = False

    # -- batched flushing --------------------------------------------------

    def add_flush_hook(self, hook) -> None:
        """Register a zero-arg callable run before every read.

        The contract for batching writers: accumulate locally, register
        one hook, fold everything pending into the real instruments when
        called.  Hooks run in registration order and must be no-ops when
        nothing is pending.
        """
        self._flush_hooks.append(hook)

    def _flush(self) -> None:
        if not self._flush_hooks or self._flushing:
            return
        self._flushing = True
        try:
            for hook in self._flush_hooks:
                hook()
        finally:
            self._flushing = False

    # -- instrument factories (create-on-first-use, cached) ----------------

    def counter(self, name: str, **labels: Any) -> CounterInstrument:
        if self._flush_hooks:
            self._flush()
        key = _key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = CounterInstrument(
                name, key[1])
        return instrument

    def histogram(self, name: str, **labels: Any) -> HistogramInstrument:
        if self._flush_hooks:
            self._flush()
        key = _key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = HistogramInstrument(
                name, key[1])
        return instrument

    def gauge(self, name: str, **labels: Any) -> GaugeInstrument:
        if self._flush_hooks:
            self._flush()
        key = _key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = GaugeInstrument(name, key[1])
        return instrument

    # -- bound handles (the hot-path API) ----------------------------------
    #
    # ``counter()`` re-keys (tuple(sorted(...)) + str()) on every call; the
    # bind_* methods are the documented way to pay that once and keep the
    # instrument, e.g. ``sent = registry.bind_counter("net.sent")`` at
    # construction, ``sent.add()`` per packet.  They return the same cached
    # instrument the keyed API would, so reads via ``counter()``/queries
    # see every bound update.

    def bind_counter(self, name: str, **labels: Any) -> CounterInstrument:
        return self.counter(name, **labels)

    def bind_histogram(self, name: str, **labels: Any) -> HistogramInstrument:
        return self.histogram(name, **labels)

    def bind_gauge(self, name: str, **labels: Any) -> GaugeInstrument:
        return self.gauge(name, **labels)

    # -- querying ----------------------------------------------------------

    def counters(self, name: Optional[str] = None
                 ) -> Dict[str, int]:
        """Counter values, optionally restricted to one instrument name.

        Keys are sorted (name, then label tuples), never insertion- or
        hash-ordered, so digests over the result are stable across
        ``PYTHONHASHSEED`` — the same guarantee :meth:`snapshot`,
        :meth:`histograms`, :meth:`gauges` and :meth:`records` make.
        """
        self._flush()
        return {_render(key): instrument.value
                for key, instrument in sorted(self._counters.items())
                if name is None or key[0] == name}

    def histograms(self, name: Optional[str] = None
                   ) -> Dict[str, Dict[str, float]]:
        """Histogram summaries, optionally restricted to one name
        (sorted keys; see :meth:`counters`)."""
        self._flush()
        return {_render(key): instrument.summary()
                for key, instrument in sorted(self._histograms.items())
                if name is None or key[0] == name}

    def gauges(self, name: Optional[str] = None) -> Dict[str, float]:
        """Last gauge values, optionally restricted to one name
        (sorted keys; see :meth:`counters`)."""
        self._flush()
        return {_render(key): instrument.last
                for key, instrument in sorted(self._gauges.items())
                if name is None or key[0] == name}

    # -- instrument iteration (the timeline recorder's read path) ----------
    #
    # Sorted ``(rendered_key, instrument)`` pairs.  Handing out the
    # instrument objects themselves lets a sampler difference live values
    # in O(instruments) per window — no per-label keyed lookups — which
    # is the same trick the bind_* hot-path API uses for writes.

    def counter_items(self) -> List[Tuple[str, CounterInstrument]]:
        self._flush()
        return [(_render(key), inst)
                for key, inst in sorted(self._counters.items())]

    def histogram_items(self) -> List[Tuple[str, HistogramInstrument]]:
        self._flush()
        return [(_render(key), inst)
                for key, inst in sorted(self._histograms.items())]

    def gauge_items(self) -> List[Tuple[str, GaugeInstrument]]:
        self._flush()
        return [(_render(key), inst)
                for key, inst in sorted(self._gauges.items())]

    # -- aggregation across label sets (the SLO layer's read path) ---------

    @staticmethod
    def _matches(key: LabelKey, name: str, labels: Dict[str, Any]) -> bool:
        """Does an instrument key match ``name`` + a label *subset*?"""
        if key[0] != name:
            return False
        have = dict(key[1])
        return all(have.get(k) == str(v) for k, v in labels.items())

    def counter_total(self, name: str, **labels: Any) -> int:
        """Sum of every counter named ``name`` whose labels ⊇ ``labels``."""
        self._flush()
        return sum(inst.value for key, inst in sorted(self._counters.items())
                   if self._matches(key, name, labels))

    def histogram_count(self, name: str, **labels: Any) -> int:
        """Total observations across matching histograms."""
        self._flush()
        return sum(inst.count
                   for key, inst in sorted(self._histograms.items())
                   if self._matches(key, name, labels))

    def histogram_count_below(self, name: str, threshold: float,
                              **labels: Any) -> int:
        """Observations ``<= threshold`` across matching histograms."""
        self._flush()
        return sum(inst.count_below(threshold)
                   for key, inst in sorted(self._histograms.items())
                   if self._matches(key, name, labels))

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Everything, as one nested dict for tables and assertions."""
        self._flush()
        return {
            "counters": {_render(key): inst.value
                         for key, inst in sorted(self._counters.items())},
            "histograms": {_render(key): inst.summary()
                           for key, inst in
                           sorted(self._histograms.items())},
            "gauges": {_render(key): inst.last
                       for key, inst in sorted(self._gauges.items())},
        }

    def records(self) -> Iterator[Dict[str, Any]]:
        """Flat metric records for the JSONL exporter."""
        self._flush()
        for key, counter in sorted(self._counters.items()):
            yield {"kind": "metric", "type": "counter", "name": key[0],
                   "labels": dict(key[1]), "value": counter.value}
        for key, hist in sorted(self._histograms.items()):
            yield {"kind": "metric", "type": "histogram", "name": key[0],
                   "labels": dict(key[1]), "summary": hist.summary()}
        for key, gauge in sorted(self._gauges.items()):
            yield {"kind": "metric", "type": "gauge", "name": key[0],
                   "labels": dict(key[1]), "value": gauge.last,
                   "samples": len(gauge.series.samples)}

    def reset(self) -> None:
        self._counters.clear()
        self._histograms.clear()
        self._gauges.clear()
        # Hooks go too: a batching writer holds bound handles into the
        # cleared instrument dicts, so replaying its cells would resurrect
        # orphaned instruments with partial counts.
        self._flush_hooks.clear()

    def __repr__(self) -> str:
        return "<MetricsRegistry counters={} histograms={} gauges={}>".format(
            len(self._counters), len(self._histograms), len(self._gauges))


class _NullCounter:
    """Shared no-op counter; reads as permanently zero."""

    __slots__ = ()
    name = ""
    labels: Dict[str, str] = {}
    value = 0

    def add(self, amount: int = 1) -> None:
        pass

    def __repr__(self) -> str:
        return "<NullCounter>"


class _NullHistogram:
    """Shared no-op histogram; reads as permanently empty."""

    __slots__ = ()
    name = ""
    labels: Dict[str, str] = {}
    count = 0
    mean = 0.0

    def record(self, value: float) -> None:
        pass

    def count_below(self, threshold: float) -> int:
        return 0

    def summary(self) -> Dict[str, float]:
        return {"count": 0}

    def __repr__(self) -> str:
        return "<NullHistogram>"


class _NullGauge:
    """Shared no-op gauge; reads as permanently zero."""

    __slots__ = ()
    name = ""
    labels: Dict[str, str] = {}
    last = 0.0

    def set(self, value: float, at: float) -> None:
        pass

    def __repr__(self) -> str:
        return "<NullGauge>"


NULL_COUNTER = _NullCounter()
NULL_HISTOGRAM = _NullHistogram()
NULL_GAUGE = _NullGauge()


class NullRegistry(MetricsRegistry):
    """A registry whose instruments are shared no-op singletons.

    Install it (``set_metrics(NullRegistry())`` or ``use_metrics``) to make
    every instrumentation site pay ~zero: no keying, no instrument
    creation, no storage.  All queries read as empty/zero, and gauges
    ignore their timestamps, so a NullRegistry can be shared across runs.
    """

    def counter(self, name: str, **labels: Any) -> CounterInstrument:
        return NULL_COUNTER  # type: ignore[return-value]

    def histogram(self, name: str, **labels: Any) -> HistogramInstrument:
        return NULL_HISTOGRAM  # type: ignore[return-value]

    def gauge(self, name: str, **labels: Any) -> GaugeInstrument:
        return NULL_GAUGE  # type: ignore[return-value]

    def __repr__(self) -> str:
        return "<NullRegistry>"


_metrics = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide registry consulted by instrumentation sites."""
    return _metrics


def set_metrics(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` (``None`` installs a fresh one); returns the
    previous one."""
    global _metrics
    previous = _metrics
    _metrics = registry if registry is not None else MetricsRegistry()
    return previous


class BoundCounterCache:
    """Bound counters for one instrument whose last label varies.

    For hot sites like per-destination retry counters: the keyed lookup
    (``registry.counter(name, node=..., dst=...)``) is paid once per
    (registry, label value) instead of per call.  The cache tracks the
    process-default registry by identity, so ``use_metrics`` scoping and
    mid-run swaps rebind transparently::

        self._retries = BoundCounterCache("chan.retries", "dst", node=name)
        ...
        self._retries.get(dst).add()
    """

    __slots__ = ("name", "label", "static", "_registry", "_bound")

    def __init__(self, name: str, label: str, **static: Any) -> None:
        self.name = name
        self.label = label
        self.static = static
        self._registry: Optional[MetricsRegistry] = None
        self._bound: Dict[str, CounterInstrument] = {}

    def get(self, value: str) -> CounterInstrument:
        registry = _metrics
        if registry is not self._registry:
            self._registry = registry
            self._bound = {}
        counter = self._bound.get(value)
        if counter is None:
            labels = dict(self.static)
            labels[self.label] = value
            counter = self._bound[value] = registry.bind_counter(
                self.name, **labels)
        return counter


@contextlib.contextmanager
def use_metrics(registry: MetricsRegistry):
    """Scope ``registry`` as the process default, restoring on exit."""
    previous = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)
