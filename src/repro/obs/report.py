"""Report CLI: latency and traffic tables from a JSONL observability dump.

Usage::

    PYTHONPATH=src python -m repro.obs.report run.jsonl

Reads the spans and metrics written by
:func:`repro.obs.export.dump_jsonl` and prints per-operation,
per-node and per-object latency tables plus a traffic/drop summary —
the "pattern of use" view §4.2.1 of the paper asks management
functions to maintain.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, Iterable, List, Sequence

from repro.obs.export import load_jsonl_tolerant
from repro.sim.monitor import Tally


def _table(title: str, headers: Sequence[str],
           rows: Iterable[Sequence[Any]], out=None,
           top: int = None) -> None:
    out = out if out is not None else sys.stdout
    rows = list(rows)
    clipped = 0
    if top is not None and len(rows) > top:
        clipped = len(rows) - top
        rows = rows[:top]
    rendered = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        widths = [max(w, len(cell)) for w, cell in zip(widths, row)]
    line = "  ".join("{:<{w}}".format(h, w=w)
                     for h, w in zip(headers, widths))
    out.write("\n" + title + "\n")
    out.write("-" * len(line) + "\n")
    out.write(line + "\n")
    for row in rendered:
        out.write("  ".join("{:<{w}}".format(cell, w=w)
                            for cell, w in zip(row, widths)) + "\n")
    if clipped:
        out.write("... {} more row(s); raise --top to see them\n".format(
            clipped))


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return "{:.4g}".format(cell)
    return str(cell)


def _durations(spans: Iterable[Dict[str, Any]], group_attr: str = None,
               ) -> Dict[str, Tally]:
    """Group finished spans into duration tallies.

    ``group_attr`` of ``None`` groups by span name; otherwise by that
    attribute (spans lacking it are skipped).
    """
    groups: Dict[str, Tally] = {}
    for span in spans:
        if span.get("end") is None:
            continue
        if group_attr is None:
            key = span["name"]
        else:
            key = span.get("attributes", {}).get(group_attr)
            if key is None:
                continue
            key = str(key)
        groups.setdefault(key, Tally(key)).record(
            span["end"] - span["start"])
    return groups


def render_report(records: List[Dict[str, Any]], out=None,
                  top: int = None) -> None:
    """Print every table the dump supports to ``out`` (default stdout).

    ``top`` clips each table to its first N rows (tables are sorted, so
    this is deterministic) — the knob that keeps reports of large dumps
    readable.
    """
    out = out if out is not None else sys.stdout
    spans = [r for r in records if r.get("kind") == "span"]
    metrics = [r for r in records if r.get("kind") == "metric"]
    traces = {s["trace_id"] for s in spans}
    out.write("{} spans in {} traces, {} metric records\n".format(
        len(spans), len(traces), len(metrics)))

    by_name = _durations(spans)
    _table("spans by operation",
           ["operation", "count", "mean (s)", "p95 (s)", "max (s)"],
           [(name, tally.count, tally.mean, tally.p95, tally.maximum)
            for name, tally in sorted(by_name.items())], out, top=top)

    invokes = [s for s in spans if s["name"] in
               ("node.invoke", "rpc.serve")]
    by_node = _durations(invokes, "node")
    if by_node:
        _table("invocation latency by node",
               ["node", "count", "mean (s)", "p95 (s)"],
               [(node, tally.count, tally.mean, tally.p95)
                for node, tally in sorted(by_node.items())], out, top=top)
    by_object = _durations(invokes, "oid")
    if by_object:
        _table("invocation latency by object",
               ["object", "count", "mean (s)", "p95 (s)"],
               [(oid, tally.count, tally.mean, tally.p95)
                for oid, tally in sorted(by_object.items())], out, top=top)

    transits = [s for s in spans if s["name"] == "net.transmit"]
    traffic: Dict[str, List[float]] = {}
    for span in transits:
        attrs = span.get("attributes", {})
        src = str(attrs.get("src", "?"))
        row = traffic.setdefault(src, [0, 0, 0])
        row[0] += 1
        row[1] += attrs.get("bytes", 0)
        if str(span.get("status", "ok")).startswith("dropped"):
            row[2] += 1
    if traffic:
        _table("traffic by source node",
               ["node", "packets", "bytes", "dropped"],
               [(src, int(c), int(b), int(d))
                for src, (c, b, d) in sorted(traffic.items())], out, top=top)

    counters = [m for m in metrics if m.get("type") == "counter"]
    if counters:
        _table("counters", ["name", "labels", "value"],
               [(m["name"],
                 ",".join("{}={}".format(k, v)
                          for k, v in sorted(m["labels"].items())) or "-",
                 m["value"]) for m in counters], out, top=top)
    histograms = [m for m in metrics if m.get("type") == "histogram"]
    if histograms:
        _table("histograms",
               ["name", "labels", "count", "mean", "p95"],
               [(m["name"],
                 ",".join("{}={}".format(k, v)
                          for k, v in sorted(m["labels"].items())) or "-",
                 int(m["summary"]["count"]), m["summary"]["mean"],
                 m["summary"]["p95"]) for m in histograms], out, top=top)


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarise a repro observability JSONL dump.")
    parser.add_argument("dump", help="path to a dump_jsonl() file")
    parser.add_argument("--top", type=int, default=None, metavar="N",
                        help="show at most N rows per table")
    options = parser.parse_args(argv)
    try:
        records, skipped = load_jsonl_tolerant(options.dump)
    except OSError as exc:
        print("error: cannot read {}: {}".format(options.dump, exc),
              file=sys.stderr)
        return 2
    if skipped:
        print("note: skipped {} malformed JSONL line(s) (truncated "
              "dump?)".format(skipped), file=sys.stderr)
    if not records:
        print("error: {} contains no parseable records".format(
            options.dump), file=sys.stderr)
        return 2
    try:
        render_report(records, top=options.top)
    except BrokenPipeError:
        # Reader (e.g. ``| head``) closed the pipe early; not an error.
        sys.stderr.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
