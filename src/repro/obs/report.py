"""Report CLI: latency and traffic tables from a JSONL observability dump.

Usage::

    PYTHONPATH=src python -m repro.obs.report run.jsonl
    PYTHONPATH=src python -m repro.obs.report run.jsonl --format json

Reads the spans and metrics written by
:func:`repro.obs.export.dump_jsonl` and prints per-operation,
per-node and per-object latency tables plus a traffic/drop summary —
the "pattern of use" view §4.2.1 of the paper asks management
functions to maintain.  ``--format json`` emits the same tables as one
machine-readable document (sorted keys, stable across runs) for
scripts and CI assertions; the exit status is non-zero when the dump
is unreadable or contains no parseable records.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Iterable, List, Sequence

from repro.obs._cli import (
    describe_meta,
    extract_meta,
    fmt_cell,
    load_dump_records,
    render_table,
)
from repro.sim.monitor import Tally


def _table(title: str, headers: Sequence[str],
           rows: Iterable[Sequence[Any]], out=None,
           top: int = None) -> None:
    render_table(title, headers, rows, out=out, top=top)


def _fmt(cell: Any) -> str:
    return fmt_cell(cell)


def _durations(spans: Iterable[Dict[str, Any]], group_attr: str = None,
               ) -> Dict[str, Tally]:
    """Group finished spans into duration tallies.

    ``group_attr`` of ``None`` groups by span name; otherwise by that
    attribute (spans lacking it are skipped).
    """
    groups: Dict[str, Tally] = {}
    for span in spans:
        if span.get("end") is None:
            continue
        if group_attr is None:
            key = span["name"]
        else:
            key = span.get("attributes", {}).get(group_attr)
            if key is None:
                continue
            key = str(key)
        groups.setdefault(key, Tally(key)).record(
            span["end"] - span["start"])
    return groups


def report_data(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The report as one JSON-safe dict (the ``--format json`` payload).

    Every table the text renderer prints, keyed by table, with rows in
    the same sorted order — so digests over the document are as stable
    as the dump itself.
    """
    meta = extract_meta(records)
    spans = [r for r in records if r.get("kind") == "span"]
    metrics = [r for r in records if r.get("kind") == "metric"]
    traces = {s["trace_id"] for s in spans}

    def rows(groups: Dict[str, Tally], *stats: str) -> Dict[str, Any]:
        return {key: {stat: getattr(tally, stat) for stat in stats}
                for key, tally in sorted(groups.items())}

    invokes = [s for s in spans if s["name"] in
               ("node.invoke", "rpc.serve")]
    traffic: Dict[str, List[float]] = {}
    for span in spans:
        if span["name"] != "net.transmit":
            continue
        attrs = span.get("attributes", {})
        src = str(attrs.get("src", "?"))
        row = traffic.setdefault(src, [0, 0, 0])
        row[0] += 1
        row[1] += attrs.get("bytes", 0)
        if str(span.get("status", "ok")).startswith("dropped"):
            row[2] += 1
    return {
        "meta": meta,
        "spans": len(spans),
        "traces": len(traces),
        "metric_records": len(metrics),
        "by_operation": rows(_durations(spans),
                             "count", "mean", "p95", "maximum"),
        "invocation_by_node": rows(_durations(invokes, "node"),
                                   "count", "mean", "p95"),
        "invocation_by_object": rows(_durations(invokes, "oid"),
                                     "count", "mean", "p95"),
        "traffic_by_source": {
            src: {"packets": int(c), "bytes": int(b), "dropped": int(d)}
            for src, (c, b, d) in sorted(traffic.items())},
        "counters": [
            {"name": m["name"], "labels": dict(sorted(m["labels"].items())),
             "value": m["value"]}
            for m in metrics if m.get("type") == "counter"],
        "histograms": [
            {"name": m["name"], "labels": dict(sorted(m["labels"].items())),
             "count": int(m["summary"]["count"]),
             "mean": m["summary"]["mean"], "p95": m["summary"]["p95"]}
            for m in metrics if m.get("type") == "histogram"],
    }


def _labels_cell(labels: Dict[str, str]) -> str:
    return ",".join("{}={}".format(k, v)
                    for k, v in sorted(labels.items())) or "-"


def render_report(records: List[Dict[str, Any]], out=None,
                  top: int = None) -> None:
    """Print every table the dump supports to ``out`` (default stdout).

    ``top`` clips each table to its first N rows (tables are sorted, so
    this is deterministic) — the knob that keeps reports of large dumps
    readable.
    """
    out = out if out is not None else sys.stdout
    data = report_data(records)
    meta_line = describe_meta(data["meta"])
    if meta_line is not None:
        out.write(meta_line + "\n")
    out.write("{} spans in {} traces, {} metric records\n".format(
        data["spans"], data["traces"], data["metric_records"]))

    _table("spans by operation",
           ["operation", "count", "mean (s)", "p95 (s)", "max (s)"],
           [(name, row["count"], row["mean"], row["p95"], row["maximum"])
            for name, row in data["by_operation"].items()], out, top=top)

    if data["invocation_by_node"]:
        _table("invocation latency by node",
               ["node", "count", "mean (s)", "p95 (s)"],
               [(node, row["count"], row["mean"], row["p95"])
                for node, row in data["invocation_by_node"].items()],
               out, top=top)
    if data["invocation_by_object"]:
        _table("invocation latency by object",
               ["object", "count", "mean (s)", "p95 (s)"],
               [(oid, row["count"], row["mean"], row["p95"])
                for oid, row in data["invocation_by_object"].items()],
               out, top=top)

    if data["traffic_by_source"]:
        _table("traffic by source node",
               ["node", "packets", "bytes", "dropped"],
               [(src, row["packets"], row["bytes"], row["dropped"])
                for src, row in data["traffic_by_source"].items()],
               out, top=top)

    if data["counters"]:
        _table("counters", ["name", "labels", "value"],
               [(m["name"], _labels_cell(m["labels"]), m["value"])
                for m in data["counters"]], out, top=top)
    if data["histograms"]:
        _table("histograms",
               ["name", "labels", "count", "mean", "p95"],
               [(m["name"], _labels_cell(m["labels"]), m["count"],
                 m["mean"], m["p95"]) for m in data["histograms"]],
               out, top=top)


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarise a repro observability JSONL dump.")
    parser.add_argument("dump", help="path to a dump_jsonl() file")
    parser.add_argument("--top", type=int, default=None, metavar="N",
                        help="show at most N rows per table")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", dest="fmt",
                        help="text tables (default) or one JSON document")
    options = parser.parse_args(argv)
    records = load_dump_records(options.dump)
    if records is None:
        return 2
    try:
        if options.fmt == "json":
            print(json.dumps(report_data(records), sort_keys=True,
                             indent=2))
        else:
            render_report(records, top=options.top)
    except BrokenPipeError:
        # Reader (e.g. ``| head``) closed the pipe early; not an error.
        sys.stderr.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
