"""Tracers: span factories plus the process-wide default.

The default tracer is a :class:`NoopTracer`, so instrumented hot paths in
the simulator cost nothing beyond a method call and never perturb
benchmark output.  Enable collection with::

    from repro import obs

    tracer = obs.enable_tracing()     # installs a recording Tracer
    ... run a simulation ...
    obs.dump_jsonl("run.jsonl", tracer=tracer)

Span ids are small deterministic counters (``t3``/``s17``), so traces are
reproducible run to run — a property the rest of the repo's deterministic
simulations rely on.
"""

from __future__ import annotations

import collections
import contextlib
import itertools
from typing import Any, Dict, List, Optional, Union

from repro.obs.sampling import Sampler
from repro.obs.span import NOOP_SPAN, NoopSpan, Span, SpanContext

ParentLike = Union[Span, SpanContext, Dict[str, str], None]


class Tracer:
    """Creates and retains spans; one instance per collection scope.

    ``sampler`` enables head-based trace sampling: the keep/drop decision
    is made once per trace, when its root span starts, and inherited by
    every descendant (including remote ones, via the propagated context).
    Unsampled spans are created but never retained, so a huge workload
    traced at rate *r* pays O(r) trace memory.

    ``max_spans`` bounds retention with a ring buffer: once full, the
    oldest span is evicted per new span (``evicted`` counts them), so
    memory stays bounded even at rate 1.0.
    """

    def __init__(self, sampler: Optional[Sampler] = None,
                 max_spans: Optional[int] = None,
                 tail_keep_errors: bool = False,
                 tail_buffer: Optional[int] = None) -> None:
        if max_spans is not None and max_spans <= 0:
            raise ValueError("max_spans must be positive")
        if tail_buffer is not None and tail_buffer <= 0:
            raise ValueError("tail_buffer must be positive")
        self.sampler = sampler
        self.max_spans = max_spans
        #: Tail-based sampling: when on, head-sampled-out spans are
        #: buffered per trace instead of discarded; :meth:`tail_flush`
        #: promotes any buffered trace containing a non-ok span (error,
        #: drop) into :attr:`spans` and discards the rest.  Off by
        #: default — runs that never opt in are byte-identical.
        self.tail_keep_errors = tail_keep_errors
        self.tail_buffer = tail_buffer
        self.spans = collections.deque(maxlen=max_spans) \
            if max_spans is not None else []
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self._tail_pending: "collections.OrderedDict[str, List[Span]]" = \
            collections.OrderedDict()
        self._tail_pending_spans = 0
        # Trace ids evicted from the tail buffer mid-run.  Later spans
        # of an evicted trace must be discarded too — re-buffering them
        # would let tail_flush() promote a fragment of the trace (the
        # spans that arrived after the eviction) as if it were whole.
        self._tail_evicted: set = set()
        #: Spans pushed out of the ring buffer.
        self.evicted = 0
        #: Spans discarded by the head sampler (never retained).
        self.sampled_out = 0
        #: Head-sampled-out spans rescued by tail sampling.
        self.tail_promoted = 0

    @property
    def enabled(self) -> bool:
        return True

    def start_span(self, name: str, at: float, parent: ParentLike = None,
                   **attributes: Any) -> Span:
        """Open a span at simulated time ``at``.

        ``parent`` may be another :class:`Span`, a :class:`SpanContext`, a
        plain context dict (as extracted from packet headers) or ``None``
        for a new root.  NoopSpan parents are treated as roots.
        """
        parent_ctx = _as_context(parent)
        if parent_ctx is None:
            trace_id = "t{}".format(next(self._trace_ids))
            parent_id = None
            sampled = True if self.sampler is None \
                else self.sampler.sample(trace_id, name)
        else:
            trace_id = parent_ctx.trace_id
            parent_id = parent_ctx.span_id
            sampled = getattr(parent_ctx, "sampled", True)
        context = SpanContext(trace_id, "s{}".format(next(self._span_ids)),
                              sampled=sampled)
        span = Span(name, context, parent_id, at, attributes or None,
                    recorded=sampled or self.tail_keep_errors)
        if sampled:
            self._retain(span)
        elif self.tail_keep_errors:
            # Record but hold aside: tail_flush() decides the trace's
            # fate once its outcome (ok vs. error/drop) is known.
            self._tail_hold(span)
        else:
            self.sampled_out += 1
        return span

    def _retain(self, span: Span) -> None:
        if self.max_spans is not None and len(self.spans) == self.max_spans:
            self.evicted += 1
        self.spans.append(span)

    def _tail_hold(self, span: Span) -> None:
        if span.trace_id in self._tail_evicted:
            # The trace already lost earlier spans to buffer overflow;
            # holding this one would promote a torso without its head.
            self.sampled_out += 1
            return
        trace = self._tail_pending.setdefault(span.trace_id, [])
        trace.append(span)
        self._tail_pending_spans += 1
        while self.tail_buffer is not None \
                and self._tail_pending_spans > self.tail_buffer \
                and len(self._tail_pending) > 1:
            # Overflow: the oldest buffered trace loses its chance.
            trace_id, evicted = self._tail_pending.popitem(last=False)
            self._tail_pending_spans -= len(evicted)
            self.sampled_out += len(evicted)
            self._tail_evicted.add(trace_id)

    def tail_flush(self) -> int:
        """Resolve the tail-sampling buffer; returns spans promoted.

        Buffered traces containing at least one non-``ok`` span (an
        error or a packet drop) are promoted into :attr:`spans` in
        buffering order; fully healthy traces are discarded (counted in
        :attr:`sampled_out`, exactly as if the head decision had stood).
        Promotion is all-or-nothing: a trace larger than ``max_spans``
        (which could only ever land truncated, evicting its own root
        out of the ring) is discarded whole rather than half-promoted.
        Call after a workload settles — typically right before export.
        """
        promoted = 0
        for spans in self._tail_pending.values():
            keep = any(span.status != "ok" for span in spans)
            if keep and self.max_spans is not None \
                    and len(spans) > self.max_spans:
                keep = False
            if keep:
                for span in spans:
                    self._retain(span)
                promoted += len(spans)
                self.tail_promoted += len(spans)
            else:
                self.sampled_out += len(spans)
        self._tail_pending.clear()
        self._tail_pending_spans = 0
        self._tail_evicted.clear()
        return promoted

    @contextlib.contextmanager
    def span(self, name: str, env, parent: ParentLike = None,
             **attributes: Any):
        """Context manager: open at ``env.now``, finish at exit."""
        span = self.start_span(name, at=env.now, parent=parent,
                               **attributes)
        try:
            yield span
        finally:
            span.finish(at=env.now)

    def finished_spans(self) -> List[Span]:
        """Spans whose :meth:`~repro.obs.span.Span.finish` has run."""
        return [span for span in self.spans if span.end is not None]

    def trace(self, trace_id: str) -> List[Span]:
        """All spans belonging to one trace, in creation order."""
        return [span for span in self.spans
                if span.context.trace_id == trace_id]

    def clear(self) -> None:
        self.spans = collections.deque(maxlen=self.max_spans) \
            if self.max_spans is not None else []
        self._tail_pending.clear()
        self._tail_pending_spans = 0
        self._tail_evicted.clear()
        self.evicted = 0
        self.sampled_out = 0
        self.tail_promoted = 0

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:
        return "<Tracer spans={}{}{}>".format(
            len(self.spans),
            " sampler={!r}".format(self.sampler) if self.sampler else "",
            " evicted={}".format(self.evicted) if self.evicted else "")


class NoopTracer:
    """The disabled tracer: records nothing, allocates nothing."""

    spans: List[Span] = []
    sampler: Optional[Sampler] = None
    max_spans: Optional[int] = None
    evicted = 0
    sampled_out = 0
    tail_keep_errors = False
    tail_buffer: Optional[int] = None
    tail_promoted = 0

    def tail_flush(self) -> int:
        return 0

    @property
    def enabled(self) -> bool:
        return False

    def start_span(self, name: str, at: float, parent: ParentLike = None,
                   **attributes: Any) -> NoopSpan:
        return NOOP_SPAN

    @contextlib.contextmanager
    def span(self, name: str, env, parent: ParentLike = None,
             **attributes: Any):
        yield NOOP_SPAN

    def finished_spans(self) -> List[Span]:
        return []

    def trace(self, trace_id: str) -> List[Span]:
        return []

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "<NoopTracer>"


#: The shared disabled tracer (the process default).
NOOP_TRACER = NoopTracer()

_tracer: Union[Tracer, NoopTracer] = NOOP_TRACER


def get_tracer() -> Union[Tracer, NoopTracer]:
    """The process-wide tracer consulted by instrumentation sites."""
    return _tracer


def set_tracer(tracer: Optional[Union[Tracer, NoopTracer]]
               ) -> Union[Tracer, NoopTracer]:
    """Install ``tracer`` (``None`` disables); returns the previous one."""
    global _tracer
    previous = _tracer
    _tracer = tracer if tracer is not None else NOOP_TRACER
    return previous


def enable_tracing(sampler: Optional[Sampler] = None,
                   max_spans: Optional[int] = None,
                   tail_keep_errors: bool = False,
                   tail_buffer: Optional[int] = None) -> Tracer:
    """Install and return a fresh recording tracer.

    ``sampler`` turns on head-based trace sampling; ``max_spans`` bounds
    retention with a ring buffer; ``tail_keep_errors`` additionally
    rescues head-sampled-out traces that turn out to contain an error
    or drop span (resolve with :meth:`Tracer.tail_flush`;
    ``tail_buffer`` bounds the holding area).  See :class:`Tracer`.
    """
    tracer = Tracer(sampler=sampler, max_spans=max_spans,
                    tail_keep_errors=tail_keep_errors,
                    tail_buffer=tail_buffer)
    set_tracer(tracer)
    return tracer


def disable_tracing() -> None:
    """Restore the zero-cost no-op default."""
    set_tracer(NOOP_TRACER)


@contextlib.contextmanager
def use_tracer(tracer: Union[Tracer, NoopTracer]):
    """Scope ``tracer`` as the process default, restoring on exit."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def _as_context(parent: ParentLike) -> Optional[SpanContext]:
    if parent is None or isinstance(parent, NoopSpan):
        return None
    if isinstance(parent, Span):
        return parent.context
    if isinstance(parent, SpanContext):
        return parent
    if isinstance(parent, dict):
        return SpanContext.from_dict(parent)
    raise TypeError("cannot parent a span under {!r}".format(parent))
