"""Critical-path extraction over span trees.

A trace's duration is set by one chain of spans — the *critical path*.
Shaving time anywhere else changes nothing.  This module walks each
trace's span tree backwards from the root's end:

* at any point in time, the deepest span still covering the frontier
  owns it;
* among a span's children, the one that ends latest (before the
  current frontier) is entered next; the gap between that child's end
  and the frontier is the parent's **self time**;
* the walk recurses into the child, then resumes in the parent from
  the child's start, until the span's own start is reached.

Self-time contributions therefore partition the root's duration
exactly: they sum to it, each second attributed to exactly one span.
Aggregating contributions across traces by operation yields the "top
bottleneck operations" table — the place an engineer should look
first.

Everything is deterministic: children tie-break on ``(end, start,
span_id)`` and output rows are sorted, so same-seed runs produce
byte-identical critical paths.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.obs._cli import render_table


def _operation(span: Dict[str, Any]) -> str:
    """The aggregation key: explicit ``op`` attribute, else span name."""
    op = span.get("attributes", {}).get("op")
    return str(op) if op is not None else span["name"]


def by_trace(records: Iterable[Dict[str, Any]]
             ) -> Dict[str, List[Dict[str, Any]]]:
    """Finished spans of a mixed dump, grouped by trace id (sorted)."""
    traces: Dict[str, List[Dict[str, Any]]] = {}
    for record in records:
        if record.get("kind", "span") != "span":
            continue
        if record.get("end") is None:
            continue
        traces.setdefault(record["trace_id"], []).append(record)
    return {trace_id: traces[trace_id] for trace_id in sorted(traces)}


def critical_path(spans: List[Dict[str, Any]]
                  ) -> Optional[Dict[str, Any]]:
    """The critical path of one trace's finished spans.

    Returns ``None`` when the trace has no root (all spans parented
    outside the dump — e.g. sampled-out ancestors).  Otherwise a
    JSON-safe document::

        {"trace_id": ..., "root": ..., "duration": ...,
         "steps": [{"op", "name", "self", "share", "count"}, ...]}

    ``steps`` aggregate self time per span (ordered by self time
    descending); their ``self`` values sum to ``duration``.
    """
    if not spans:
        return None
    ids = {span["span_id"] for span in spans}
    roots = [span for span in spans
             if span.get("parent_id") not in ids]
    orphan_roots = [span for span in roots
                    if span.get("parent_id") is not None]
    roots = [span for span in roots if span.get("parent_id") is None]
    if not roots:
        return None
    # Multi-root traces (rare; e.g. a ring-evicted parent) keep the
    # earliest-starting root; the rest are unreachable from it anyway.
    root = min(roots, key=lambda s: (s["start"], s["span_id"]))
    children: Dict[str, List[Dict[str, Any]]] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent in ids:
            children.setdefault(parent, []).append(span)

    self_time: Dict[str, float] = {}
    self_count: Dict[str, int] = {}

    def walk(span: Dict[str, Any], frontier: float) -> None:
        """Attribute [span.start, frontier] between span and children."""
        key = span["span_id"]
        kids = sorted(
            children.get(key, ()),
            key=lambda s: (-s["end"], -s["start"], s["span_id"]))
        cursor = frontier
        for kid in kids:
            if kid["start"] >= cursor:
                continue
            end = min(kid["end"], cursor)
            if end <= span["start"]:
                break
            _credit(span, cursor - end)
            walk(kid, end)
            cursor = max(kid["start"], span["start"])
            if cursor <= span["start"]:
                break
        if cursor > span["start"]:
            _credit(span, cursor - span["start"])

    def _credit(span: Dict[str, Any], amount: float) -> None:
        if amount <= 0:
            return
        op = _operation(span)
        self_time[op] = self_time.get(op, 0.0) + amount
        self_count[op] = self_count.get(op, 0) + 1

    walk(root, root["end"])
    duration = root["end"] - root["start"]
    steps = [{"op": op,
              "self": self_time[op],
              "share": self_time[op] / duration if duration > 0 else 0.0,
              "count": self_count[op]}
             for op in sorted(self_time,
                              key=lambda op: (-self_time[op], op))]
    return {
        "trace_id": root["trace_id"],
        "root": root["name"],
        "duration": duration,
        "orphan_spans": len(orphan_roots),
        "steps": steps,
    }


def critical_summary(records: Iterable[Dict[str, Any]]
                     ) -> Dict[str, Any]:
    """Critical paths for every trace in a dump, plus the aggregate.

    The aggregate ``bottlenecks`` table sums self time per operation
    across all traces: ``share`` is the fraction of total root
    duration the operation owns on critical paths — the repo-wide
    answer to "what should we speed up first?".
    """
    paths = []
    for trace_id, spans in by_trace(records).items():
        path = critical_path(spans)
        if path is not None:
            paths.append(path)
    total = sum(path["duration"] for path in paths)
    agg_self: Dict[str, float] = {}
    agg_traces: Dict[str, int] = {}
    for path in paths:
        for step in path["steps"]:
            op = step["op"]
            agg_self[op] = agg_self.get(op, 0.0) + step["self"]
            agg_traces[op] = agg_traces.get(op, 0) + 1
    bottlenecks = [{"op": op,
                    "self": agg_self[op],
                    "share": agg_self[op] / total if total > 0 else 0.0,
                    "traces": agg_traces[op]}
                   for op in sorted(agg_self,
                                    key=lambda op: (-agg_self[op], op))]
    return {
        "traces": len(paths),
        "total_duration": total,
        "paths": paths,
        "bottlenecks": bottlenecks,
    }


def render_critical(summary: Dict[str, Any], out=None,
                    top: Optional[int] = None,
                    per_trace: bool = False) -> None:
    """Print the bottleneck table (and per-trace paths on request)."""
    render_table(
        "critical-path bottlenecks ({} trace(s), {:.4g}s on path)".format(
            summary["traces"], summary["total_duration"]),
        ["operation", "self (s)", "share", "traces"],
        [(row["op"], row["self"], row["share"], row["traces"])
         for row in summary["bottlenecks"]],
        out=out, top=top)
    if per_trace:
        for path in summary["paths"]:
            render_table(
                "critical path of {} ({}, {:.4g}s)".format(
                    path["trace_id"], path["root"], path["duration"]),
                ["operation", "self (s)", "share", "segments"],
                [(step["op"], step["self"], step["share"], step["count"])
                 for step in path["steps"]],
                out=out, top=top)
