"""Trace-context propagation through packet headers.

The simulated network carries arbitrary header dicts on every
:class:`~repro.net.packet.Packet`; the trace context rides under one
reserved key as a plain ``{"trace_id", "span_id"}`` dict, so it survives
any serialisation the transport applies (it is already JSON-safe).

The head-sampling decision (:mod:`repro.obs.sampling`) travels with the
context as an extra ``"sampled": false`` entry — present *only* for
sampled-out traces, so headers stay byte-identical to the pre-sampling
format whenever no sampler is installed.  Receivers extract the flag via
:meth:`SpanContext.from_dict` and their tracers then skip retention for
the whole remote subtree, keeping sampled traces complete end to end and
unsampled ones free everywhere.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

from repro.obs.span import NoopSpan, Span, SpanContext

#: The packet-header key carrying the trace context.
TRACE_HEADER = "trace"


def inject(span: Union[Span, NoopSpan, SpanContext, None],
           headers: Dict[str, Any]) -> Dict[str, Any]:
    """Write ``span``'s context into ``headers`` (no-op for noop spans)."""
    context = span if isinstance(span, SpanContext) \
        else getattr(span, "context", None)
    if context is not None:
        headers[TRACE_HEADER] = context.to_dict()
    return headers


def extract(headers: Optional[Dict[str, Any]]) -> Optional[SpanContext]:
    """Read a trace context out of packet ``headers``, if present."""
    if not headers:
        return None
    data = headers.get(TRACE_HEADER)
    if not data:
        return None
    return SpanContext.from_dict(data)
