"""Observability: causal tracing, the metrics registry and exporters.

The paper's management requirement (§4.2.1) — *"management functions
must be aware of the pattern of use of objects"* — needs a measurement
substrate.  This package provides it for every layer of the middleware:

* **Tracing** — :class:`Tracer` / :class:`Span` build causal trees across
  nucleus invocation, packet transit and remote execution, with contexts
  propagated through packet headers (:mod:`repro.obs.propagation`).  The
  process default is a zero-cost :class:`NoopTracer`; call
  :func:`enable_tracing` to collect.
* **Metrics** — :class:`MetricsRegistry` unifies counters, histograms and
  gauges behind named, labelled instruments with one :meth:`snapshot()
  <MetricsRegistry.snapshot>`; ``bind_counter``/``bind_histogram``/
  ``bind_gauge`` return the instrument itself for hot paths, and
  :class:`NullRegistry` makes metrics-off runs pay ~zero.
* **Sampling** — :class:`Sampler` makes a deterministic keep/drop
  decision per trace (same seed + rate ⇒ same traces, run after run);
  the decision rides in packet headers so sampled traces stay complete
  across nuclei, and ``max_spans`` bounds retention with a ring buffer.
* **Profiling** — :class:`SpanProfile` turns span enter/exit into
  per-operation / per-node / per-actor simulated-time accounting and
  folded flame-graph stacks; ``python -m repro.obs.profile`` runs it
  over any registered workload.
* **SLOs** — :mod:`repro.obs.slo` evaluates declarative objectives over
  the registry with multi-window burn rates and records alert events.
* **Export** — :func:`dump_jsonl` (machine-readable) and
  :func:`dump_chrome_trace` (opens in ``about:tracing`` / Perfetto), plus
  the ``python -m repro.obs.report`` CLI for latency/traffic tables.
* **Timeline** — :class:`TimelineRecorder` snapshots instrument deltas
  at fixed sim-time windows (zero extra events, so replay digests are
  unaffected); :func:`dimension_table` rolls windows + spans into
  per-node/link/actor/op hot-spot tables with Zipf-skew coefficients;
  :func:`critical_summary` extracts per-trace critical paths.  The
  ``python -m repro.obs.dashboard`` CLI fronts all three.
* **Flight recorder** — :class:`FlightRecorder` journals kernel-level
  decisions (dispatch, RNG draws, packet hops/drops, lock transitions,
  actor lifecycles) into a bounded ring with chained per-epoch digests;
  ``python -m repro.obs.divergence`` binary-searches two runs' digests
  to the first divergent epoch and prints the first mismatched record
  with causal context.  :class:`BlackBox` dumps the last flight
  records, metrics and open spans when a workload raises or an SLO
  burn alert fires.

Quick start::

    from repro import obs

    tracer = obs.enable_tracing(sampler=obs.Sampler(rate=0.1, seed=31))
    ... run any simulation ...
    obs.dump_jsonl("run.jsonl", tracer=tracer)
    obs.dump_chrome_trace("run.trace.json", tracer=tracer)
    obs.disable_tracing()
"""

from repro.obs.export import (
    META_SCHEMA,
    chrome_trace,
    dump_chrome_trace,
    dump_jsonl,
    load_jsonl,
    load_jsonl_tolerant,
    meta_record,
)
from repro.obs.flight import (
    NOOP_FLIGHT,
    BlackBox,
    FlightRecorder,
    NoopFlightRecorder,
    disable_flight,
    enable_flight,
    get_flight,
    set_flight,
    use_flight,
)
from repro.obs.metrics import (
    CounterInstrument,
    GaugeInstrument,
    HistogramInstrument,
    MetricsRegistry,
    NullRegistry,
    get_metrics,
    set_metrics,
    use_metrics,
)
from repro.obs.critical import critical_path, critical_summary
from repro.obs.profile import SpanProfile, render_profile
from repro.obs.propagation import TRACE_HEADER, extract, inject
from repro.obs.sampling import Sampler
from repro.obs.span import NOOP_SPAN, NoopSpan, Span, SpanContext
from repro.obs.tables import dimension_table, zipf_skew
from repro.obs.timeline import TimelineRecorder, load_windows
from repro.obs.tracer import (
    NOOP_TRACER,
    NoopTracer,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "BlackBox",
    "CounterInstrument",
    "FlightRecorder",
    "GaugeInstrument",
    "HistogramInstrument",
    "META_SCHEMA",
    "MetricsRegistry",
    "NOOP_FLIGHT",
    "NOOP_SPAN",
    "NOOP_TRACER",
    "NoopFlightRecorder",
    "NoopSpan",
    "NoopTracer",
    "NullRegistry",
    "Sampler",
    "Span",
    "SpanContext",
    "SpanProfile",
    "TRACE_HEADER",
    "TimelineRecorder",
    "Tracer",
    "chrome_trace",
    "critical_path",
    "critical_summary",
    "dimension_table",
    "disable_flight",
    "disable_tracing",
    "dump_chrome_trace",
    "dump_jsonl",
    "enable_flight",
    "enable_tracing",
    "extract",
    "get_flight",
    "get_metrics",
    "get_tracer",
    "inject",
    "load_jsonl",
    "load_jsonl_tolerant",
    "load_windows",
    "meta_record",
    "render_profile",
    "set_flight",
    "set_metrics",
    "set_tracer",
    "use_flight",
    "use_metrics",
    "use_tracer",
    "zipf_skew",
]
