"""Sim-time timeline recorder: windowed instrument deltas.

:meth:`MetricsRegistry.snapshot` answers "what happened over the whole
run"; this module answers *when* — which node was hot at t=40s, which
link's byte rate spiked during the partition.  A
:class:`TimelineRecorder` rides the environment's window-boundary hook
(:meth:`Environment.set_window_hook
<repro.sim.environment.Environment.set_window_hook>`): at every
``resolution`` seconds of simulated time it differences the live
instruments of one :class:`~repro.obs.metrics.MetricsRegistry` into a
window record — counter deltas, per-window histogram distributions
(count/mean/p50/p95/p99/max over just that window's observations) and
latest gauge values.

Design constraints, in order:

* **No-op by default.**  Nothing records unless a recorder is
  constructed; the hook itself schedules zero events, so even a
  recorder-*on* run keeps ``events_scheduled`` / ``events_processed``
  byte-identical to a recorder-off run — replay digests cannot tell.
* **Deterministic cuts.**  The hook fires before the callbacks of the
  event that reached the boundary, so window ``[a, b)`` contains
  exactly the effects of events with ``t < b``; same seed ⇒ same
  windows, byte for byte.
* **O(instruments) sampling.**  Each flush walks the registry's sorted
  instrument handles once (:meth:`MetricsRegistry.counter_items` et
  al.) — the bound-instrument objects are read directly, with no
  per-label keyed lookups.
* **Bounded memory.**  ``retention`` keeps the last N windows in a ring
  (:attr:`evicted` counts the rest); histogram deltas are tracked by
  observation index, not by copying values.

Quick start::

    recorder = TimelineRecorder(env, resolution=1.0, retention=600)
    ... run the simulation ...
    recorder.finish()               # flush the trailing partial window
    recorder.dump_jsonl("run.timeline.jsonl")
"""

from __future__ import annotations

import collections
import json
from typing import Any, Dict, Iterable, Iterator, List, Optional

from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.sim.monitor import Tally


def _window_summary(values: List[float]) -> Dict[str, float]:
    """Distribution stats over one window's observations."""
    tally = Tally()
    tally.values = [float(value) for value in values]
    return {
        "count": tally.count,
        "mean": tally.mean,
        "p50": tally.median,
        "p95": tally.p95,
        "p99": tally.p99,
        "max": tally.maximum,
    }


class TimelineRecorder:
    """Snapshots registry deltas at fixed sim-time windows.

    Windows are plain JSON-safe dicts (the JSONL rows)::

        {"kind": "window", "index": 3, "start": 1.5, "end": 2.0,
         "counters":   {"net.node.sent{node=host0}": 12, ...},   # deltas
         "histograms": {"rpc.latency{node=host1}": {"count": 4,
                        "mean": ..., "p50": ..., "p95": ..., "p99": ...,
                        "max": ...}, ...},                # this window only
         "gauges":     {"slo.burn_rate{slo=avail}": 1.5, ...}}   # latest

    Only instruments that changed during a window appear in it; windows
    with no activity are still emitted (empty dicts) so the timeline
    stays contiguous and "what happened at t=40" always has an answer.
    A trailing partial window flushed by :meth:`finish` carries
    ``"partial": true``.

    ``registry`` defaults to the process-wide registry at construction
    time; the recorder keeps reading that same registry even if the
    process default is later swapped (scoped ``use_metrics`` runs stay
    self-contained).
    """

    def __init__(self, env, registry: Optional[MetricsRegistry] = None,
                 resolution: float = 1.0,
                 retention: Optional[int] = None,
                 start: Optional[float] = None) -> None:
        if retention is not None and retention <= 0:
            raise ValueError("retention must be positive")
        self.env = env
        self.registry = registry if registry is not None else get_metrics()
        self.resolution = float(resolution)
        self.retention = retention
        self.windows: Any = collections.deque(maxlen=retention) \
            if retention is not None else []
        #: Windows flushed over the recorder's lifetime (>= len(windows)).
        self.flushed = 0
        #: Windows pushed out of the retention ring.
        self.evicted = 0
        self._counter_last: Dict[str, int] = {}
        self._hist_seen: Dict[str, int] = {}
        self._gauge_seen: Dict[str, int] = {}
        self._last_boundary = env.now if start is None else float(start)
        self._closed = False
        env.set_window_hook(self.resolution, self._on_boundary,
                            start=self._last_boundary)

    # -- collection --------------------------------------------------------

    def _on_boundary(self, boundary: float) -> None:
        self._flush(boundary, partial=False)

    def _flush(self, end: float, partial: bool) -> None:
        window: Dict[str, Any] = {
            "kind": "window",
            "index": self.flushed,
            "start": self._last_boundary,
            "end": end,
            "counters": {},
            "histograms": {},
            "gauges": {},
        }
        if partial:
            window["partial"] = True
        counters = window["counters"]
        for rendered, inst in self.registry.counter_items():
            value = inst.value
            last = self._counter_last.get(rendered, 0)
            if value != last:
                counters[rendered] = value - last
                self._counter_last[rendered] = value
        histograms = window["histograms"]
        for rendered, inst in self.registry.histogram_items():
            values = inst.tally.values
            seen = self._hist_seen.get(rendered, 0)
            if len(values) > seen:
                histograms[rendered] = _window_summary(values[seen:])
                self._hist_seen[rendered] = len(values)
        gauges = window["gauges"]
        for rendered, inst in self.registry.gauge_items():
            samples = inst.series.samples
            seen = self._gauge_seen.get(rendered, 0)
            if len(samples) > seen:
                gauges[rendered] = samples[-1][1]
                self._gauge_seen[rendered] = len(samples)
        if self.retention is not None \
                and len(self.windows) == self.retention:
            self.evicted += 1
        self.windows.append(window)
        self.flushed += 1
        self._last_boundary = end

    def finish(self) -> int:
        """Flush the trailing partial window and release the hook.

        Idempotent; returns the total number of windows flushed.  Call
        after the simulation settles (``env.run()`` returned) so the
        tail of the run — activity since the last whole boundary — is
        not silently dropped.
        """
        if not self._closed:
            if self.env.now > self._last_boundary:
                self._flush(self.env.now, partial=True)
            self.env.clear_window_hook()
            self._closed = True
        return self.flushed

    # -- reading -----------------------------------------------------------

    def window_at(self, at: float) -> Optional[Dict[str, Any]]:
        """The retained window covering sim time ``at`` (or ``None``).

        This is the "which node was hot at t=40s?" accessor: look the
        window up, read its ``counters``.
        """
        for window in self.windows:
            if window["start"] <= at < window["end"]:
                return window
        return None

    def series(self, rendered_key: str) -> List[Any]:
        """``(start, delta)`` per retained window for one counter key."""
        return [(w["start"], w["counters"].get(rendered_key, 0))
                for w in self.windows]

    def records(self) -> Iterator[Dict[str, Any]]:
        """The retained windows, oldest first (the JSONL export rows)."""
        return iter(self.windows)

    def dump_jsonl(self, path: str) -> int:
        """Write the retained windows to ``path``; returns line count."""
        lines = 0
        with open(path, "w") as handle:
            for window in self.windows:
                handle.write(json.dumps(window, sort_keys=True) + "\n")
                lines += 1
        return lines

    def __len__(self) -> int:
        return len(self.windows)

    def __repr__(self) -> str:
        return "<TimelineRecorder windows={} resolution={}{}>".format(
            len(self.windows), self.resolution,
            " evicted={}".format(self.evicted) if self.evicted else "")


def load_windows(records: Iterable[Dict[str, Any]]
                 ) -> List[Dict[str, Any]]:
    """The window records of a mixed JSONL dump, in index order."""
    windows = [r for r in records if r.get("kind") == "window"]
    windows.sort(key=lambda w: w.get("index", 0))
    return windows
