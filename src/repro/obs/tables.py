"""Hot-spot rollup tables over timeline windows and span dumps.

Answers "who is hot?" per label dimension — node, link, actor,
operation — by folding two complementary sources into one table per
dimension:

* **timeline windows** (:mod:`repro.obs.timeline`) supply counter
  totals, sustained rates and the *peak window* ("node host3 was
  hottest at t=40s");
* **span dumps** supply exact latency percentiles (p50/p95/p99) per
  dimension value; where a key has no spans, the per-window histogram
  summaries stand in with a count-weighted approximation.

Each table also reports a Zipf-skew coefficient for its dimension: the
negated least-squares slope of ``log(count)`` against ``log(rank)``.
A coefficient near 0 means balanced load; near 1, the classic Zipf
hot-spot profile; above 1, a few keys dominate outright — the signal
the paper's §4.2.1 "pattern of use" management functions exist to
surface.

All rows, keys and ties are ordered deterministically (rate desc, then
key), so same-seed runs render byte-identical tables.
"""

from __future__ import annotations

import math
import sys
from typing import Any, Dict, Iterable, List, Optional

from repro.obs._cli import parse_rendered, render_table
from repro.sim.monitor import Tally

#: Dimension name -> the instrument label it rolls up on, the counter
#: whose per-window delta defines "hot" for the peak column, and (for
#: dimensions that have one) the per-reason drop counter broken out
#: into the ``drops`` column.
DIMENSIONS: Dict[str, Dict[str, Any]] = {
    "node": {"label": "node", "primary": "net.node.sent"},
    "link": {"label": "link", "primary": "net.bytes",
             "drops": "net.link.drops"},
    "actor": {"label": "actor", "primary": None},
    "op": {"label": "op", "primary": "node.op.invocations"},
}


def zipf_skew(counts: Iterable[float]) -> float:
    """Least-squares slope magnitude of log(count) vs log(rank).

    Positive counts are ranked descending; fewer than two leave the fit
    undefined, reported as 0.0 (no evidence of skew).
    """
    ranked = sorted((float(c) for c in counts if c > 0), reverse=True)
    if len(ranked) < 2:
        return 0.0
    xs = [math.log(rank) for rank in range(1, len(ranked) + 1)]
    ys = [math.log(count) for count in ranked]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    var = sum((x - mean_x) ** 2 for x in xs)
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    return -cov / var


def _span_key(span: Dict[str, Any], label: str) -> Optional[str]:
    """The dimension value a span contributes to (or ``None``)."""
    attrs = span.get("attributes", {})
    value = attrs.get(label)
    if value is None and label == "op":
        # Spans without an explicit op attribute group under their name,
        # so node.invoke{op=post} and bare infrastructure spans both land
        # in the operation table.
        value = span.get("name")
    return None if value is None else str(value)


def dimension_table(dim: str,
                    windows: Optional[List[Dict[str, Any]]] = None,
                    spans: Optional[List[Dict[str, Any]]] = None
                    ) -> Dict[str, Any]:
    """One dimension's rollup as a JSON-safe document.

    ``rows`` are sorted by rate descending (key ascending on ties) —
    already in top-K order, so clipping the list IS the top-K table.
    Each row carries the summed counter totals for the key, the
    sustained rate over the covered duration, the peak window for the
    dimension's primary counter, and latency percentiles.
    """
    if dim not in DIMENSIONS:
        raise KeyError("unknown dimension {!r} (have: {})".format(
            dim, ", ".join(sorted(DIMENSIONS))))
    spec = DIMENSIONS[dim]
    label = spec["label"]
    primary = spec["primary"]
    drops_counter = spec.get("drops")
    windows = windows if windows is not None else []
    spans = spans if spans is not None else []

    duration = 0.0
    if windows:
        duration = windows[-1]["end"] - windows[0]["start"]

    counters: Dict[str, Dict[str, float]] = {}
    peaks: Dict[str, Any] = {}
    hist_acc: Dict[str, List[float]] = {}
    drop_acc: Dict[str, Dict[str, float]] = {}
    for window in windows:
        for rendered, delta in sorted(window.get("counters", {}).items()):
            name, labels = parse_rendered(rendered)
            key = labels.get(label)
            if key is None:
                continue
            per = counters.setdefault(key, {})
            per[name] = per.get(name, 0) + delta
            if name == primary:
                best = peaks.get(key)
                if best is None or delta > best[1]:
                    peaks[key] = (window["start"], delta)
            if name == drops_counter:
                reasons = drop_acc.setdefault(key, {})
                reason = labels.get("reason", "?")
                reasons[reason] = reasons.get(reason, 0) + delta
        for rendered, summary in sorted(
                window.get("histograms", {}).items()):
            name, labels = parse_rendered(rendered)
            key = labels.get(label)
            if key is None:
                continue
            count = summary["count"]
            acc = hist_acc.setdefault(key, [0.0, 0.0, 0.0, 0.0])
            acc[0] += count
            acc[1] += summary["p50"] * count
            acc[2] += summary["p95"] * count
            acc[3] += summary["p99"] * count

    latency: Dict[str, Tally] = {}
    span_counts: Dict[str, int] = {}
    for span in spans:
        key = _span_key(span, label)
        if key is None:
            continue
        span_counts[key] = span_counts.get(key, 0) + 1
        if span.get("end") is None:
            continue
        latency.setdefault(key, Tally(key)).record(
            span["end"] - span["start"])

    rows = []
    for key in sorted(set(counters) | set(latency) | set(span_counts)
                      | set(hist_acc)):
        per = counters.get(key, {})
        if primary is not None and primary in per:
            total = per[primary]
        elif key in span_counts:
            total = span_counts[key]
        else:
            total = sum(per.values())
        tally = latency.get(key)
        if tally is not None:
            lat = {"count": tally.count, "p50": tally.median,
                   "p95": tally.p95, "p99": tally.p99}
        elif key in hist_acc and hist_acc[key][0] > 0:
            # Count-weighted mean of per-window percentiles: an
            # approximation (percentiles do not merge exactly), but a
            # deterministic one, used only when no spans cover the key.
            count, p50, p95, p99 = hist_acc[key]
            lat = {"count": int(count), "p50": p50 / count,
                   "p95": p95 / count, "p99": p99 / count}
        else:
            lat = None
        peak = peaks.get(key)
        row = {
            "key": key,
            "total": total,
            "rate": total / duration if duration > 0 else 0.0,
            "peak_at": peak[0] if peak is not None else None,
            "peak": peak[1] if peak is not None else None,
            "latency": lat,
            "counters": {name: per[name] for name in sorted(per)},
        }
        if drops_counter is not None:
            reasons = drop_acc.get(key, {})
            row["drops"] = {reason: int(reasons[reason])
                            for reason in sorted(reasons)}
        rows.append(row)
    rows.sort(key=lambda row: (-row["rate"], -row["total"], row["key"]))
    return {
        "dimension": dim,
        "label": label,
        "primary": primary,
        "drops_counter": drops_counter,
        "duration": duration,
        "rows": rows,
        "zipf_skew": zipf_skew(row["total"] for row in rows),
    }


def all_tables(windows: Optional[List[Dict[str, Any]]] = None,
               spans: Optional[List[Dict[str, Any]]] = None,
               dims: Optional[Iterable[str]] = None
               ) -> Dict[str, Dict[str, Any]]:
    """``dimension_table`` for each requested dimension, keyed by name."""
    chosen = list(dims) if dims is not None else sorted(DIMENSIONS)
    return {dim: dimension_table(dim, windows, spans) for dim in chosen}


def render_dimension_table(doc: Dict[str, Any], out=None,
                           top: Optional[int] = None) -> None:
    """Print one rollup document as a fixed-width table."""
    out = out if out is not None else sys.stdout

    def lat(row: Dict[str, Any], stat: str) -> Any:
        return row["latency"][stat] if row["latency"] else "-"

    def drops_cell(row: Dict[str, Any]) -> str:
        reasons = row.get("drops") or {}
        return ",".join("{}:{}".format(reason, count)
                        for reason, count in sorted(reasons.items())
                        ) or "-"

    with_drops = doc.get("drops_counter") is not None
    headers = [doc["dimension"], "total", "rate/s", "p50 (s)", "p95 (s)",
               "p99 (s)", "peak", "hot at (s)"]
    if with_drops:
        headers.append("drops")
    rows = []
    for row in doc["rows"]:
        cells = [row["key"], row["total"], row["rate"],
                 lat(row, "p50"), lat(row, "p95"), lat(row, "p99"),
                 row["peak"] if row["peak"] is not None else "-",
                 row["peak_at"] if row["peak_at"] is not None else "-"]
        if with_drops:
            cells.append(drops_cell(row))
        rows.append(cells)
    render_table("hot spots by {}".format(doc["dimension"]),
                 headers, rows, out=out, top=top)
    out.write("zipf skew ({}): {:.3f} over {} key(s)\n".format(
        doc["dimension"], doc["zipf_skew"], len(doc["rows"])))
