"""Dashboard CLI: timeline, hot-spot tables and critical paths, one view.

Usage::

    PYTHONPATH=src python -m repro.obs.dashboard run.jsonl
    PYTHONPATH=src python -m repro.obs.dashboard \\
        --workload timeline-demo --seed 31 \\
        --tables node,op --critical-path

Two input modes:

* a **JSONL dump** (positional) mixing ``{"kind": "span"}``,
  ``{"kind": "metric"}`` and ``{"kind": "window"}`` records — e.g. one
  written by :func:`repro.obs.export.dump_jsonl` with a
  ``timeline=`` recorder;
* ``--workload NAME --seed S`` runs a registered workload under a
  recording tracer and reads the timeline windows out of its result
  (the ``timeline-demo`` workload returns them; workloads without
  windows still get span-based tables and critical paths).

Output is deterministic end to end — sorted rows, deterministic span
ids, sim-time windows — so same-seed invocations are byte-identical,
which is what the CI dashboard-smoke job asserts.  ``--format json``
emits the same content as one sorted-keys document.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.obs._cli import (
    describe_meta,
    extract_meta,
    load_dump_records,
    render_table,
)
from repro.obs.critical import critical_summary, render_critical
from repro.obs.tables import DIMENSIONS, all_tables, render_dimension_table
from repro.obs.timeline import load_windows

DEFAULT_TABLES = "node,link,actor,op"


def _gather_workload(name: str, seed: int):
    """Run a workload under a recording tracer; (windows, spans)."""
    from repro.analysis.workloads import run_workload
    from repro.obs.export import span_record
    from repro.obs.tracer import Tracer, use_tracer

    tracer = Tracer()
    with use_tracer(tracer):
        result = run_workload(name, seed=seed)
    windows = result.get("windows") or []
    spans = [span_record(span) for span in tracer.spans]
    return windows, spans


def dashboard_data(windows: List[Dict[str, Any]],
                   spans: List[Dict[str, Any]],
                   dims: Sequence[str],
                   critical: bool = False,
                   meta: Optional[Dict[str, Any]] = None
                   ) -> Dict[str, Any]:
    """The dashboard as one JSON-safe document."""
    duration = windows[-1]["end"] - windows[0]["start"] if windows else 0.0
    return {
        "meta": meta,
        "windows": len(windows),
        "duration": duration,
        "spans": len(spans),
        "tables": all_tables(windows, spans, dims),
        "critical_path": critical_summary(spans) if critical else None,
    }


def render_dashboard(data: Dict[str, Any],
                     windows: List[Dict[str, Any]],
                     out=None, top: Optional[int] = None,
                     timeline: bool = False,
                     per_trace: bool = False) -> None:
    out = out if out is not None else sys.stdout
    meta_line = describe_meta(data.get("meta"))
    if meta_line is not None:
        out.write(meta_line + "\n")
    out.write("{} window(s) covering {:.4g}s, {} span(s)\n".format(
        data["windows"], data["duration"], data["spans"]))
    if timeline and windows:
        render_table(
            "timeline",
            ["window", "start (s)", "end (s)", "counters", "delta",
             "histograms"],
            [(("{}*".format(w["index"]) if w.get("partial")
               else w["index"]),
              w["start"], w["end"], len(w["counters"]),
              sum(w["counters"].values()), len(w["histograms"]))
             for w in windows],
            out=out, top=top)
    for dim in data["tables"]:
        render_dimension_table(data["tables"][dim], out=out, top=top)
    if data["critical_path"] is not None:
        render_critical(data["critical_path"], out=out, top=top,
                        per_trace=per_trace)


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.dashboard",
        description="Timeline, hot-spot and critical-path dashboard "
                    "over a JSONL dump or a registered workload.")
    parser.add_argument("dump", nargs="?", default=None,
                        help="path to a dump_jsonl() file "
                             "(may include window records)")
    parser.add_argument("--workload", default=None, metavar="NAME",
                        help="run this registered workload instead of "
                             "reading a dump")
    parser.add_argument("--seed", type=int, default=31,
                        help="workload seed (default 31)")
    parser.add_argument("--tables", default=DEFAULT_TABLES, metavar="DIMS",
                        help="comma-separated dimensions to roll up "
                             "(default {})".format(DEFAULT_TABLES))
    parser.add_argument("--critical-path", action="store_true",
                        dest="critical",
                        help="aggregate span critical paths into a "
                             "bottleneck table")
    parser.add_argument("--per-trace", action="store_true",
                        help="with --critical-path, also print each "
                             "trace's own path")
    parser.add_argument("--timeline", action="store_true",
                        help="print the per-window activity table")
    parser.add_argument("--top", type=int, default=None, metavar="N",
                        help="show at most N rows per table")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", dest="fmt",
                        help="text tables (default) or one JSON document")
    options = parser.parse_args(argv)

    if (options.dump is None) == (options.workload is None):
        parser.error("exactly one of DUMP or --workload is required")
    dims = [dim.strip() for dim in options.tables.split(",") if dim.strip()]
    unknown = [dim for dim in dims if dim not in DIMENSIONS]
    if unknown:
        sys.stderr.write("error: unknown table dimension(s): {} "
                         "(have: {})\n".format(
                             ", ".join(unknown),
                             ", ".join(sorted(DIMENSIONS))))
        return 2

    if options.workload is not None:
        try:
            windows, spans = _gather_workload(options.workload,
                                              options.seed)
        except KeyError as exc:
            sys.stderr.write("error: {}\n".format(exc.args[0]))
            return 2
        meta = {"workload": options.workload, "seed": options.seed}
    else:
        records = load_dump_records(options.dump)
        if records is None:
            return 2
        windows = load_windows(records)
        spans = [r for r in records if r.get("kind") == "span"]
        meta = extract_meta(records)

    data = dashboard_data(windows, spans, dims, critical=options.critical,
                          meta=meta)
    try:
        if options.fmt == "json":
            print(json.dumps(data, sort_keys=True, indent=2))
        else:
            render_dashboard(data, windows, top=options.top,
                             timeline=options.timeline,
                             per_trace=options.per_trace)
    except BrokenPipeError:
        # Reader (e.g. ``| head``) closed the pipe early; not an error.
        sys.stderr.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
