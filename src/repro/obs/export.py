"""Exporters: JSONL span/metric dumps and Chrome ``trace_event`` JSON.

The JSONL form is the machine-readable record the report CLI consumes —
one JSON object per line, ``{"kind": "span", ...}`` or
``{"kind": "metric", ...}``.  The Chrome form opens directly in
``about:tracing`` / Perfetto: spans become complete (``"ph": "X"``)
events, grouped into one pseudo-thread per node, with simulated seconds
mapped onto microseconds.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.obs.span import Span
from repro.obs.tracer import NoopTracer, Tracer, get_tracer

#: Chrome trace timestamps are microseconds; simulated time is seconds.
MICROSECONDS = 1e6

#: Schema tag stamped on the leading ``{"kind": "meta"}`` dump record.
META_SCHEMA = "repro-obs/1"


def span_record(span: Span) -> Dict[str, Any]:
    """One JSONL row for a span."""
    record = span.to_dict()
    record["kind"] = "span"
    return record


def meta_record(**fields: Any) -> Dict[str, Any]:
    """The leading dump record: provenance for whoever reads it later.

    Conventional fields: ``seed``, ``workload``, ``sim_time`` (a
    ``[start, end]`` pair of simulated seconds).  Anything JSON-safe
    may ride along; ``kind`` and ``schema`` are stamped automatically.
    """
    record: Dict[str, Any] = {"kind": "meta", "schema": META_SCHEMA}
    record.update(fields)
    return record


def dump_jsonl(path: str, tracer: Optional[Tracer] = None,
               metrics: Optional[MetricsRegistry] = None,
               timeline=None, flight=None,
               meta: Optional[Dict[str, Any]] = None) -> int:
    """Write meta, spans, metrics, windows, flight; returns line count.

    With no explicit ``tracer``/``metrics`` the process-wide defaults are
    exported (the no-op tracer exports zero span lines).  ``timeline``
    optionally takes a :class:`~repro.obs.timeline.TimelineRecorder`
    (or any iterable of window dicts) whose ``{"kind": "window"}``
    records are appended; ``flight`` a
    :class:`~repro.obs.flight.FlightRecorder` whose epoch digests and
    retained ring follow — so one dump feeds the report, profile,
    dashboard and divergence CLIs alike.  ``meta`` (a plain dict of
    provenance fields, see :func:`meta_record`) becomes the dump's
    first line; dumps without one remain valid for every loader.
    """
    tracer = tracer if tracer is not None else get_tracer()
    metrics = metrics if metrics is not None else get_metrics()
    lines = 0
    with open(path, "w") as handle:
        if meta is not None:
            handle.write(json.dumps(meta_record(**meta), sort_keys=True)
                         + "\n")
            lines += 1
        for span in tracer.spans:
            handle.write(json.dumps(span_record(span)) + "\n")
            lines += 1
        for record in metrics.records():
            handle.write(json.dumps(record) + "\n")
            lines += 1
        if timeline is not None:
            windows = timeline.records() \
                if hasattr(timeline, "records") else timeline
            for window in windows:
                handle.write(json.dumps(window, sort_keys=True) + "\n")
                lines += 1
        if flight is not None:
            for record in flight.records():
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                lines += 1
    return lines


def load_jsonl(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL dump back into a list of records."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def load_jsonl_tolerant(path: str) -> Tuple[List[Dict[str, Any]], int]:
    """Parse a JSONL dump, skipping malformed lines.

    Dumps from killed runs (or ``tail``-ed fragments of huge dumps) end
    mid-line; the report and profile CLIs should still read the rest.
    Returns ``(records, skipped)`` where ``skipped`` counts lines that
    failed to parse or were not JSON objects.
    """
    records: List[Dict[str, Any]] = []
    skipped = 0
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if isinstance(record, dict):
                records.append(record)
            else:
                skipped += 1
    return records, skipped


def chrome_trace(tracer: Optional[Tracer] = None) -> Dict[str, Any]:
    """Spans as a Chrome ``trace_event`` document (a plain dict).

    Each node name found in span attributes becomes its own ``tid`` so
    Perfetto lays traces out one row per node; spans without a node land
    on tid 0.  Unfinished spans are exported with zero duration.
    """
    tracer = tracer if tracer is not None else get_tracer()
    if isinstance(tracer, NoopTracer):
        return {"traceEvents": []}
    tids: Dict[str, int] = {}
    events: List[Dict[str, Any]] = []
    for span in tracer.spans:
        node = str(span.attributes.get("node",
                                       span.attributes.get("src", "")))
        if node not in tids:
            tids[node] = len(tids)
            events.append({
                "ph": "M", "name": "thread_name", "pid": 1,
                "tid": tids[node],
                "args": {"name": node or "(unattributed)"},
            })
        end = span.end if span.end is not None else span.start
        args = dict(span.attributes)
        args["trace_id"] = span.trace_id
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.status != "ok":
            args["status"] = span.status
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.name.split(".")[0],
            "pid": 1,
            "tid": tids[node],
            "ts": span.start * MICROSECONDS,
            "dur": (end - span.start) * MICROSECONDS,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def dump_chrome_trace(path: str, tracer: Optional[Tracer] = None) -> int:
    """Write the Chrome trace document to ``path``; returns event count."""
    document = chrome_trace(tracer)
    with open(path, "w") as handle:
        json.dump(document, handle)
    return len(document["traceEvents"])
