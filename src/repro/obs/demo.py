"""Replayable demonstration workloads for the telemetry stack.

Two workloads, registered in :data:`repro.analysis.workloads.WORKLOADS`
so the replay checker, the races CLI and ``python -m repro.obs.profile``
all see them:

* ``traced-rpc`` — three named clients at one WAN site invoking a shared
  object at another, traced under a deterministic head
  :class:`~repro.obs.sampling.Sampler` with a bounded span ring.  Shows
  that the sampling decision propagates with the packet headers: every
  sampled trace is complete end-to-end (client, transit hops, server),
  every unsampled trace costs nothing.
* ``slo-burn`` — a service driven through healthy → degraded → recovered
  phases while an :class:`~repro.obs.slo.SLOMonitor` evaluates a
  multi-window burn-rate objective over its ``service.requests``
  counters.  The alert fires during the degradation and clears after
  recovery; both transitions land in the workload result.
* ``timeline-demo`` — a deliberately *skewed* RPC fan-in (Zipf operation
  mix, one hot client host) with a
  :class:`~repro.obs.timeline.TimelineRecorder` attached, so the
  dashboard's hot-spot tables and critical-path analysis have a
  non-uniform workload to bite on.  The windows ride inside the result
  dict, which makes the replay digest cover the whole timeline.

Both return JSON-serialisable dicts that are pure functions of the seed,
so ``python -m repro.analysis.replay`` can digest-check them.  When a
recording tracer is already installed (the profile CLI does this) the
``traced-rpc`` workload traces into it instead of its own, so the
profiler sees the spans.
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict

from repro.net import Network, wan
from repro.node import ODPRuntime
from repro.obs import slo
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.profile import SpanProfile
from repro.obs.sampling import Sampler
from repro.obs.tracer import Tracer, get_tracer, use_tracer
from repro.sim import Environment, RandomStreams, exponential, zipf_index

CLIENTS = 3
REQUESTS = 8
THINK_MEAN = 0.4
SAMPLE_RATE = 0.5
MAX_SPANS = 256


def traced_rpc_workload(seed: int = 31) -> Dict[str, Any]:
    """WAN RPC fan-in under deterministic head sampling."""
    ambient = get_tracer()
    if ambient.enabled:
        tracer = ambient
        scope = contextlib.nullcontext()
    else:
        tracer = Tracer(sampler=Sampler(rate=SAMPLE_RATE, seed=seed),
                        max_spans=MAX_SPANS)
        scope = use_tracer(tracer)

    env = Environment()
    topo = wan(env, sites=2, hosts_per_site=2, site_latency=0.03)
    net = Network(env, topo)
    runtime = ODPRuntime(net, registry_node="site0.host0")
    server = runtime.nucleus("site0.host0")
    capsule = server.create_capsule("cap")
    board = server.create_object(capsule, "board", state={"posts": 0})

    def post(caller, state, args):
        state["posts"] += 1
        return state["posts"]

    board.operation("post", post)

    rng = RandomStreams(seed).stream("traced-rpc")
    results = {}

    def client_proc(env, name, host):
        nucleus = runtime.nucleus(host)
        done = 0
        for step in range(REQUESTS):
            yield env.timeout(exponential(rng, THINK_MEAN))
            with tracer.span("user.request", env, node=host, actor=name,
                             step=step) as span:
                yield nucleus.invoke(board.oid, "post", None, parent=span)
                done += 1
        results[name] = done

    with scope, use_metrics(MetricsRegistry()):
        hosts = ["site1.host0", "site1.host1", "site0.host1"]
        for i in range(CLIENTS):
            name = "client-{}".format(i)
            env.process(client_proc(env, name, hosts[i]), name=name)
        env.run()

    sampled = sorted({span.trace_id for span in tracer.spans},
                     key=lambda t: int(t[1:]) if t[1:].isdigit() else 0)
    roots = [span for span in tracer.spans if span.parent_id is None]
    profile = SpanProfile.from_tracer(tracer)
    return {
        "workload": "traced-rpc",
        "seed": seed,
        "sample_rate": SAMPLE_RATE if tracer.sampler is not None else 1.0,
        "completed": {name: results[name] for name in sorted(results)},
        "posts": board.state["posts"],
        "sampled_traces": sampled,
        "sampled_roots": sorted(span.name for span in roots),
        "spans_retained": len(tracer.spans),
        "spans_sampled_out": tracer.sampled_out,
        "spans_evicted": tracer.evicted,
        "profile": profile.by_name(),
        "env": env.stats(),
    }


# -- slo-burn ---------------------------------------------------------------

HEALTHY_UNTIL = 20.0
DEGRADED_UNTIL = 45.0
RUN_UNTIL = 90.0
REQUEST_PERIOD = 0.25
DEGRADED_ERROR_EVERY = 2     # every 2nd request fails while degraded
HEALTHY_ERROR_EVERY = 50     # background error rate within budget
SLO_TARGET = 0.9
BURN_WINDOWS = ((10.0, 2.0, 4.0, "page"),)


def slo_burn_workload(seed: int = 31) -> Dict[str, Any]:
    """A service degradation that fires, then clears, a burn-rate alert."""
    env = Environment()
    # A scoped registry keeps the run self-contained: gauge time series
    # restart from zero, and repeated runs stay digest-identical.
    metrics = MetricsRegistry()

    def service(env):
        n = 0
        while env.now < RUN_UNTIL:
            yield env.timeout(REQUEST_PERIOD)
            n += 1
            degraded = HEALTHY_UNTIL <= env.now < DEGRADED_UNTIL
            every = DEGRADED_ERROR_EVERY if degraded else HEALTHY_ERROR_EVERY
            outcome = "err" if n % every == 0 else "ok"
            metrics.counter("service.requests", outcome=outcome).add()

    objective = slo.CounterRatioSLO(
        "service-availability",
        good=("service.requests", {"outcome": "ok"}),
        bad=("service.requests", {"outcome": "err"}),
        target=SLO_TARGET)
    monitor = slo.SLOMonitor(env, [objective], registry=metrics,
                             interval=1.0, windows=BURN_WINDOWS,
                             until=RUN_UNTIL)
    env.process(service(env), name="service")
    with use_metrics(metrics):
        env.run()

    fired = [e for e in monitor.events if e["event"] == "fired"]
    cleared = [e for e in monitor.events if e["event"] == "cleared"]
    return {
        "workload": "slo-burn",
        "seed": seed,
        "target": SLO_TARGET,
        "events": monitor.events,
        "fired": len(fired),
        "cleared": len(cleared),
        "first_fired_at": fired[0]["at"] if fired else None,
        "first_cleared_at": cleared[0]["at"] if cleared else None,
        "active": [a.slo for a in monitor.active_alerts()],
        "requests": metrics.counters("service.requests"),
        "env": env.stats(),
    }


# -- timeline-demo ----------------------------------------------------------

TL_CLIENTS = 4
TL_REQUESTS = 10
TL_THINK_MEAN = 0.3
TL_RESOLUTION = 0.5
TL_MAX_SPANS = 2048
TL_OPS = ("post", "read", "tag")
TL_OP_SKEW = 1.3


def timeline_demo_workload(seed: int = 31) -> Dict[str, Any]:
    """Skewed RPC fan-in recorded onto a sim-time timeline.

    Four clients (two sharing one deliberately hot host) invoke a
    shared board; the operation per request is Zipf-drawn over
    ``TL_OPS`` so the op table shows real skew.  A
    :class:`~repro.obs.timeline.TimelineRecorder` at
    ``TL_RESOLUTION``-second windows rides the run; the recorded
    windows, the hot-spot rollups and the critical-path bottlenecks all
    land in the (JSON-serialisable, digest-stable) result.
    """
    from repro.obs.critical import critical_summary
    from repro.obs.export import span_record
    from repro.obs.tables import dimension_table
    from repro.obs.timeline import TimelineRecorder

    ambient = get_tracer()
    if ambient.enabled:
        tracer = ambient
        scope = contextlib.nullcontext()
    else:
        # No sampler: every trace is retained, so critical paths are
        # complete end to end.
        tracer = Tracer(max_spans=TL_MAX_SPANS)
        scope = use_tracer(tracer)

    env = Environment()
    topo = wan(env, sites=2, hosts_per_site=2, site_latency=0.03)
    net = Network(env, topo)
    runtime = ODPRuntime(net, registry_node="site0.host0")
    server = runtime.nucleus("site0.host0")
    capsule = server.create_capsule("cap")
    board = server.create_object(
        capsule, "board", state={"post": 0, "read": 0, "tag": 0})

    def bump(which):
        def operation(caller, state, args):
            state[which] += 1
            return state[which]
        return operation

    for name in TL_OPS:
        board.operation(name, bump(name))

    rng = RandomStreams(seed).stream("timeline-demo")
    metrics = MetricsRegistry()
    recorder = TimelineRecorder(env, registry=metrics,
                                resolution=TL_RESOLUTION)

    def client_proc(env, name, host, requests):
        nucleus = runtime.nucleus(host)
        for step in range(requests):
            yield env.timeout(exponential(rng, TL_THINK_MEAN))
            op = TL_OPS[zipf_index(rng, len(TL_OPS), TL_OP_SKEW)]
            with tracer.span("user.request", env, node=host, actor=name,
                             op=op) as span:
                yield nucleus.invoke(board.oid, op, None, parent=span)

    # site1.host0 hosts two clients: the "hot node" the tables should
    # rank first; later clients also send progressively fewer requests
    # so per-node totals are properly skewed, not merely unequal.
    placements = ["site1.host0", "site1.host0", "site1.host1",
                  "site0.host1"]
    with scope, use_metrics(metrics):
        for i in range(TL_CLIENTS):
            name = "client-{}".format(i)
            env.process(
                client_proc(env, name, placements[i],
                            max(2, TL_REQUESTS // (i + 1))),
                name=name)
        env.run()
    recorder.finish()

    windows = list(recorder.records())
    spans = [span_record(span) for span in tracer.spans]
    node_table = dimension_table("node", windows, spans)
    op_table = dimension_table("op", windows, spans)
    critical = critical_summary(spans)
    return {
        "workload": "timeline-demo",
        "seed": seed,
        "resolution": TL_RESOLUTION,
        "windows": windows,
        "windows_flushed": recorder.flushed,
        "board": dict(sorted(board.state.items())),
        "top_node": node_table["rows"][0]["key"]
        if node_table["rows"] else None,
        "node_zipf_skew": node_table["zipf_skew"],
        "op_totals": {row["key"]: row["total"]
                      for row in op_table["rows"]},
        "bottlenecks": [
            {"op": row["op"], "self": row["self"], "share": row["share"]}
            for row in critical["bottlenecks"][:5]],
        "critical_traces": critical["traces"],
        "spans_retained": len(tracer.spans),
        "env": env.stats(),
    }
