"""Shared plumbing for the observability CLIs (report/profile/dashboard).

One fixed-width table renderer and one dump loader, so every CLI clips,
formats and complains about truncated dumps identically.  Kept private
(underscore module): the public surfaces are the CLIs themselves.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple


def fmt_cell(cell: Any) -> str:
    """Render one table cell (floats at 4 significant digits)."""
    if isinstance(cell, float):
        return "{:.4g}".format(cell)
    return str(cell)


def render_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[Any]], out=None,
                 top: Optional[int] = None) -> None:
    """Print one fixed-width table to ``out`` (default stdout).

    ``top`` clips to the first N rows with an explicit "... more row(s)"
    trailer — tables are pre-sorted by their builders, so clipping is
    deterministic.
    """
    out = out if out is not None else sys.stdout
    rows = list(rows)
    clipped = 0
    if top is not None and len(rows) > top:
        clipped = len(rows) - top
        rows = rows[:top]
    rendered = [[fmt_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        widths = [max(w, len(cell)) for w, cell in zip(widths, row)]
    line = "  ".join("{:<{w}}".format(h, w=w)
                     for h, w in zip(headers, widths))
    out.write("\n" + title + "\n")
    out.write("-" * len(line) + "\n")
    out.write(line + "\n")
    for row in rendered:
        out.write("  ".join("{:<{w}}".format(cell, w=w)
                            for cell, w in zip(row, widths)) + "\n")
    if clipped:
        out.write("... {} more row(s); raise --top to see them\n".format(
            clipped))


def load_dump_records(path: str, err=None
                      ) -> Optional[List[Dict[str, Any]]]:
    """Load a JSONL dump for a CLI, or ``None`` when it is unusable.

    Unreadable files and dumps with zero parseable records both print a
    diagnostic to ``err`` (default stderr) and return ``None`` so the
    caller can exit non-zero; a partially-truncated dump is read
    tolerantly with a note about the skipped lines.
    """
    from repro.obs.export import load_jsonl_tolerant

    err = err if err is not None else sys.stderr
    try:
        records, skipped = load_jsonl_tolerant(path)
    except OSError as exc:
        err.write("error: cannot read {}: {}\n".format(path, exc))
        return None
    if skipped:
        err.write("note: skipped {} malformed JSONL line(s) (truncated "
                  "dump?)\n".format(skipped))
    if not records:
        err.write("error: {} contains no parseable records\n".format(path))
        return None
    return records


def extract_meta(records: Iterable[Dict[str, Any]]
                 ) -> Optional[Dict[str, Any]]:
    """The dump's ``{"kind": "meta"}`` provenance record, if present.

    Dumps written before the meta record existed simply return ``None``
    — every loader treats it as optional.
    """
    for record in records:
        if record.get("kind") == "meta":
            return record
    return None


def describe_meta(meta: Optional[Dict[str, Any]]) -> Optional[str]:
    """One human-readable provenance line for a meta record."""
    if not meta:
        return None
    parts = []
    for key in ("workload", "seed", "schema"):
        if key in meta:
            parts.append("{}={}".format(key, meta[key]))
    span = meta.get("sim_time")
    if isinstance(span, (list, tuple)) and len(span) == 2:
        parts.append("sim_time=[{:.4g}s, {:.4g}s]".format(*span))
    if meta.get("black_box"):
        parts.append("black_box reason={}".format(
            meta.get("reason", "?")))
    for key in sorted(meta):
        if key in ("kind", "schema", "workload", "seed", "sim_time",
                   "black_box", "reason", "flight", "error"):
            continue
        parts.append("{}={}".format(key, meta[key]))
    return "meta: " + " ".join(parts) if parts else "meta: (empty)"


def parse_rendered(rendered: str) -> Tuple[str, Dict[str, str]]:
    """Split a rendered instrument key back into (name, labels).

    The inverse of the registry's ``name{k=v,...}`` rendering for the
    label values the middleware actually uses (node/link/actor names,
    reasons, operations).  Label values containing ``,`` or ``=`` are
    not round-trippable and would mis-split; none of the built-in
    instruments produce them.
    """
    if not rendered.endswith("}") or "{" not in rendered:
        return rendered, {}
    name, _, body = rendered.partition("{")
    labels: Dict[str, str] = {}
    for pair in body[:-1].split(","):
        key, _, value = pair.partition("=")
        labels[key] = value
    return name, labels
