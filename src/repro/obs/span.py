"""Spans: the unit of causal tracing.

A :class:`Span` records one timed operation (an invocation, a packet
transit, a lock wait) with parent/child links, so a whole distributed
interaction — caller think-time, serialisation, per-link transit, remote
execution — reads as one tree.  Timestamps are *simulated* seconds taken
from :attr:`Environment.now <repro.sim.Environment.now>` by the
instrumentation sites; the tracing layer never advances the clock.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

#: Span status values.
OK = "ok"
DROPPED = "dropped"
ERROR = "error"


class SpanContext:
    """The propagatable identity of a span: ``(trace_id, span_id)``.

    Contexts cross the simulated network inside packet headers (see
    :mod:`repro.obs.propagation`), so a remote nucleus can parent its
    serving span under the calling span.  ``sampled`` carries the
    head-based sampling decision made at the trace root (see
    :mod:`repro.obs.sampling`): descendants of an unsampled root are
    never retained, on any node the trace touches.
    """

    __slots__ = ("trace_id", "span_id", "sampled")

    def __init__(self, trace_id: str, span_id: str,
                 sampled: bool = True) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = sampled

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable form, safe to place in packet headers.

        Sampled contexts serialise exactly as before sampling existed
        (two keys), keeping packet headers byte-identical for runs that
        never construct a sampler.
        """
        data: Dict[str, Any] = {"trace_id": self.trace_id,
                                "span_id": self.span_id}
        if not self.sampled:
            data["sampled"] = False
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpanContext":
        return cls(data["trace_id"], data["span_id"],
                   sampled=data.get("sampled", True))

    def __repr__(self) -> str:
        return "<SpanContext {}/{}{}>".format(
            self.trace_id, self.span_id,
            "" if self.sampled else " unsampled")


class Span:
    """One recorded operation in a trace tree.

    A span whose trace was sampled out still exists transiently (its
    context must propagate so downstream nodes honour the decision) but
    is created with ``recorded=False``, is never retained by the tracer
    and reports :attr:`is_recording` as ``False`` so hot paths can skip
    per-hop span work entirely.
    """

    __slots__ = ("name", "context", "parent_id", "start", "end",
                 "attributes", "events", "status", "recorded")

    def __init__(self, name: str, context: SpanContext,
                 parent_id: Optional[str], start: float,
                 attributes: Optional[Dict[str, Any]] = None,
                 recorded: bool = True) -> None:
        self.name = name
        self.context = context
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.attributes: Dict[str, Any] = attributes or {}
        self.events: List[Dict[str, Any]] = []
        self.status = OK
        self.recorded = recorded

    @property
    def is_recording(self) -> bool:
        return self.recorded

    @property
    def trace_id(self) -> str:
        return self.context.trace_id

    @property
    def span_id(self) -> str:
        return self.context.span_id

    @property
    def duration(self) -> float:
        """Seconds from start to finish (0.0 while unfinished)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def add_event(self, name: str, at: float, **attributes: Any) -> None:
        """Record a point-in-time annotation on the span."""
        event: Dict[str, Any] = {"name": name, "at": at}
        if attributes:
            event.update(attributes)
        self.events.append(event)

    def set_status(self, status: str) -> None:
        self.status = status

    def finish(self, at: float) -> None:
        """Close the span at simulated time ``at`` (idempotent)."""
        if self.end is None:
            self.end = at

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable record (the JSONL export row)."""
        record: Dict[str, Any] = {
            "name": self.name,
            "trace_id": self.context.trace_id,
            "span_id": self.context.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "status": self.status,
        }
        if self.attributes:
            record["attributes"] = dict(self.attributes)
        if self.events:
            record["events"] = list(self.events)
        return record

    def __repr__(self) -> str:
        return "<Span {} {} [{:.6g}..{}]>".format(
            self.name, self.context.span_id, self.start,
            "{:.6g}".format(self.end) if self.end is not None else "?")


class NoopSpan:
    """The do-nothing span handed out by the disabled tracer.

    Every mutator is a no-op and :attr:`context` is ``None`` so nothing is
    ever injected into packet headers.  A single shared instance serves
    every call site, keeping the disabled path allocation-free.
    """

    __slots__ = ()

    context = None
    parent_id = None
    name = ""
    status = OK
    start = 0.0
    end = 0.0
    attributes: Dict[str, Any] = {}
    events: List[Dict[str, Any]] = []

    @property
    def is_recording(self) -> bool:
        return False

    @property
    def duration(self) -> float:
        return 0.0

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def add_event(self, name: str, at: float, **attributes: Any) -> None:
        pass

    def set_status(self, status: str) -> None:
        pass

    def finish(self, at: float) -> None:
        pass

    def __repr__(self) -> str:
        return "<NoopSpan>"


#: The shared disabled-tracer span.
NOOP_SPAN = NoopSpan()
