"""Deterministic head-based trace sampling.

Full-fidelity tracing retains every span, which is too heavy for the
million-user-scale runs the ROADMAP targets: a single media flow can emit
thousands of ``net.transmit`` roots per simulated second.  A
:class:`Sampler` makes the keep/drop decision once, at the *head* of each
trace (when its root span is created), and the decision then rides the
packet headers with the trace context — so a sampled trace stays complete
end to end across nuclei while an unsampled one costs nothing anywhere.

The decision is a pure function of ``(seed, trace_id)``: trace ids are
deterministic counters (``t1``, ``t2``, …), so the same seed and rate
always sample exactly the same set of traces, run after run — replay
holds even for the observability layer itself.  Raising the rate only
*adds* traces (the kept set at rate 0.2 is a subset of the set at 0.6),
which makes sampled runs comparable across rates.

Per-root-name rates let expensive-but-rare operations stay fully traced
while bulk traffic is thinned::

    sampler = Sampler(rate=0.01, seed=31,
                      rates={"node.migrate": 1.0, "user.request": 0.25})
    tracer = obs.enable_tracing(sampler=sampler, max_spans=100_000)
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional

#: Denominator mapping an 8-byte digest prefix onto [0, 1).
_SCALE = float(2 ** 64)


class Sampler:
    """Head-based, rate- and name-keyed, deterministic trace sampler.

    ``rate`` is the default keep probability in ``[0, 1]``; ``rates``
    optionally overrides it per root-span name.  ``seed`` should be the
    experiment seed so trace selection replays with the simulation.
    """

    def __init__(self, rate: float = 1.0, seed: int = 0,
                 rates: Optional[Dict[str, float]] = None) -> None:
        self.rate = _clamp(rate)
        self.seed = int(seed)
        self.rates = {name: _clamp(value)
                      for name, value in (rates or {}).items()}

    def effective_rate(self, name: Optional[str] = None) -> float:
        """The keep probability applied to roots named ``name``."""
        if name is None:
            return self.rate
        return self.rates.get(name, self.rate)

    def fraction(self, trace_id: str) -> float:
        """The deterministic position of ``trace_id`` in [0, 1).

        A trace is kept iff its fraction falls below the effective rate;
        because the fraction does not depend on the rate, higher rates
        keep supersets of lower ones.
        """
        digest = hashlib.sha256(
            "{}:{}".format(self.seed, trace_id).encode()).digest()
        return int.from_bytes(digest[:8], "big") / _SCALE

    def sample(self, trace_id: str, name: Optional[str] = None) -> bool:
        """Keep the trace rooted by ``trace_id`` (root span ``name``)?"""
        rate = self.effective_rate(name)
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        return self.fraction(trace_id) < rate

    def __repr__(self) -> str:
        return "<Sampler rate={} seed={} overrides={}>".format(
            self.rate, self.seed, len(self.rates))


def _clamp(rate: float) -> float:
    if not 0.0 <= rate <= 1.0:
        raise ValueError(
            "sampling rate must be within [0, 1], got {}".format(rate))
    return float(rate)
