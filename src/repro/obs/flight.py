"""Flight recorder: a deterministic journal of kernel-level decisions.

``repro.analysis.replay`` can prove that two same-seed runs produced
different digests, but not *where* behaviour forked.  This module is the
missing record: a :class:`FlightRecorder` journals the decisions that
define a run — event dispatch (eid/time/priority), packet hops and
drops, lock grants/releases/revocations, RNG draws, actor spawn/exit —
into a bounded ring, and folds every record into per-epoch *rolling*
digests (an epoch is N processed events, or a fixed sim-time window).
Because each epoch digest chains the previous one, digest ``e`` covers
the whole run prefix up to epoch ``e`` — so two runs can be compared
digest-by-digest without retaining full journals, and the first
divergent epoch can be found by binary search
(:mod:`repro.obs.divergence`).

Design constraints, in order:

* **No-op by default.**  The process default is :data:`NOOP_FLIGHT`;
  instrumentation sites pay one ``is not None`` / attribute check.
* **Observe, never perturb.**  Recording draws no RNG, schedules no
  events and advances no clocks, so replay digests are byte-identical
  with the recorder off *and* on (asserted by the O2 bench and the
  all-workload tests).
* **Deterministic.**  Records contain only sim-derived values; span
  ids — which differ between traced and untraced runs — ride in
  underscore-prefixed side fields that are excluded from digests.
* **Bounded.**  ``ring`` caps retained records (``evicted`` counts the
  rest); ``keep_epochs`` narrows retention to an epoch range for the
  divergence localizer's full-journal re-run, with ``context`` records
  preserved from just before the range.

This module is stdlib-only on purpose: the simulation kernel
(:mod:`repro.sim.environment`, :mod:`repro.sim.rng`) imports it lazily,
and it must never pull the rest of :mod:`repro.obs` onto that path.

Quick start::

    from repro.obs.flight import FlightRecorder, use_flight

    recorder = FlightRecorder(epoch_events=512)
    with use_flight(recorder):
        ... run a workload (environments created inside attach) ...
    recorder.finish()
    recorder.epoch_digests      # compare against another run's
"""

from __future__ import annotations

import collections
import contextlib
import hashlib
import json
import re
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

#: Schema tag stamped on flight records in JSONL dumps.
FLIGHT_SCHEMA = "repro-flight/1"

#: Default epoch granularity: one digest per this many dispatched events.
DEFAULT_EPOCH_EVENTS = 512

# Strings that JSON renders literally as '"' + s + '"': printable ASCII
# with no quote or backslash.  Lets the hot journal channels build their
# canonical form with a format string instead of json.dumps (~5x); any
# other string falls back to the generic encoder.
_PLAIN = re.compile(r'^[ -!#-\[\]-~]*$').match


def canonical(record: Dict[str, Any]) -> str:
    """The digestable form of a record: sorted JSON, side fields dropped.

    Fields whose names start with ``_`` are side metadata (owning
    span/trace, attached by instrumentation when a tracer happens to be
    recording) and must not influence digests — a traced and an
    untraced run of the same seed journal identically.
    """
    return json.dumps(
        {key: value for key, value in record.items() if key[0] != "_"},
        sort_keys=True, separators=(",", ":"))


class FlightRecorder:
    """Journals kernel decisions into a ring with chained epoch digests.

    ``epoch_events`` rolls an epoch every N dispatched events (the
    default); ``epoch_interval`` instead rolls at fixed sim-time
    boundaries ``k * interval``.  ``keep_epochs=(lo, hi)`` restricts
    the *ring* to records of those epochs (digests always cover the
    whole run) and fills :attr:`context` with the last ``context``
    records from before the range — the divergence localizer's
    "full journal for just the divergent epoch" mode.

    The per-channel ``journal_*`` flags turn individual record kinds
    off; epochs still advance on dispatch either way.
    """

    enabled = True

    def __init__(self, ring: int = 4096,
                 epoch_events: Optional[int] = None,
                 epoch_interval: Optional[float] = None,
                 keep_epochs: Optional[Tuple[int, int]] = None,
                 context: int = 64,
                 journal_dispatch: bool = True,
                 journal_rng: bool = True,
                 journal_net: bool = True,
                 journal_locks: bool = True,
                 journal_actors: bool = True) -> None:
        if ring <= 0:
            raise ValueError("ring must be positive")
        if epoch_events is not None and epoch_interval is not None:
            raise ValueError(
                "epoch_events and epoch_interval are mutually exclusive")
        if epoch_interval is not None and epoch_interval <= 0:
            raise ValueError("epoch_interval must be positive")
        if epoch_events is None and epoch_interval is None:
            epoch_events = DEFAULT_EPOCH_EVENTS
        if epoch_events is not None and epoch_events <= 0:
            raise ValueError("epoch_events must be positive")
        self.epoch_events = epoch_events
        self.epoch_interval = epoch_interval
        self.keep_epochs = keep_epochs
        self.journal_dispatch = journal_dispatch
        self.journal_rng = journal_rng
        self.journal_net = journal_net
        self.journal_locks = journal_locks
        self.journal_actors = journal_actors
        self.ring: "collections.deque[Dict[str, Any]]" = \
            collections.deque(maxlen=ring)
        #: Records from just before ``keep_epochs`` (empty without it).
        self.context: "collections.deque[Dict[str, Any]]" = \
            collections.deque(maxlen=context)
        #: Chained digests, one per closed epoch: digest ``e`` hashes
        #: digest ``e-1`` followed by epoch ``e``'s canonical records.
        self.epoch_digests: List[str] = []
        #: Records journalled over the recorder's lifetime.
        self.recorded = 0
        #: Records pushed out of the ring.
        self.evicted = 0
        self._hash = hashlib.sha256()
        self._epoch = 0
        self._epoch_records = 0
        self._epoch_dispatches = 0
        self._boundary_index = 1
        self._time = 0.0
        self._finished = False

    # -- the journal -------------------------------------------------------

    @property
    def epoch(self) -> int:
        """The epoch currently being journalled (= closed epochs)."""
        return self._epoch

    def _append(self, record: Dict[str, Any],
                canon: Optional[str] = None) -> None:
        record["epoch"] = self._epoch
        self.recorded += 1
        self._epoch_records += 1
        if canon is None:
            if any(key[0] == "_" for key in record):
                canon = canonical(record)
            else:
                canon = json.dumps(record, sort_keys=True,
                                   separators=(",", ":"))
        self._hash.update(canon.encode())
        keep = self.keep_epochs
        if keep is not None:
            epoch = self._epoch
            if epoch < keep[0]:
                self.context.append(record)
                return
            if epoch > keep[1]:
                return
        if len(self.ring) == self.ring.maxlen:
            self.evicted += 1
        self.ring.append(record)

    def _roll(self) -> None:
        digest = self._hash.hexdigest()
        self.epoch_digests.append(digest)
        self._hash = hashlib.sha256(digest.encode())
        self._epoch += 1
        self._epoch_records = 0
        self._epoch_dispatches = 0

    def on_dispatch(self, time: float, priority: int, eid: int) -> None:
        """Journal one event dispatch; the epoch clock.

        Called by the environment's run loop with the popped entry
        already unpacked into ``(time, priority, eid)`` (the kernel's
        queue-agnostic :func:`repro.sim.environment.dispatch_parts`
        accessor), so the journal never depends on how a particular
        scheduler stores its keys — the record format is byte-identical
        across queue implementations.  Also tracks the current sim time
        for every other channel, so this must stay attached even when
        ``journal_dispatch`` is off.
        """
        if self.epoch_interval is not None:
            while time >= self._boundary_index * self.epoch_interval:
                self._roll()
                self._boundary_index += 1
        self._time = time
        if self.journal_dispatch:
            # The canonical form is built with a format string here:
            # dispatch records dominate the journal and json.dumps is
            # ~10x the cost (%r matches json's int/float rendering;
            # test_dispatch_fast_path_matches_canonical pins equality).
            self._append(
                {"kind": "dispatch", "time": time, "eid": eid,
                 "priority": priority},
                '{"eid":%r,"epoch":%r,"kind":"dispatch","priority":%r,'
                '"time":%r}' % (eid, self._epoch, priority, time))
        if self.epoch_events is not None:
            self._epoch_dispatches += 1
            if self._epoch_dispatches >= self.epoch_events:
                self._roll()

    def _side(self, record: Dict[str, Any], span: Any) -> Dict[str, Any]:
        if span is not None and getattr(span, "is_recording", False):
            record["_trace"] = span.trace_id
            record["_span"] = span.span_id
            record["_op"] = span.name
        return record

    def record_rng(self, stream: str, method: str, value: Any) -> None:
        """One RNG draw from a named stream (``repr`` keeps floats exact)."""
        value = repr(value)
        record = {"kind": "rng", "time": self._time, "stream": stream,
                  "method": method, "value": value}
        if _PLAIN(stream) and _PLAIN(method) and _PLAIN(value):
            self._append(record,
                         '{"epoch":%r,"kind":"rng","method":"%s",'
                         '"stream":"%s","time":%r,"value":"%s"}'
                         % (self._epoch, method, stream, self._time,
                            value))
        else:
            self._append(record)

    def record_hop(self, link: str, node: str, src: str, dst: str,
                   port: int, span: Any = None) -> None:
        """One packet clearing one link hop."""
        record = self._side(
            {"kind": "hop", "time": self._time, "link": link, "node": node,
             "src": src, "dst": dst, "port": port}, span)
        if _PLAIN(link) and _PLAIN(node) and _PLAIN(src) and _PLAIN(dst):
            self._append(record,
                         '{"dst":"%s","epoch":%r,"kind":"hop",'
                         '"link":"%s","node":"%s","port":%r,"src":"%s",'
                         '"time":%r}'
                         % (dst, self._epoch, link, node, port, src,
                            self._time))
        else:
            self._append(record)

    def record_drop(self, reason: str, link: Optional[str], src: str,
                    dst: str, port: int, span: Any = None) -> None:
        """One packet drop with its attributed reason."""
        self._append(self._side(
            {"kind": "drop", "time": self._time, "reason": reason,
             "link": link, "src": src, "dst": dst, "port": port}, span))

    def record_lock(self, event: str, key: str, owner: str, mode: str,
                    style: str, span: Any = None) -> None:
        """One lock-table transition (``grant``/``release``/``revoke``)."""
        self._append(self._side(
            {"kind": "lock", "time": self._time, "event": event,
             "key": key, "owner": owner, "mode": mode, "style": style},
            span))

    def record_spawn(self, actor: str) -> None:
        """A named actor process starting."""
        self._append({"kind": "spawn", "time": self._time, "actor": actor})

    def record_exit(self, actor: str, ok: bool) -> None:
        """A named actor process finishing (``ok`` False on error)."""
        self._append({"kind": "exit", "time": self._time, "actor": actor,
                      "ok": bool(ok)})

    def finish(self) -> int:
        """Close the trailing partial epoch; returns total epochs.

        Idempotent.  The partial epoch is only digested when it holds
        records or dispatches, so finishing an idle recorder twice is
        exactly one run's worth of digests.
        """
        if not self._finished:
            if self._epoch_records or self._epoch_dispatches:
                self._roll()
            self._finished = True
        return len(self.epoch_digests)

    # -- reading -----------------------------------------------------------

    def epoch_records(self, epoch: int) -> List[Dict[str, Any]]:
        """The retained records of one epoch, in journal order."""
        return [record for record in self.ring
                if record.get("epoch") == epoch]

    def records(self) -> Iterator[Dict[str, Any]]:
        """JSONL rows: epoch digests first, then the retained ring."""
        for index, digest in enumerate(self.epoch_digests):
            yield {"kind": "flight-epoch", "schema": FLIGHT_SCHEMA,
                   "index": index, "digest": digest}
        for record in self.ring:
            yield record

    def stats(self) -> Dict[str, int]:
        """Journal counters (for snapshots and the black box)."""
        return {"recorded": self.recorded, "evicted": self.evicted,
                "retained": len(self.ring),
                "epochs": len(self.epoch_digests)}

    def __len__(self) -> int:
        return len(self.ring)

    def __repr__(self) -> str:
        return "<FlightRecorder epoch={} recorded={}{}>".format(
            self._epoch, self.recorded,
            " evicted={}".format(self.evicted) if self.evicted else "")


class NoopFlightRecorder:
    """The disabled recorder: records nothing, allocates nothing."""

    enabled = False
    journal_dispatch = False
    journal_rng = False
    journal_net = False
    journal_locks = False
    journal_actors = False
    epoch_digests: List[str] = []
    recorded = 0
    evicted = 0
    epoch = 0

    def on_dispatch(self, time: float, priority: int, eid: int) -> None:
        pass

    def record_rng(self, stream: str, method: str, value: Any) -> None:
        pass

    def record_hop(self, *args: Any, **kwargs: Any) -> None:
        pass

    def record_drop(self, *args: Any, **kwargs: Any) -> None:
        pass

    def record_lock(self, *args: Any, **kwargs: Any) -> None:
        pass

    def record_spawn(self, actor: str) -> None:
        pass

    def record_exit(self, actor: str, ok: bool) -> None:
        pass

    def finish(self) -> int:
        return 0

    def epoch_records(self, epoch: int) -> List[Dict[str, Any]]:
        return []

    def records(self) -> Iterator[Dict[str, Any]]:
        return iter(())

    def stats(self) -> Dict[str, int]:
        return {"recorded": 0, "evicted": 0, "retained": 0, "epochs": 0}

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "<NoopFlightRecorder>"


#: The shared disabled recorder (the process default).
NOOP_FLIGHT = NoopFlightRecorder()

_flight: Union[FlightRecorder, NoopFlightRecorder] = NOOP_FLIGHT


def get_flight() -> Union[FlightRecorder, NoopFlightRecorder]:
    """The process-wide flight recorder consulted by kernel hooks.

    Environments bind it at construction (like the tracer, resolved
    lazily so the kernel never imports :mod:`repro.obs` eagerly), so
    install a recorder *before* creating the environments it should
    observe — :func:`use_flight` around a workload run does exactly
    that.
    """
    return _flight


def set_flight(recorder: Optional[Union[FlightRecorder,
                                        NoopFlightRecorder]]
               ) -> Union[FlightRecorder, NoopFlightRecorder]:
    """Install ``recorder`` (``None`` disables); returns the previous."""
    global _flight
    previous = _flight
    _flight = recorder if recorder is not None else NOOP_FLIGHT
    return previous


def enable_flight(**kwargs: Any) -> FlightRecorder:
    """Install and return a fresh :class:`FlightRecorder`."""
    recorder = FlightRecorder(**kwargs)
    set_flight(recorder)
    return recorder


def disable_flight() -> None:
    """Restore the zero-cost no-op default."""
    set_flight(NOOP_FLIGHT)


@contextlib.contextmanager
def use_flight(recorder: Union[FlightRecorder, NoopFlightRecorder]):
    """Scope ``recorder`` as the process default, restoring on exit."""
    previous = set_flight(recorder)
    try:
        yield recorder
    finally:
        set_flight(previous)


class BlackBox:
    """Post-mortem dump of the flight ring, metrics and open spans.

    Arm it around a workload (:meth:`armed`) or onto an SLO monitor
    (:meth:`arm_slo`); when the workload raises — or a burn alert of
    the configured severity fires — the last ``last`` flight records,
    the epoch digests, a metrics snapshot and every still-open span are
    written to ``path`` as one JSONL dump, readable by the report and
    dashboard CLIs.  ``flight``/``tracer``/``metrics`` default to the
    process-wide instances at dump time.
    """

    def __init__(self, path: str, flight: Any = None, tracer: Any = None,
                 metrics: Any = None, last: int = 256) -> None:
        if last <= 0:
            raise ValueError("last must be positive")
        self.path = path
        self.flight = flight
        self.tracer = tracer
        self.metrics = metrics
        self.last = last
        #: Dumps written so far (each overwrites ``path``).
        self.dumps = 0

    def dump(self, reason: str, error: Optional[BaseException] = None
             ) -> str:
        """Write the black-box JSONL dump; returns its path."""
        # Imported here: flight.py stays stdlib-only at module level so
        # the sim kernel can import it without pulling in repro.obs.
        from repro.obs.export import META_SCHEMA, span_record
        from repro.obs.metrics import get_metrics
        from repro.obs.tracer import get_tracer

        flight = self.flight if self.flight is not None else get_flight()
        tracer = self.tracer if self.tracer is not None else get_tracer()
        metrics = self.metrics if self.metrics is not None \
            else get_metrics()
        meta: Dict[str, Any] = {"kind": "meta", "schema": META_SCHEMA,
                                "black_box": True, "reason": reason,
                                "flight": flight.stats()}
        if error is not None:
            meta["error"] = "{}: {}".format(type(error).__name__, error)
        with open(self.path, "w") as handle:
            handle.write(json.dumps(meta, sort_keys=True) + "\n")
            for index, digest in enumerate(flight.epoch_digests):
                handle.write(json.dumps(
                    {"kind": "flight-epoch", "schema": FLIGHT_SCHEMA,
                     "index": index, "digest": digest},
                    sort_keys=True) + "\n")
            ring = list(flight.ring) if hasattr(flight, "ring") else []
            for record in ring[-self.last:]:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
            for record in metrics.records():
                handle.write(json.dumps(record, sort_keys=True) + "\n")
            for span in tracer.spans:
                if span.end is None:
                    record = span_record(span)
                    record["open"] = True
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
        self.dumps += 1
        return self.path

    @contextlib.contextmanager
    def armed(self):
        """Dump on any exception escaping the block, then re-raise."""
        try:
            yield self
        except BaseException as error:
            self.dump("exception", error)
            raise

    def arm_slo(self, monitor: Any, severity: str = "page") -> None:
        """Dump when ``monitor`` fires a burn alert of ``severity``.

        Chains any ``on_alert`` callback already installed on the
        monitor (the black box observes; it never swallows alerts).
        """
        previous = monitor.on_alert

        def on_alert(kind: str, alert: Any) -> None:
            if previous is not None:
                previous(kind, alert)
            if kind == "fired" and \
                    getattr(alert, "severity", None) == severity:
                self.dump("slo:{}".format(getattr(alert, "slo", "?")))

        monitor.on_alert = on_alert
