"""Sim-time profiler: where does *simulated* time go?

Wall-clock profilers answer "where does the CPU go"; for a discrete-event
simulation the interesting question is where the *modelled* seconds go —
which operations, nodes and actors account for the latency the users of
the cooperative platform would experience.  :class:`SpanProfile` answers
it from span enter/exit data already collected by the tracer:

* **inclusive** time — a span's full duration (double-counting guarded:
  a span nested under a same-keyed ancestor contributes only to
  exclusive time, so recursion does not inflate totals);
* **exclusive** (self) time — duration minus child spans, clamped at
  zero (children that outlive their parent, e.g. a response packet in
  flight after ``rpc.serve`` finished, cannot drive it negative).

The folded-stacks exporter emits the classic one-line-per-stack format
(``root;child;leaf <µs>``) consumed by ``flamegraph.pl`` and
`speedscope <https://speedscope.app>`_, so a flame graph of simulated
time is one command away::

    PYTHONPATH=src python -m repro.obs.profile traced-rpc \\
        --folded run.folded --top 15

Per-actor accounting comes from the ``actor.run`` spans opened by
``Environment.process(generator, name=...)`` and from any span carrying
an ``actor`` attribute.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.span import Span

#: Folded-stack values are integer microseconds of simulated time.
MICROSECONDS = 1e6


class _Row:
    """Aggregated inclusive/exclusive time for one profile key."""

    __slots__ = ("key", "count", "inclusive", "exclusive")

    def __init__(self, key: str) -> None:
        self.key = key
        self.count = 0
        self.inclusive = 0.0
        self.exclusive = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {"count": self.count, "inclusive": self.inclusive,
                "exclusive": self.exclusive}


def _as_record(span: Any) -> Dict[str, Any]:
    """Normalise a :class:`Span` or a JSONL span dict to one shape."""
    if isinstance(span, Span):
        return span.to_dict()
    return span


class SpanProfile:
    """Inclusive/exclusive simulated-time accounting over finished spans.

    Build one from a tracer (:meth:`from_tracer`), a JSONL dump
    (:meth:`from_records`) or incrementally with :meth:`add`; all
    aggregations are recomputed lazily and returned in sorted, stable
    order so profiles of deterministic runs are themselves deterministic.
    """

    def __init__(self) -> None:
        self._spans: List[Dict[str, Any]] = []
        self._prepared = False
        self._by_id: Dict[str, Dict[str, Any]] = {}
        self._exclusive: Dict[str, float] = {}
        #: Spans whose parent was not observed (evicted or unfinished).
        self.orphans = 0

    @classmethod
    def from_tracer(cls, tracer) -> "SpanProfile":
        profile = cls()
        for span in tracer.spans:
            profile.add(span)
        return profile

    @classmethod
    def from_records(cls, records: Iterable[Dict[str, Any]]
                     ) -> "SpanProfile":
        profile = cls()
        for record in records:
            if record.get("kind", "span") == "span":
                profile.add(record)
        return profile

    def add(self, span: Any) -> None:
        """Add one span (unfinished spans are ignored)."""
        record = _as_record(span)
        if record.get("end") is None:
            return
        self._spans.append(record)
        self._prepared = False

    # -- core computation --------------------------------------------------

    def _prepare(self) -> None:
        if self._prepared:
            return
        self._by_id = {record["span_id"]: record for record in self._spans}
        child_time: Dict[str, float] = {}
        self.orphans = 0
        for record in self._spans:
            parent_id = record.get("parent_id")
            if parent_id is not None:
                if parent_id in self._by_id:
                    child_time[parent_id] = child_time.get(parent_id, 0.0) \
                        + (record["end"] - record["start"])
                else:
                    self.orphans += 1
        self._exclusive = {}
        for record in self._spans:
            duration = record["end"] - record["start"]
            self._exclusive[record["span_id"]] = max(
                0.0, duration - child_time.get(record["span_id"], 0.0))
        self._prepared = True

    def _key_of(self, record: Dict[str, Any], by: str) -> Optional[str]:
        if by == "name":
            return record["name"]
        value = record.get("attributes", {}).get(by)
        if value is None and by == "actor" \
                and record["name"] == "actor.run":
            value = record.get("attributes", {}).get("actor")
        return None if value is None else str(value)

    def _has_same_key_ancestor(self, record: Dict[str, Any], by: str,
                               key: str) -> bool:
        parent_id = record.get("parent_id")
        while parent_id is not None:
            parent = self._by_id.get(parent_id)
            if parent is None:
                return False
            if self._key_of(parent, by) == key:
                return True
            parent_id = parent.get("parent_id")
        return False

    def aggregate(self, by: str = "name") -> Dict[str, Dict[str, float]]:
        """Rows keyed by span name (``by="name"``) or a span attribute.

        Exclusive time sums every span with the key; inclusive time only
        sums spans without a same-keyed ancestor, so nesting (recursion,
        an actor's spans under its ``actor.run``) never double-counts.
        """
        self._prepare()
        rows: Dict[str, _Row] = {}
        for record in self._spans:
            key = self._key_of(record, by)
            if key is None:
                continue
            row = rows.get(key)
            if row is None:
                row = rows[key] = _Row(key)
            row.count += 1
            row.exclusive += self._exclusive[record["span_id"]]
            if not self._has_same_key_ancestor(record, by, key):
                row.inclusive += record["end"] - record["start"]
        return {key: rows[key].as_dict() for key in sorted(rows)}

    def by_name(self) -> Dict[str, Dict[str, float]]:
        return self.aggregate("name")

    def by_node(self) -> Dict[str, Dict[str, float]]:
        return self.aggregate("node")

    def by_actor(self) -> Dict[str, Dict[str, float]]:
        return self.aggregate("actor")

    # -- exports -----------------------------------------------------------

    def folded(self) -> List[str]:
        """Folded-stack lines (``a;b;c <µs>``) of exclusive sim time.

        Stacks are span-name paths from the root; spans whose ancestry
        was evicted from the ring buffer start their stack at the first
        retained ancestor.  Zero-weight stacks are dropped.
        """
        self._prepare()
        weights: Dict[str, int] = {}
        for record in self._spans:
            value = int(round(
                self._exclusive[record["span_id"]] * MICROSECONDS))
            if value <= 0:
                continue
            names = [record["name"]]
            parent_id = record.get("parent_id")
            while parent_id is not None:
                parent = self._by_id.get(parent_id)
                if parent is None:
                    break
                names.append(parent["name"])
                parent_id = parent.get("parent_id")
            stack = ";".join(reversed(names))
            weights[stack] = weights.get(stack, 0) + value
        return ["{} {}".format(stack, weights[stack])
                for stack in sorted(weights)]

    def dump_folded(self, path: str) -> int:
        """Write folded stacks to ``path``; returns the line count."""
        lines = self.folded()
        with open(path, "w") as handle:
            for line in lines:
                handle.write(line + "\n")
        return len(lines)

    def span_window(self) -> Tuple[float, float]:
        """(earliest start, latest end) over the profiled spans."""
        if not self._spans:
            return (0.0, 0.0)
        return (min(r["start"] for r in self._spans),
                max(r["end"] for r in self._spans))

    def __len__(self) -> int:
        return len(self._spans)

    def __repr__(self) -> str:
        return "<SpanProfile spans={}>".format(len(self._spans))


# -- folded-dump diffing ---------------------------------------------------


def parse_folded(path: str) -> Dict[str, int]:
    """Read a folded-stacks dump back into ``{stack: microseconds}``.

    Accepts exactly what :meth:`SpanProfile.dump_folded` writes (and what
    flamegraph.pl consumes): one ``a;b;leaf <integer-µs>`` entry per
    line.  Blank lines are ignored; anything else raises ``ValueError``
    so a truncated dump fails loudly instead of diffing as zeros.
    """
    weights: Dict[str, int] = {}
    with open(path) as handle:
        for number, line in enumerate(handle, 1):
            line = line.rstrip("\n")
            if not line.strip():
                continue
            stack, _, value = line.rpartition(" ")
            if not stack or not value.lstrip("-").isdigit():
                raise ValueError(
                    "{}:{}: not a folded-stack line: {!r}".format(
                        path, number, line))
            weights[stack] = weights.get(stack, 0) + int(value)
    return weights


def diff_folded(old: Dict[str, int], new: Dict[str, int]
                ) -> Dict[str, Dict[str, int]]:
    """Per-leaf-operation sim-time deltas between two folded dumps.

    Stacks are grouped by their leaf span name (the operation that
    actually accrued the exclusive time), so the diff survives ancestry
    changes like a span gaining a parent.  Returns
    ``{operation: {"old": µs, "new": µs, "delta": µs}}`` for every
    operation present in either dump.
    """
    def by_leaf(weights: Dict[str, int]) -> Dict[str, int]:
        leaves: Dict[str, int] = {}
        for stack, value in weights.items():
            leaf = stack.rsplit(";", 1)[-1]
            leaves[leaf] = leaves.get(leaf, 0) + value
        return leaves

    old_leaves, new_leaves = by_leaf(old), by_leaf(new)
    return {
        leaf: {
            "old": old_leaves.get(leaf, 0),
            "new": new_leaves.get(leaf, 0),
            "delta": new_leaves.get(leaf, 0) - old_leaves.get(leaf, 0),
        }
        for leaf in sorted(set(old_leaves) | set(new_leaves))
    }


def render_diff(rows: Dict[str, Dict[str, int]], out=None) -> None:
    """Print a folded-dump diff, biggest |delta| first.

    An all-zero delta column is called out explicitly: identical
    simulated-time profiles are the expected proof that a performance
    change did not alter behaviour.
    """
    out = out if out is not None else sys.stdout
    ordered = sorted(rows.items(),
                     key=lambda item: (-abs(item[1]["delta"]), item[0]))
    _table("simulated time by operation (old vs new)",
           ["operation", "old (s)", "new (s)", "delta (s)"],
           [(leaf, row["old"] / MICROSECONDS, row["new"] / MICROSECONDS,
             row["delta"] / MICROSECONDS) for leaf, row in ordered], out)
    total = sum(row["delta"] for row in rows.values())
    if rows and all(row["delta"] == 0 for row in rows.values()):
        out.write("\nno simulated-time drift: the two runs spent sim time "
                  "identically (behaviour preserved)\n")
    else:
        out.write("\ntotal drift: {:+.6g}s simulated\n".format(
            total / MICROSECONDS))


# -- CLI -------------------------------------------------------------------


def _table(title: str, headers: Sequence[str],
           rows: Iterable[Sequence[Any]], out, top: Optional[int] = None
           ) -> None:
    from repro.obs._cli import render_table
    render_table(title, headers, rows, out=out, top=top)


def render_profile(profile: SpanProfile, out=None,
                   top: Optional[int] = None) -> None:
    """Print the by-operation / by-node / by-actor tables to ``out``."""
    out = out if out is not None else sys.stdout
    start, end = profile.span_window()
    out.write("{} finished spans over [{:.4g}s .. {:.4g}s] simulated\n"
              .format(len(profile), start, end))
    for by, title in (("name", "simulated time by operation"),
                      ("node", "simulated time by node"),
                      ("actor", "simulated time by actor")):
        rows = profile.aggregate(by)
        if not rows:
            continue
        ordered = sorted(rows.items(),
                         key=lambda item: (-item[1]["exclusive"], item[0]))
        _table(title,
               [by, "count", "inclusive (s)", "exclusive (s)"],
               [(key, int(row["count"]), row["inclusive"], row["exclusive"])
                for key, row in ordered], out, top=top)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.profile",
        description="Profile simulated time for a registered workload "
                    "(see repro.analysis.workloads) or a JSONL dump.")
    parser.add_argument("workload", nargs="?",
                        help="workload name (see --list), or a path to a "
                             "dump_jsonl() file when --from-dump is given; "
                             "not used with --diff")
    parser.add_argument("--seed", type=int, default=31,
                        help="experiment seed (default 31)")
    parser.add_argument("--top", type=int, default=None,
                        help="show at most N rows per table")
    parser.add_argument("--folded", metavar="PATH",
                        help="also write folded stacks (flamegraph.pl / "
                             "speedscope input) to PATH")
    parser.add_argument("--from-dump", action="store_true",
                        help="treat the positional argument as a JSONL "
                             "dump instead of a workload name")
    parser.add_argument("--diff", nargs=2, metavar=("OLD", "NEW"),
                        help="compare two folded dumps (--folded output) "
                             "and print per-operation sim-time deltas; "
                             "an all-zero diff proves two runs spent "
                             "simulated time identically")
    parser.add_argument("--scheduler", choices=("calendar", "heap"),
                        default=None,
                        help="run the workload on a specific event "
                             "queue; profiling both and --diff'ing the "
                             "folded dumps proves zero sim-time drift "
                             "between schedulers")
    parser.add_argument("--no-burst-carry", action="store_true",
                        help="run with the legacy per-event network "
                             "carry instead of the fused burst path")
    parser.add_argument("--list", action="store_true",
                        help="list known workloads and exit")
    options = parser.parse_args(argv)

    if options.diff:
        old_path, new_path = options.diff
        try:
            old, new = parse_folded(old_path), parse_folded(new_path)
        except (OSError, ValueError) as exc:
            print("error: {}".format(exc), file=sys.stderr)
            return 2
        render_diff(diff_folded(old, new))
        return 0

    if options.workload is None and not options.list:
        parser.error("a workload (or --diff OLD NEW, or --list) is "
                     "required")

    # Imported here: the workload registry pulls in most of the library,
    # which --from-dump and --list users should not have to pay for.
    from repro.analysis.workloads import WORKLOADS

    if options.list:
        for name in sorted(WORKLOADS):
            print(name)
        return 0

    if options.from_dump:
        from repro.obs._cli import (
            describe_meta,
            extract_meta,
            load_dump_records,
        )
        records = load_dump_records(options.workload)
        if records is None:
            return 2
        meta_line = describe_meta(extract_meta(records))
        if meta_line is not None:
            print(meta_line)
        profile = SpanProfile.from_records(records)
    else:
        if options.workload not in WORKLOADS:
            print("error: unknown workload {!r}; known: {}".format(
                options.workload, ", ".join(sorted(WORKLOADS))),
                file=sys.stderr)
            return 2
        import contextlib

        from repro.analysis.workloads import run_workload
        from repro.net.network import use_burst_carry
        from repro.obs.metrics import MetricsRegistry, use_metrics
        from repro.obs.tracer import Tracer, use_tracer
        from repro.sim.environment import use_scheduler
        tracer = Tracer()
        stack = contextlib.ExitStack()
        if options.scheduler is not None:
            stack.enter_context(use_scheduler(options.scheduler))
        if options.no_burst_carry:
            stack.enter_context(use_burst_carry(False))
        with stack, use_tracer(tracer), use_metrics(MetricsRegistry()):
            run_workload(options.workload, seed=options.seed)
        profile = SpanProfile.from_tracer(tracer)
        if not len(profile):
            print("note: workload {!r} emitted no finished spans".format(
                options.workload), file=sys.stderr)

    render_profile(profile, top=options.top)
    if options.folded:
        lines = profile.dump_folded(options.folded)
        print("\nwrote {} folded stack(s) to {}".format(
            lines, options.folded))
    return 0


if __name__ == "__main__":
    sys.exit(main())
