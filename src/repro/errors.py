"""Exception hierarchy for the repro middleware.

Every error raised by the library derives from :class:`ReproError`, so a
client can catch the whole family with one handler while still being able
to distinguish subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """A problem inside the discrete-event simulation kernel."""


class NetworkError(ReproError):
    """A problem in the simulated network substrate."""


class RoutingError(NetworkError):
    """No route exists between two nodes."""


class TransportError(NetworkError):
    """A transport-level failure (e.g. retry budget exhausted)."""


class NodeError(ReproError):
    """A problem in the engineering-viewpoint runtime (nodes/capsules)."""


class BindingError(ReproError):
    """An interface binding could not be created or has broken."""


class GroupError(ReproError):
    """A problem in the group-communication subsystem."""


class MembershipError(GroupError):
    """An operation referenced a member not in the current view."""


class SessionError(ReproError):
    """A problem in session management or floor control."""


class FloorControlError(SessionError):
    """An illegal floor-control operation (e.g. releasing a floor not held)."""


class ConcurrencyError(ReproError):
    """A problem in the concurrency-control subsystem."""


class TransactionAborted(ConcurrencyError):
    """The transaction was aborted (deadlock, conflict or explicit abort)."""


class LockError(ConcurrencyError):
    """An illegal lock operation."""


class AccessDenied(ReproError):
    """The access-control subsystem refused an operation."""


class AccessPolicyError(ReproError):
    """An access-control policy is malformed or an update is illegal."""


class QoSError(ReproError):
    """A quality-of-service failure."""


class QoSNegotiationFailed(QoSError):
    """No acceptable QoS contract could be agreed."""


class QoSViolation(QoSError):
    """A monitored stream violated its agreed QoS contract."""


class StreamError(ReproError):
    """A problem with a continuous-media stream or binding."""


class MobilityError(ReproError):
    """A problem in the mobile-computing subsystem."""


class DisconnectedError(MobilityError):
    """The operation required connectivity that is not currently available."""


class WorkflowError(ReproError):
    """A problem in the workflow substrate."""


class IllegalSpeechAct(WorkflowError):
    """A speech act was not permitted in the conversation's current state."""


class HypertextError(ReproError):
    """A problem in the multi-user hypertext substrate."""


class PlacementError(ReproError):
    """The management subsystem could not place or migrate an object."""


class ViewpointError(ReproError):
    """An inconsistency between ODP viewpoint specifications."""
