"""The ActionWorkflow loop (Medina-Mora, Winograd, Flores & Flores).

The paper cites *action-workflow* alongside the Co-ordinator (§3.2.1).
Where the Co-ordinator exposed raw speech acts, ActionWorkflow structured
each unit of work as a four-phase **loop** between a customer and a
performer:

1. **preparation** — the customer formulates the request;
2. **negotiation** — request and conditions of satisfaction are agreed;
3. **performance** — the performer does the work;
4. **acceptance** — the customer declares satisfaction, closing the loop.

Loops compose: a performer may open *sub-loops*, delegating parts of the
work to others; the parent's performance phase cannot complete until its
sub-loops have closed.  A business process map is then a tree of loops —
which this module renders for inspection.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro.errors import WorkflowError

PREPARATION = "preparation"
NEGOTIATION = "negotiation"
PERFORMANCE = "performance"
ACCEPTANCE = "acceptance"
CLOSED = "closed"
CANCELLED = "cancelled"

PHASES = (PREPARATION, NEGOTIATION, PERFORMANCE, ACCEPTANCE)

_loop_ids = itertools.count(1)  # repro: allow-RPR005 (ids are labels, not behaviour)


class WorkflowLoop:
    """One customer-performer loop, possibly with delegated sub-loops."""

    def __init__(self, customer: str, performer: str, what: str,
                 parent: Optional["WorkflowLoop"] = None) -> None:
        if customer == performer:
            raise WorkflowError("customer and performer must differ")
        self.loop_id = "loop-{}".format(next(_loop_ids))
        self.customer = customer
        self.performer = performer
        self.what = what
        self.parent = parent
        self.phase = PREPARATION
        self.conditions_of_satisfaction: Optional[str] = None
        self.sub_loops: List["WorkflowLoop"] = []
        self.history: List[str] = [PREPARATION]

    # -- phase transitions -----------------------------------------------------

    def request(self, conditions: str) -> None:
        """Customer: move from preparation into negotiation."""
        self._expect(PREPARATION)
        self.conditions_of_satisfaction = conditions
        self._advance(NEGOTIATION)

    def agree(self, conditions: Optional[str] = None) -> None:
        """Both parties settle the conditions; performance begins."""
        self._expect(NEGOTIATION)
        if conditions is not None:
            self.conditions_of_satisfaction = conditions
        self._advance(PERFORMANCE)

    def delegate(self, sub_performer: str, what: str) -> "WorkflowLoop":
        """Performer: open a sub-loop for part of the work.

        The performer of this loop is the *customer* of the sub-loop —
        ActionWorkflow's composition rule.
        """
        self._expect(PERFORMANCE)
        sub = WorkflowLoop(self.performer, sub_performer, what,
                           parent=self)
        self.sub_loops.append(sub)
        return sub

    def declare_complete(self) -> None:
        """Performer: report the work done; acceptance begins.

        Refused while any sub-loop remains open: delegated work is part
        of this loop's conditions of satisfaction.
        """
        self._expect(PERFORMANCE)
        open_subs = [sub for sub in self.sub_loops
                     if sub.phase not in (CLOSED, CANCELLED)]
        if open_subs:
            raise WorkflowError(
                "{} has open sub-loops: {}".format(
                    self.loop_id,
                    ", ".join(sub.loop_id for sub in open_subs)))
        self._advance(ACCEPTANCE)

    def declare_satisfaction(self) -> None:
        """Customer: the conditions are met; the loop closes."""
        self._expect(ACCEPTANCE)
        self._advance(CLOSED)

    def reject(self) -> None:
        """Customer: the work does not satisfy; back to performance."""
        self._expect(ACCEPTANCE)
        self._advance(PERFORMANCE)

    def cancel(self) -> None:
        """Either party abandons the loop (cascades to open sub-loops)."""
        if self.phase in (CLOSED, CANCELLED):
            raise WorkflowError(
                "{} is already {}".format(self.loop_id, self.phase))
        for sub in self.sub_loops:
            if sub.phase not in (CLOSED, CANCELLED):
                sub.cancel()
        self._advance(CANCELLED)

    # -- inspection ---------------------------------------------------------------

    @property
    def is_closed(self) -> bool:
        return self.phase == CLOSED

    def depth(self) -> int:
        """Delegation depth below this loop (0 = no sub-loops)."""
        if not self.sub_loops:
            return 0
        return 1 + max(sub.depth() for sub in self.sub_loops)

    def process_map(self, indent: int = 0) -> str:
        """The business-process map: the tree of loops, one per line."""
        line = "{}{} [{}] {} -> {}: {}".format(
            "  " * indent, self.loop_id, self.phase, self.customer,
            self.performer, self.what)
        lines = [line]
        for sub in self.sub_loops:
            lines.append(sub.process_map(indent + 1))
        return "\n".join(lines)

    # -- internals -------------------------------------------------------------------

    def _expect(self, phase: str) -> None:
        if self.phase != phase:
            raise WorkflowError(
                "{} is in {}, not {}".format(self.loop_id, self.phase,
                                             phase))

    def _advance(self, phase: str) -> None:
        self.phase = phase
        self.history.append(phase)
