"""Informal object routing: the Object Lens approach (§3.2.1).

*"...others adopt a considerably less formal approach (Object Lens)"* —
semi-structured objects move between user folders under user-authored
rules; nothing is forbidden, everything is logged.  The same deviating
traces that strict models reject simply flow through here, which is the
point of ablation A2.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import WorkflowError

_object_ids = itertools.count(1)  # repro: allow-RPR005 (ids are labels, not behaviour)


class WorkObject:
    """A semi-structured object: typed fields plus an action history."""

    def __init__(self, kind: str, fields: Optional[Dict[str, Any]] = None
                 ) -> None:
        self.object_id = "wo-{}".format(next(_object_ids))
        self.kind = kind
        self.fields: Dict[str, Any] = dict(fields or {})
        self.history: List[Tuple[str, str]] = []
        self.folder: Optional[str] = None

    def __repr__(self) -> str:
        return "<WorkObject {} kind={}>".format(self.object_id, self.kind)


Rule = Callable[[WorkObject], Optional[str]]


class FlexibleRouter:
    """User-tailorable routing of work objects between folders.

    Rules are ordered callables mapping an object to a destination folder
    (or None to pass).  Any actor may perform any action on any object at
    any time; actions append to history and re-run the rules.
    """

    def __init__(self) -> None:
        self.folders: Dict[str, List[WorkObject]] = {}
        self._rules: List[Tuple[str, Rule]] = []
        self.actions_performed = 0

    def add_folder(self, name: str) -> None:
        self.folders.setdefault(name, [])

    def add_rule(self, name: str, rule: Rule) -> None:
        """Append a routing rule (evaluated in insertion order)."""
        self._rules.append((name, rule))

    def submit(self, obj: WorkObject, folder: str = "inbox") -> None:
        """Introduce an object, then let the rules place it."""
        self.add_folder(folder)
        self._move(obj, folder)
        self._route(obj)

    def perform(self, actor: str, obj: WorkObject, action: str,
                **field_updates: Any) -> None:
        """Any action by any actor is accepted and recorded."""
        obj.history.append((actor, action))
        obj.fields.update(field_updates)
        self.actions_performed += 1
        self._route(obj)

    def run_trace(self, obj: WorkObject,
                  trace: List[Tuple[str, str]],
                  completion_action: str = "done") -> Tuple[bool, int]:
        """Replay a trace; returns (completed, rejections=0 always).

        Completion means the trace contains the completion action — the
        informal model never rejects, so rejections are structurally 0.
        """
        completed = False
        for actor, action in trace:
            self.perform(actor, obj, action)
            if action == completion_action:
                completed = True
        return (completed, 0)

    def objects_in(self, folder: str) -> List[WorkObject]:
        return list(self.folders.get(folder, []))

    # -- internals ------------------------------------------------------------

    def _route(self, obj: WorkObject) -> None:
        for _name, rule in self._rules:
            destination = rule(obj)
            if destination is not None and destination != obj.folder:
                self.add_folder(destination)
                self._move(obj, destination)
                return

    def _move(self, obj: WorkObject, folder: str) -> None:
        if obj.folder is not None and obj in self.folders.get(
                obj.folder, []):
            self.folders[obj.folder].remove(obj)
        self.folders[folder].append(obj)
        obj.folder = folder
