"""Speech-act workflow: the Coordinator's conversation for action (§3.2.1).

Winograd & Flores' conversation-for-action network, as used by the
Co-ordinator and ActionWorkflow systems the paper cites.  A conversation
moves through a fixed state machine of speech acts between a *customer*
(who requests) and a *performer* (who promises and reports).

The machine is deliberately strict — an act not licensed by the current
state raises :class:`IllegalSpeechAct`.  That strictness is precisely the
property the paper's §4.1 criticises (*"the overly prescriptive nature of
this underlying model"*); ablation A2 counts how many real interaction
traces it rejects compared with informal routing.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.errors import IllegalSpeechAct, WorkflowError

CUSTOMER = "customer"
PERFORMER = "performer"

# Conversation states.
INITIAL = "initial"
REQUESTED = "requested"
COUNTERED = "countered"
PROMISED = "promised"
REPORTED = "reported"
COMPLETED = "completed"
DECLINED = "declined"
WITHDRAWN = "withdrawn"
CANCELLED = "cancelled"
RENEGED = "reneged"

FINAL_STATES = (COMPLETED, DECLINED, WITHDRAWN, CANCELLED, RENEGED)

#: (state, role, act) -> next state.  The conversation-for-action net.
TRANSITIONS: Dict[Tuple[str, str, str], str] = {
    (INITIAL, CUSTOMER, "request"): REQUESTED,
    (REQUESTED, PERFORMER, "promise"): PROMISED,
    (REQUESTED, PERFORMER, "counter"): COUNTERED,
    (REQUESTED, PERFORMER, "decline"): DECLINED,
    (REQUESTED, CUSTOMER, "withdraw"): WITHDRAWN,
    (COUNTERED, CUSTOMER, "accept"): PROMISED,
    (COUNTERED, CUSTOMER, "counter"): COUNTERED,
    (COUNTERED, CUSTOMER, "withdraw"): WITHDRAWN,
    (COUNTERED, PERFORMER, "counter"): COUNTERED,
    (PROMISED, PERFORMER, "report_completion"): REPORTED,
    (PROMISED, PERFORMER, "renege"): RENEGED,
    (PROMISED, CUSTOMER, "cancel"): CANCELLED,
    (REPORTED, CUSTOMER, "declare_complete"): COMPLETED,
    (REPORTED, CUSTOMER, "declare_incomplete"): PROMISED,
}

_conversation_ids = itertools.count(1)  # repro: allow-RPR005 (ids are labels, not behaviour)


class Conversation:
    """One conversation for action between a customer and a performer."""

    def __init__(self, customer: str, performer: str,
                 about: str = "") -> None:
        if customer == performer:
            raise WorkflowError("customer and performer must differ")
        self.conversation_id = "cfa-{}".format(next(_conversation_ids))
        self.customer = customer
        self.performer = performer
        self.about = about
        self.state = INITIAL
        #: (actor, act, state after) history — the paper notes Coordinator
        #: makes this dimension of communication explicit and textual.
        self.history: List[Tuple[str, str, str]] = []

    @property
    def is_final(self) -> bool:
        return self.state in FINAL_STATES

    def role_of(self, actor: str) -> str:
        if actor == self.customer:
            return CUSTOMER
        if actor == self.performer:
            return PERFORMER
        raise WorkflowError(
            "{} is not a party to {}".format(actor, self.conversation_id))

    def legal_acts(self, actor: str) -> List[str]:
        """The acts the model currently licenses for ``actor``."""
        role = self.role_of(actor)
        return sorted(act for (state, r, act) in TRANSITIONS
                      if state == self.state and r == role)

    def perform(self, actor: str, act: str) -> str:
        """Perform a speech act; returns the new state.

        Raises :class:`IllegalSpeechAct` when the act is not licensed —
        the model *prescribes* what may be said next.
        """
        role = self.role_of(actor)
        key = (self.state, role, act)
        if key not in TRANSITIONS:
            raise IllegalSpeechAct(
                "{} may not '{}' in state '{}' (legal: {})".format(
                    actor, act, self.state,
                    ", ".join(self.legal_acts(actor)) or "none"))
        self.state = TRANSITIONS[key]
        self.history.append((actor, act, self.state))
        return self.state

    def __repr__(self) -> str:
        return "<Conversation {} [{}]>".format(
            self.conversation_id, self.state)


def run_trace(customer: str, performer: str,
              trace: List[Tuple[str, str]]) -> Tuple[Conversation, int]:
    """Replay an interaction trace; returns (conversation, rejections).

    Each rejected act is skipped (the user is forced to rephrase) and
    counted — the A2 prescriptiveness metric.
    """
    conversation = Conversation(customer, performer)
    rejections = 0
    for actor, act in trace:
        try:
            conversation.perform(actor, act)
        except (IllegalSpeechAct, WorkflowError):
            rejections += 1
    return conversation, rejections
