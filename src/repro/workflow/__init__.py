"""Workflow substrates: formal and informal coordination (§3.2.1)."""

from repro.workflow.action_workflow import (
    ACCEPTANCE,
    NEGOTIATION,
    PERFORMANCE,
    PHASES,
    PREPARATION,
    WorkflowLoop,
)
from repro.workflow.procedures import (
    Procedure,
    ProcedureInstance,
    STRICT,
    Step,
    TOLERANT,
)
from repro.workflow.routing import FlexibleRouter, WorkObject
from repro.workflow.speech_acts import (
    COMPLETED,
    CUSTOMER,
    Conversation,
    FINAL_STATES,
    PERFORMER,
    PROMISED,
    REPORTED,
    REQUESTED,
    TRANSITIONS,
    run_trace,
)

__all__ = [
    "ACCEPTANCE",
    "COMPLETED",
    "NEGOTIATION",
    "PERFORMANCE",
    "PHASES",
    "PREPARATION",
    "WorkflowLoop",
    "CUSTOMER",
    "Conversation",
    "FINAL_STATES",
    "FlexibleRouter",
    "PERFORMER",
    "PROMISED",
    "Procedure",
    "ProcedureInstance",
    "REPORTED",
    "REQUESTED",
    "STRICT",
    "Step",
    "TOLERANT",
    "TRANSITIONS",
    "WorkObject",
    "run_trace",
]
