"""Office procedures: Domino-style structured workflow (§3.2.1).

A :class:`Procedure` is an ordered net of steps, each naming the role that
must perform it and the action expected.  A :class:`ProcedureInstance`
advances strictly: wrong performer, wrong action or out-of-order work
raises — or, in *tolerant* mode, is logged as an exception and the work
continues (what real offices do: the working division of labour is
flexible, §2.2).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.errors import WorkflowError

_instance_ids = itertools.count(1)  # repro: allow-RPR005 (ids are labels, not behaviour)

STRICT = "strict"
TOLERANT = "tolerant"


class Step:
    """One step of an office procedure."""

    __slots__ = ("name", "role", "action")

    def __init__(self, name: str, role: str, action: str) -> None:
        self.name = name
        self.role = role
        self.action = action

    def __repr__(self) -> str:
        return "<Step {} ({} {})>".format(self.name, self.role,
                                          self.action)


class Procedure:
    """A named, ordered list of steps."""

    def __init__(self, name: str, steps: List[Step]) -> None:
        if not steps:
            raise WorkflowError("a procedure needs at least one step")
        names = [step.name for step in steps]
        if len(set(names)) != len(names):
            raise WorkflowError("step names must be unique")
        self.name = name
        self.steps = list(steps)

    def instantiate(self, mode: str = STRICT) -> "ProcedureInstance":
        """Start a new case of this procedure."""
        return ProcedureInstance(self, mode)


class ProcedureInstance:
    """A running case of a procedure."""

    def __init__(self, procedure: Procedure, mode: str = STRICT) -> None:
        if mode not in (STRICT, TOLERANT):
            raise WorkflowError("unknown mode: " + mode)
        self.instance_id = "case-{}".format(next(_instance_ids))
        self.procedure = procedure
        self.mode = mode
        self.position = 0
        self.exceptions: List[Tuple[int, str, str, str]] = []
        self.performed: List[Tuple[str, str, str]] = []

    @property
    def complete(self) -> bool:
        return self.position >= len(self.procedure.steps)

    @property
    def current_step(self) -> Optional[Step]:
        if self.complete:
            return None
        return self.procedure.steps[self.position]

    def perform(self, performer_role: str, action: str) -> bool:
        """Attempt the next piece of work.

        Returns True when the step advanced.  A deviation (wrong role or
        wrong action) raises in strict mode; in tolerant mode it is
        recorded as an exception and the step advances anyway — the
        informal reallocation of work the ethnographic studies observed.
        """
        if self.complete:
            raise WorkflowError(
                "case {} is already complete".format(self.instance_id))
        step = self.procedure.steps[self.position]
        deviation = None
        if performer_role != step.role:
            deviation = "role: expected {}, got {}".format(
                step.role, performer_role)
        elif action != step.action:
            deviation = "action: expected {}, got {}".format(
                step.action, action)
        if deviation is not None:
            if self.mode == STRICT:
                raise WorkflowError(
                    "case {} step {}: {}".format(
                        self.instance_id, step.name, deviation))
            self.exceptions.append(
                (self.position, step.name, performer_role, action))
        self.performed.append((step.name, performer_role, action))
        self.position += 1
        return True

    def run_trace(self,
                  trace: List[Tuple[str, str]]) -> Tuple[bool, int]:
        """Replay (role, action) work items; returns (completed, errors).

        Strict mode counts raised deviations (the case stalls on each);
        tolerant mode counts logged exceptions.
        """
        errors = 0
        for role, action in trace:
            if self.complete:
                break
            try:
                self.perform(role, action)
            except WorkflowError:
                errors += 1
        return (self.complete, errors + len(self.exceptions))
