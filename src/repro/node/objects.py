"""Engineering objects, clusters and capsules (ODP engineering viewpoint).

The ODP engineering model organises computation as *engineering objects*
grouped into *clusters* (the unit of migration), held in *capsules* (the
unit of encapsulated processing, roughly an address space), on *nodes*.
The paper's management discussion (§4.2.1) is about placing and re-locating
these clusters to suit group access patterns.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional

from repro.errors import NodeError

_object_ids = itertools.count(1)  # repro: allow-RPR005 (ids are labels, not behaviour)
_cluster_ids = itertools.count(1)  # repro: allow-RPR005 (ids are labels, not behaviour)
_capsule_ids = itertools.count(1)  # repro: allow-RPR005 (ids are labels, not behaviour)


class EngineeringObject:
    """An object offering named operations on private state.

    Operations are callables ``op(caller, state, args)``; a plain function
    completes instantaneously in simulated time, a generator function is run
    as a simulation process (so it can model computation/IO delays).
    """

    def __init__(self, name: str, state: Optional[Dict[str, Any]] = None,
                 state_size: int = 1024) -> None:
        if state_size < 0:
            raise NodeError("state_size must be non-negative")
        self.oid = "obj-{}".format(next(_object_ids))
        self.name = name
        self.state: Dict[str, Any] = dict(state or {})
        #: Serialised size in bytes — governs migration transfer cost.
        self.state_size = state_size
        self._operations: Dict[str, Callable] = {}
        self.cluster: Optional["Cluster"] = None
        self.invocations = 0

    def operation(self, name: str, fn: Callable) -> None:
        """Expose ``fn`` as operation ``name``."""
        self._operations[name] = fn

    def has_operation(self, name: str) -> bool:
        return name in self._operations

    def invoke_local(self, caller: str, op: str, args: Any):
        """Perform an operation locally (returns value or generator)."""
        fn = self._operations.get(op)
        if fn is None:
            raise NodeError("object {} has no operation {}".format(
                self.name, op))
        self.invocations += 1
        return fn(caller, self.state, args)

    def __repr__(self) -> str:
        return "<EngineeringObject {} ({})>".format(self.name, self.oid)


class Cluster:
    """The unit of object grouping and migration."""

    def __init__(self, name: str = "") -> None:
        self.cluster_id = "cluster-{}".format(next(_cluster_ids))
        self.name = name or self.cluster_id
        self.objects: Dict[str, EngineeringObject] = {}
        self.capsule: Optional["Capsule"] = None

    def add(self, obj: EngineeringObject) -> EngineeringObject:
        """Place an object in this cluster."""
        if obj.cluster is not None:
            raise NodeError(
                "object {} is already in a cluster".format(obj.name))
        self.objects[obj.oid] = obj
        obj.cluster = self
        return obj

    def remove(self, oid: str) -> EngineeringObject:
        """Detach an object from this cluster."""
        obj = self.objects.pop(oid, None)
        if obj is None:
            raise NodeError("no object {} in {}".format(oid, self.name))
        obj.cluster = None
        return obj

    @property
    def state_size(self) -> int:
        """Total serialised size of the cluster, for migration cost."""
        return sum(obj.state_size for obj in self.objects.values())

    def __len__(self) -> int:
        return len(self.objects)

    def __repr__(self) -> str:
        return "<Cluster {} objects={}>".format(self.name, len(self))


class Capsule:
    """A unit of encapsulated processing holding clusters."""

    def __init__(self, name: str = "") -> None:
        self.capsule_id = "capsule-{}".format(next(_capsule_ids))
        self.name = name or self.capsule_id
        self.clusters: Dict[str, Cluster] = {}
        self.node_name: Optional[str] = None

    def add_cluster(self, cluster: Cluster) -> Cluster:
        """Install a cluster in this capsule."""
        if cluster.capsule is not None:
            raise NodeError(
                "cluster {} is already in a capsule".format(cluster.name))
        self.clusters[cluster.cluster_id] = cluster
        cluster.capsule = self
        return cluster

    def remove_cluster(self, cluster_id: str) -> Cluster:
        """Remove a cluster (e.g. when migrating it away)."""
        cluster = self.clusters.pop(cluster_id, None)
        if cluster is None:
            raise NodeError(
                "no cluster {} in capsule {}".format(cluster_id, self.name))
        cluster.capsule = None
        return cluster

    def find_object(self, oid: str) -> Optional[EngineeringObject]:
        """Locate an object across this capsule's clusters."""
        for cluster in self.clusters.values():
            if oid in cluster.objects:
                return cluster.objects[oid]
        return None

    def all_objects(self) -> List[EngineeringObject]:
        return [obj for cluster in self.clusters.values()
                for obj in cluster.objects.values()]

    def __repr__(self) -> str:
        return "<Capsule {} clusters={}>".format(
            self.name, len(self.clusters))
