"""ODP engineering-viewpoint runtime: nodes, capsules, clusters, objects.

The unit structure follows the ODP engineering model the paper assumes:
engineering objects live in clusters (the unit of migration), clusters in
capsules, capsules on nodes.  :class:`ODPRuntime` wires a whole network of
nuclei to a single registry node and provides location-transparent
invocation and cluster migration — the mechanisms the paper's management
requirements (§4.2.1) act upon.
"""

from repro.node.objects import Capsule, Cluster, EngineeringObject
from repro.node.runtime import Nucleus, ODPRuntime, Registry, RPC_PORT

__all__ = [
    "Capsule",
    "Cluster",
    "EngineeringObject",
    "Nucleus",
    "ODPRuntime",
    "RPC_PORT",
    "Registry",
]
