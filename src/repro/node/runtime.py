"""The distributed object runtime: nuclei, the registry and invocation.

Each network host can run a :class:`Nucleus` (the ODP term for the node's
basic engineering support).  One nucleus additionally hosts the
:class:`Registry`, a name service mapping object ids to their current node.
Invocation is location-transparent: clients consult a local cache, fall
back to the registry, and chase one forwarding miss after a migration.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import NodeError, PlacementError
from repro.faults.policies import CircuitOpenError, FaultPolicies
from repro.net.network import Host, Network
from repro.net.transport import RemoteException, RpcEndpoint, RpcError
from repro.node.objects import Capsule, Cluster, EngineeringObject
from repro.obs.metrics import BoundCounterCache, get_metrics
from repro.obs.tracer import get_tracer
from repro.sim import Event

RPC_PORT = 10


class Registry:
    """Object-id → node-name directory, hosted by one nucleus."""

    def __init__(self) -> None:
        self.locations: Dict[str, str] = {}

    def register(self, oid: str, node_name: str) -> None:
        self.locations[oid] = node_name

    def unregister(self, oid: str) -> None:
        self.locations.pop(oid, None)

    def lookup(self, oid: str) -> Optional[str]:
        return self.locations.get(oid)


class Nucleus:
    """Per-node engineering support: capsules, invocation, migration."""

    def __init__(self, host: Host, registry_node: str,
                 registry: Optional[Registry] = None,
                 policies: Optional[FaultPolicies] = None) -> None:
        self.host = host
        self.env = host.env
        self.node_name = host.name
        self.registry_node = registry_node
        #: Non-None only on the registry node itself.
        self.registry = registry
        #: Optional recovery policies for this nucleus's outgoing RPC
        #: (retry with backoff, deadline budget, circuit breaker).
        #: ``None`` keeps the invoke path byte-identical.
        self.policies = policies
        self.capsules: Dict[str, Capsule] = {}
        self._location_cache: Dict[str, str] = {}
        # Bound metric handles for the per-invocation instruments;
        # rebound whenever the process-default registry changes identity.
        self._invocation_counters = BoundCounterCache(
            "node.invocations", "kind", node=host.name)
        self._op_counters = BoundCounterCache(
            "node.op.invocations", "op", node=host.name)
        self._bound_registry = None
        self._rpc_latency = None
        self.rpc = RpcEndpoint(host, port=RPC_PORT, policies=policies)
        self.rpc.register("invoke", self._handle_invoke)
        self.rpc.register("migrate_in", self._handle_migrate_in)
        self.rpc.register("whereis", self._handle_whereis)
        self.rpc.register("register_object", self._handle_register)

    # -- capsule / object management ----------------------------------------

    def create_capsule(self, name: str = "") -> Capsule:
        """Create a capsule on this node."""
        capsule = Capsule(name)
        capsule.node_name = self.node_name
        self.capsules[capsule.capsule_id] = capsule
        return capsule

    def create_object(self, capsule: Capsule, name: str,
                      cluster: Optional[Cluster] = None,
                      state: Optional[Dict[str, Any]] = None,
                      state_size: int = 1024) -> EngineeringObject:
        """Create an object (and cluster if needed) and register it."""
        if capsule.capsule_id not in self.capsules:
            raise NodeError("capsule {} is not on node {}".format(
                capsule.name, self.node_name))
        if cluster is None:
            cluster = Cluster(name + "-cluster")
            capsule.add_cluster(cluster)
        elif cluster.capsule is not capsule:
            raise NodeError("cluster {} is not in capsule {}".format(
                cluster.name, capsule.name))
        obj = EngineeringObject(name, state=state, state_size=state_size)
        cluster.add(obj)
        self._register_location(obj.oid, self.node_name)
        return obj

    def find_object(self, oid: str) -> Optional[EngineeringObject]:
        """Locate an object in any local capsule."""
        for capsule in self.capsules.values():
            obj = capsule.find_object(oid)
            if obj is not None:
                return obj
        return None

    # -- invocation ----------------------------------------------------------

    def invoke(self, oid: str, op: str, args: Any = None,
               timeout: float = 10.0, parent: Any = None) -> Event:
        """Invoke ``op`` on the (possibly remote) object ``oid``.

        Location transparency: local objects short-circuit the network; for
        remote ones the cached location is tried first, then the registry,
        chasing at most two stale-location misses (e.g. mid-migration).

        ``parent`` optionally names the caller's span (or span context) so
        application code can root the invocation's trace under its own
        activity (e.g. a think-time span).
        """
        done = self.env.event()
        self.env.process(
            self._invoke_proc(oid, op, args, timeout, done, parent))
        return done

    def _invoke_proc(self, oid: str, op: str, args: Any,
                     timeout: float, done: Event, parent: Any = None):
        start = self.env.now
        metrics = get_metrics()
        span = get_tracer().start_span(
            "node.invoke", at=start, parent=parent,
            node=self.node_name, oid=oid, op=op)
        self._op_counters.get(op).add()
        local = self.find_object(oid)
        if local is not None:
            span.set_attribute("target", "local")
            self._invocation_counters.get("local").add()
            try:
                result = local.invoke_local(self.node_name, op, args)
                if hasattr(result, "send") and hasattr(result, "throw"):
                    result = yield self.env.process(result)
                span.finish(at=self.env.now)
                done.succeed(result)
            except Exception as error:  # noqa: BLE001 - surfaced to caller
                span.set_status("error")
                span.finish(at=self.env.now)
                done.fail(error if isinstance(error, NodeError)
                          else NodeError(str(error)))
            return
        span.set_attribute("target", "remote")
        self._invocation_counters.get("remote").add()
        attempts = 0
        while attempts < 3:
            location = self._location_cache.get(oid)
            if location is None:
                location = yield from self._whereis(oid, timeout, span)
                if location is None:
                    span.set_status("error")
                    span.finish(at=self.env.now)
                    done.fail(NodeError("unknown object " + oid))
                    return
                self._location_cache[oid] = location
            try:
                result = yield self.rpc.call(
                    location, "invoke",
                    {"oid": oid, "op": op, "args": args}, timeout=timeout,
                    parent=span)
            except RemoteException as error:
                if "object-not-here" in str(error):
                    span.add_event("stale-location", at=self.env.now,
                                   location=location)
                    self._location_cache.pop(oid, None)
                    attempts += 1
                    continue
                span.set_status("error")
                span.finish(at=self.env.now)
                done.fail(NodeError(str(error)))
                return
            except CircuitOpenError as error:
                # Fail fast, preserving the distinct type so callers can
                # tell "refused locally" from "tried and timed out".
                span.set_status("error")
                span.set_attribute("error", "circuit-open")
                span.finish(at=self.env.now)
                done.fail(error)
                return
            except RpcError as error:
                span.set_status("error")
                span.finish(at=self.env.now)
                done.fail(NodeError(str(error)))
                return
            span.finish(at=self.env.now)
            if metrics is not self._bound_registry:
                self._bound_registry = metrics
                self._rpc_latency = metrics.bind_histogram(
                    "rpc.latency", node=self.node_name)
            self._rpc_latency.record(self.env.now - start)
            done.succeed(result)
            return
        span.set_status("error")
        span.finish(at=self.env.now)
        done.fail(NodeError(
            "could not locate object {} after migration chase".format(oid)))

    def _whereis(self, oid: str, timeout: float, parent: Any = None):
        if self.registry is not None:
            return self.registry.lookup(oid)
        span = get_tracer().start_span(
            "node.whereis", at=self.env.now, parent=parent,
            node=self.node_name, oid=oid)
        try:
            location = yield self.rpc.call(
                self.registry_node, "whereis", oid, timeout=timeout,
                parent=span)
        except (RpcError, RemoteException):
            span.set_status("error")
            span.finish(at=self.env.now)
            return None
        span.finish(at=self.env.now)
        return location

    # -- migration -----------------------------------------------------------

    def migrate_cluster(self, cluster: Cluster, target_node: str,
                        timeout: float = 30.0) -> Event:
        """Move a cluster (all its objects) to another node.

        The event fires when the target has installed the cluster and the
        registry has been updated.  Transfer time is governed by the
        cluster's serialised size crossing the network.
        """
        done = self.env.event()
        self.env.process(
            self._migrate_proc(cluster, target_node, timeout, done))
        return done

    def _migrate_proc(self, cluster: Cluster, target_node: str,
                      timeout: float, done: Event):
        capsule = cluster.capsule
        if capsule is None or capsule.node_name != self.node_name:
            done.fail(PlacementError(
                "cluster {} is not on node {}".format(
                    cluster.name, self.node_name)))
            return
        size = cluster.state_size
        span = get_tracer().start_span(
            "node.migrate", at=self.env.now, node=self.node_name,
            cluster=cluster.name, target=target_node, bytes=size)
        capsule.remove_cluster(cluster.cluster_id)
        snapshot = {
            "name": cluster.name,
            "objects": [
                {"oid": obj.oid, "name": obj.name, "state": obj.state,
                 "state_size": obj.state_size,
                 "operations": obj._operations}
                for obj in cluster.objects.values()
            ],
        }
        try:
            yield self.rpc.call(target_node, "migrate_in", snapshot,
                                timeout=timeout, parent=span)
        except (RpcError, RemoteException) as error:
            # Roll back: reinstall locally.
            capsule.add_cluster(cluster)
            span.set_status("error")
            span.finish(at=self.env.now)
            done.fail(PlacementError("migration failed: {}".format(error)))
            return
        # Charge the bulk state transfer (snapshot payloads are modelled
        # as zero-size control packets; the state crosses as one burst).
        yield from self._charge_transfer(target_node, size)
        for obj in cluster.objects.values():
            yield from self._update_registry(obj.oid, target_node)
        span.finish(at=self.env.now)
        get_metrics().counter("node.migrations", node=self.node_name).add()
        done.succeed(target_node)

    def _charge_transfer(self, target_node: str, size: int):
        path = self.host.network.topology.path(self.node_name, target_node)
        for link in path:
            yield self.env.timeout(link.transmission_delay(size))

    def _register_location(self, oid: str, node_name: str) -> None:
        if self.registry is not None:
            self.registry.register(oid, node_name)
        else:
            self.rpc.call(self.registry_node, "register_object",
                          {"oid": oid, "node": node_name}).defuse()

    def _update_registry(self, oid: str, node_name: str):
        if self.registry is not None:
            self.registry.register(oid, node_name)
        else:
            yield self.rpc.call(self.registry_node, "register_object",
                                {"oid": oid, "node": node_name})

    # -- RPC handlers ----------------------------------------------------------

    def _handle_invoke(self, caller: str, request: Dict[str, Any]):
        obj = self.find_object(request["oid"])
        if obj is None:
            raise NodeError("object-not-here: " + request["oid"])
        result = obj.invoke_local(caller, request["op"], request["args"])
        if hasattr(result, "send") and hasattr(result, "throw"):
            final = yield self.env.process(result)
            return final
        return result

    def _handle_migrate_in(self, caller: str, snapshot: Dict[str, Any]):
        capsule = self._default_capsule()
        cluster = Cluster(snapshot["name"])
        capsule.add_cluster(cluster)
        for spec in snapshot["objects"]:
            obj = EngineeringObject(spec["name"], state=spec["state"],
                                    state_size=spec["state_size"])
            obj.oid = spec["oid"]
            obj._operations = spec["operations"]
            cluster.add(obj)
        return cluster.cluster_id

    def _handle_whereis(self, caller: str, oid: str):
        if self.registry is None:
            raise NodeError("this node does not host the registry")
        location = self.registry.lookup(oid)
        if location is None:
            raise NodeError("unknown object " + oid)
        return location

    def _handle_register(self, caller: str, request: Dict[str, Any]):
        if self.registry is None:
            raise NodeError("this node does not host the registry")
        self.registry.register(request["oid"], request["node"])
        return True

    def _default_capsule(self) -> Capsule:
        if not self.capsules:
            return self.create_capsule("default")
        return next(iter(self.capsules.values()))


class ODPRuntime:
    """Convenience: a whole network of nuclei with one registry."""

    def __init__(self, network: Network, registry_node: str,
                 policies: Optional[FaultPolicies] = None) -> None:
        self.network = network
        self.env = network.env
        self.registry = Registry()
        self.registry_node = registry_node
        #: Shared recovery policies handed to every nucleus (a shared
        #: circuit breaker aggregates failure history across callers).
        self.policies = policies
        self.nuclei: Dict[str, Nucleus] = {}
        self.nucleus(registry_node)

    def nucleus(self, node_name: str) -> Nucleus:
        """Start (or fetch) the nucleus for a node."""
        if node_name not in self.nuclei:
            host = self.network.host(node_name)
            registry = self.registry if node_name == self.registry_node \
                else None
            self.nuclei[node_name] = Nucleus(
                host, self.registry_node, registry=registry,
                policies=self.policies)
        return self.nuclei[node_name]

    def locate(self, oid: str) -> Optional[str]:
        """Authoritative location of an object (registry view)."""
        return self.registry.lookup(oid)

    def all_objects(self) -> List[EngineeringObject]:
        return [obj for nucleus in self.nuclei.values()
                for capsule in nucleus.capsules.values()
                for obj in capsule.all_objects()]
