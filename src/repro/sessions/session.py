"""Sessions: the unit of cooperative activity (§3.2.2, §3.1).

A :class:`Session` gathers members around shared artefacts, with an
awareness bus, an optional floor policy and a space-time classification
(synchronous/asynchronous × co-located/remote).  Sessions support the
*seamless transition* the paper demands (§3.1): switching interaction mode
preserves membership, artefacts and history — experiment F1 measures the
transition.

Members join by invitation (:class:`InvitationService`) and late joiners
receive a state transfer whose latency scales with artefact size.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.awareness.events import (
    ACTION_JOIN,
    ACTION_LEAVE,
    ACTION_SUSPECTED,
    AwarenessBus,
)
from repro.concurrency.store import SharedStore
from repro.errors import SessionError
from repro.sessions.floor import FloorPolicy
from repro.sim import Counter, Environment, Event

SYNCHRONOUS = "synchronous"
ASYNCHRONOUS = "asynchronous"
CO_LOCATED = "co-located"
REMOTE = "remote"

_session_ids = itertools.count(1)  # repro: allow-RPR005 (ids are labels, not behaviour)
_invite_ids = itertools.count(1)  # repro: allow-RPR005 (ids are labels, not behaviour)


class Session:
    """A cooperative session over shared artefacts."""

    def __init__(self, env: Environment, name: str,
                 time_mode: str = SYNCHRONOUS,
                 place_mode: str = REMOTE,
                 floor: Optional[FloorPolicy] = None,
                 awareness_latency: float = 0.0) -> None:
        if time_mode not in (SYNCHRONOUS, ASYNCHRONOUS):
            raise SessionError("unknown time mode: " + time_mode)
        if place_mode not in (CO_LOCATED, REMOTE):
            raise SessionError("unknown place mode: " + place_mode)
        self.session_id = "session-{}".format(next(_session_ids))
        self.env = env
        self.name = name
        self.time_mode = time_mode
        self.place_mode = place_mode
        self.floor = floor
        self.members: List[str] = []
        # Session workspaces keep a public history — accountability in
        # the collective process (§2.3).
        self.store = SharedStore(name + "-store", keep_history=True)
        self.awareness = AwarenessBus(env, latency=awareness_latency)
        self.counters = Counter()
        #: (at, from_mode, to_mode) transition history.
        self.transitions: List[Tuple[float, str, str]] = []
        self._member_state_size = 0

    @property
    def quadrant(self) -> Tuple[str, str]:
        """The session's current cell in the space-time matrix."""
        return (self.time_mode, self.place_mode)

    def join(self, member: str) -> None:
        """Add a member directly (invitation already settled)."""
        if member in self.members:
            raise SessionError(
                "{} is already in session {}".format(member, self.name))
        self.members.append(member)
        self.counters.incr("joins")
        self.awareness.publish(member, self.name, ACTION_JOIN)

    def leave(self, member: str) -> None:
        """Remove a member."""
        if member not in self.members:
            raise SessionError(
                "{} is not in session {}".format(member, self.name))
        self.members.remove(member)
        self.counters.incr("leaves")
        if self.floor is not None and self.floor.holds(member):
            self.floor.release(member)
        self.awareness.publish(member, self.name, ACTION_LEAVE)

    def handle_suspected_member(self, member: str) -> bool:
        """React to a failure detector suspecting ``member``.

        The member stays in the session (the suspicion may be wrong —
        e.g. a partition, after which they should find their seat
        intact), but a held floor is released immediately so the
        collective activity is not deadlocked behind a silent holder
        (§2.3: reliability of the whole over any individual).  Returns
        True when a floor was actually reclaimed.
        """
        if member not in self.members:
            return False
        self.counters.incr("suspected")
        self.awareness.publish(member, self.name, ACTION_SUSPECTED)
        if self.floor is not None and self.floor.holds(member):
            self.floor.release(member)
            self.counters.incr("floor_reclaims")
            return True
        return False

    def switch_mode(self, time_mode: Optional[str] = None,
                    place_mode: Optional[str] = None) -> Tuple[str, str]:
        """Seamlessly transition across the space-time matrix.

        Membership, artefacts, awareness history and floor state are all
        preserved — only the interaction mode changes.  Returns the new
        quadrant.
        """
        before = "{}/{}".format(self.time_mode, self.place_mode)
        if time_mode is not None:
            if time_mode not in (SYNCHRONOUS, ASYNCHRONOUS):
                raise SessionError("unknown time mode: " + time_mode)
            self.time_mode = time_mode
        if place_mode is not None:
            if place_mode not in (CO_LOCATED, REMOTE):
                raise SessionError("unknown place mode: " + place_mode)
            self.place_mode = place_mode
        after = "{}/{}".format(self.time_mode, self.place_mode)
        self.transitions.append((self.env.now, before, after))
        self.counters.incr("transitions")
        return self.quadrant

    def state_snapshot(self) -> Dict[str, Any]:
        """Everything a late joiner needs (the state-transfer payload)."""
        return {
            "artefacts": self.store.snapshot(),
            "members": list(self.members),
            "quadrant": self.quadrant,
        }

    def __repr__(self) -> str:
        return "<Session {} {} members={}>".format(
            self.name, self.quadrant, len(self.members))


ACCEPT = "accept"
DECLINE = "decline"
TIMEOUT = "timeout"


class InvitationService:
    """Invite/accept/decline with late-join state transfer."""

    def __init__(self, env: Environment,
                 state_transfer_rate: float = 1e6) -> None:
        if state_transfer_rate <= 0:
            raise SessionError("state_transfer_rate must be positive")
        self.env = env
        self.state_transfer_rate = state_transfer_rate
        self._responders: Dict[str, Callable[[str, Session], bool]] = {}
        self.counters = Counter()

    def on_invite(self, member: str,
                  responder: Callable[[str, Session], bool]) -> None:
        """How ``member`` answers invitations: True accept, False decline."""
        self._responders[member] = responder

    def invite(self, session: Session, inviter: str, member: str,
               deadline: float = 10.0,
               state_size: int = 0) -> Event:
        """Invite ``member``; fires with accept/decline/timeout.

        On acceptance the member joins after a state transfer of
        ``state_size`` bytes at the configured rate (late-join cost).
        """
        if inviter not in session.members:
            raise SessionError(
                "inviter {} is not in the session".format(inviter))
        event = self.env.event()
        self.counters.incr("invitations")
        self.env.process(
            self._run(session, member, deadline, state_size, event))
        return event

    def _run(self, session: Session, member: str, deadline: float,
             state_size: int, event: Event):
        responder = self._responders.get(member)
        if responder is None:
            yield self.env.timeout(deadline)
            self.counters.incr("timeouts")
            event.succeed(TIMEOUT)
            return
        # A human answer takes some fraction of the deadline.
        yield self.env.timeout(min(1.0, deadline / 2))
        if not responder(member, session):
            self.counters.incr("declines")
            event.succeed(DECLINE)
            return
        if state_size > 0:
            yield self.env.timeout(
                state_size * 8.0 / self.state_transfer_rate)
        session.join(member)
        self.counters.incr("accepts")
        event.succeed(ACCEPT)
