"""Session management, floor control and application sharing (§3.2.2)."""

from repro.sessions.floor import (
    ChairedFloor,
    FcfsFloor,
    FLOOR_POLICIES,
    FloorPolicy,
    FreeFloor,
    NegotiatedFloor,
    RoundRobinFloor,
)
from repro.sessions.session import (
    ACCEPT,
    ASYNCHRONOUS,
    CO_LOCATED,
    DECLINE,
    InvitationService,
    REMOTE,
    SYNCHRONOUS,
    Session,
    TIMEOUT,
)
from repro.sessions.telepointers import TelepointerService
from repro.sessions.sharing import (
    AwareSharedObject,
    SingleUserApp,
    TransparentConference,
    identical_view,
    summary_view,
)

__all__ = [
    "ACCEPT",
    "ASYNCHRONOUS",
    "AwareSharedObject",
    "CO_LOCATED",
    "ChairedFloor",
    "DECLINE",
    "FLOOR_POLICIES",
    "FcfsFloor",
    "FloorPolicy",
    "FreeFloor",
    "InvitationService",
    "NegotiatedFloor",
    "REMOTE",
    "RoundRobinFloor",
    "SYNCHRONOUS",
    "Session",
    "SingleUserApp",
    "TIMEOUT",
    "TelepointerService",
    "TransparentConference",
    "identical_view",
    "summary_view",
]
