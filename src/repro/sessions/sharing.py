"""Collaboration-transparent and collaboration-aware sharing (§3.2.2).

Two ways of putting an application in front of a group:

* **Collaboration-transparent** (:class:`TransparentConference`, after
  Rapport/SharedX/MMConf): the application is single-user and unaware of
  the group.  Input from members is *multidropped* into one stream —
  arbitration by a floor policy — and display output is *multicast* to
  every member's screen.  The application cannot present itself
  differently to different users, and the conference pays the multicast
  display bandwidth.
* **Collaboration-aware** (:class:`AwareSharedObject`): the object knows
  its users; each member has a tailorable *view policy* deciding how state
  changes are presented to them, and concurrent access is managed
  explicitly (here: any member may operate; per-member presentation).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import FloorControlError, SessionError
from repro.sessions.floor import FloorPolicy
from repro.sim import Counter, Environment, Event


class SingleUserApp:
    """A collaboration-unaware application: one input, one display.

    ``handle(input) -> display`` is the whole interface; the default
    implementation is an append-only editor, sufficient for the sharing
    experiments.
    """

    def __init__(self,
                 handler: Optional[Callable[[Any, List[Any]], Any]] = None
                 ) -> None:
        self.state: List[Any] = []
        self._handler = handler or self._append

    @staticmethod
    def _append(event: Any, state: List[Any]) -> str:
        state.append(event)
        return "display:{} items".format(len(state))

    def handle(self, event: Any) -> Any:
        """Process one input event, returning the new display output."""
        return self._handler(event, self.state)


class TransparentConference:
    """A single-user app shared by multicasting display, multidropping input."""

    def __init__(self, env: Environment, app: SingleUserApp,
                 floor: FloorPolicy, display_size: int = 2048,
                 display_latency: float = 0.02) -> None:
        if display_size < 0 or display_latency < 0:
            raise SessionError(
                "display size/latency must be non-negative")
        self.env = env
        self.app = app
        self.floor = floor
        self.display_size = display_size
        self.display_latency = display_latency
        self.members: List[str] = []
        self.counters = Counter()
        self.display_bytes_sent = 0
        #: member -> list of (time, display output) updates received.
        self.screens: Dict[str, List[Tuple[float, Any]]] = {}

    def join(self, member: str) -> None:
        if member in self.members:
            raise SessionError("{} already joined".format(member))
        self.members.append(member)
        self.screens[member] = []

    def submit(self, member: str, event: Any) -> Event:
        """A member's input: granted the floor, applied, display multicast.

        Fires with the display output once the member's own screen has
        been updated.
        """
        if member not in self.members:
            raise SessionError("{} is not in the conference".format(member))
        done = self.env.event()
        self.env.process(self._turn(member, event, done))
        return done

    def _turn(self, member: str, event: Any, done: Event):
        try:
            yield self.floor.request(member)
        except FloorControlError as error:
            done.fail(error)
            return
        output = self.app.handle(event)
        self.counters.incr("inputs")
        # Multicast the new display to every member's screen.
        for viewer in self.members:
            self.display_bytes_sent += self.display_size
            self.env.process(self._paint(viewer, output))
        self.floor.release(member)
        yield self.env.timeout(self.display_latency)
        done.succeed(output)

    def _paint(self, viewer: str, output: Any):
        yield self.env.timeout(self.display_latency)
        self.screens[viewer].append((self.env.now, output))
        self.counters.incr("display_updates")


ViewPolicy = Callable[[str, str, Any], Any]


def identical_view(member: str, key: str, value: Any) -> Any:
    """WYSIWIS: everyone sees the same thing (the transparent default)."""
    return value


def summary_view(member: str, key: str, value: Any) -> Any:
    """A reduced-detail presentation (e.g. for a peripheral participant)."""
    text = str(value)
    return text[:20] + "..." if len(text) > 20 else text


class AwareSharedObject:
    """A collaboration-aware shared object with per-member view policies.

    The paper's criticism of transparent sharing is that *"applications
    tend to encapsulate the decisions as to how information is presented
    and modified.  This lack of visibility inhibits tailoring."*  Here the
    presentation policy is explicit, per member, and replaceable at any
    time.
    """

    def __init__(self, env: Environment, name: str = "object") -> None:
        self.env = env
        self.name = name
        self.state: Dict[str, Any] = {}
        self._views: Dict[str, ViewPolicy] = {}
        #: member -> list of (time, key, presented value).
        self.presented: Dict[str, List[Tuple[float, str, Any]]] = {}
        self.counters = Counter()

    def join(self, member: str,
             view: Optional[ViewPolicy] = None) -> None:
        if member in self._views:
            raise SessionError("{} already joined".format(member))
        self._views[member] = view or identical_view
        self.presented[member] = []

    def set_view(self, member: str, view: ViewPolicy) -> None:
        """Tailor the member's presentation policy (live)."""
        if member not in self._views:
            raise SessionError("{} has not joined".format(member))
        self._views[member] = view

    def update(self, member: str, key: str, value: Any) -> None:
        """Any member may operate; all members see it through their view."""
        if member not in self._views:
            raise SessionError("{} has not joined".format(member))
        self.state[key] = value
        self.counters.incr("updates")
        for viewer, view in self._views.items():
            self.presented[viewer].append(
                (self.env.now, key, view(viewer, key, value)))

    def view_of(self, member: str, key: str) -> Any:
        """The member's current presentation of ``key``."""
        if member not in self._views:
            raise SessionError("{} has not joined".format(member))
        return self._views[member](member, key, self.state.get(key))
