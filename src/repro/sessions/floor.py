"""Floor control policies for conferencing (§3.2.2, experiment E12).

Collaboration-transparent conferencing requires *"an appropriate floor
control policy"* so a single-user application sees one input stream.  Five
policies with one interface:

* :class:`FreeFloor` — no control; simultaneous speakers collide (the
  collision count shows why some control is needed).
* :class:`FcfsFloor` — first-come-first-served queue.
* :class:`RoundRobinFloor` — the floor rotates on a fixed quantum among
  requesters.
* :class:`ChairedFloor` — an explicit chair approves each request.
* :class:`NegotiatedFloor` — the requester asks the current holder
  directly (Colab's informal negotiation); the holder yields or refuses.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.hb import get_sanitizer
from repro.errors import FloorControlError
from repro.sim import Counter, Environment, Event, Tally


class FloorPolicy:
    """Common state and metrics for all floor policies."""

    name = "abstract"

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.holder: Optional[str] = None
        self.counters = Counter()
        self.wait_time = Tally("floor-wait")
        self.hold_time = Tally("floor-hold")
        self.turns: List[Tuple[str, float]] = []
        self._held_since = 0.0

    def request(self, member: str) -> Event:
        """Ask for the floor; the event fires (with the member) on grant."""
        raise NotImplementedError

    def release(self, member: str) -> None:
        """Give up the floor."""
        raise NotImplementedError

    def holds(self, member: str) -> bool:
        return self.holder == member

    def _grant(self, member: str, event: Event,
               requested_at: float) -> None:
        self.holder = member
        self._held_since = self.env.now
        # Floor possession orders turns: the new holder is causally
        # after everything previous holders did with the floor.
        get_sanitizer().acquire("floor:" + self.name, member)
        self.counters.incr("grants")
        self.wait_time.record(self.env.now - requested_at)
        self.turns.append((member, self.env.now))
        event.succeed(member)

    def _end_hold(self, member: str) -> None:
        if self.holder != member:
            raise FloorControlError(
                "{} does not hold the floor".format(member))
        self.hold_time.record(self.env.now - self._held_since)
        get_sanitizer().release("floor:" + self.name, member)
        self.holder = None

    def turn_counts(self) -> Dict[str, int]:
        """How many turns each member got (the fairness metric)."""
        counts: Dict[str, int] = {}
        for member, _ in self.turns:
            counts[member] = counts.get(member, 0) + 1
        return counts


class FreeFloor(FloorPolicy):
    """No floor control: every request is granted instantly.

    Simultaneous "holders" are recorded as collisions — the garbled-input
    problem floor control exists to prevent.
    """

    name = "free"

    def __init__(self, env: Environment) -> None:
        super().__init__(env)
        self._active: List[str] = []

    def request(self, member: str) -> Event:
        event = self.env.event()
        self.counters.incr("requests")
        if self._active:
            self.counters.incr("collisions")
        self._active.append(member)
        self.holder = member  # last speaker "has" the floor
        self.counters.incr("grants")
        self.wait_time.record(0.0)
        self.turns.append((member, self.env.now))
        event.succeed(member)
        return event

    def release(self, member: str) -> None:
        if member not in self._active:
            raise FloorControlError(
                "{} is not speaking".format(member))
        self._active.remove(member)
        if self.holder == member:
            self.holder = self._active[-1] if self._active else None


class FcfsFloor(FloorPolicy):
    """A FIFO queue: the longest-waiting requester speaks next."""

    name = "fcfs"

    def __init__(self, env: Environment) -> None:
        super().__init__(env)
        self._queue: List[Tuple[str, Event, float]] = []

    def request(self, member: str) -> Event:
        event = self.env.event()
        self.counters.incr("requests")
        if self.holder is None:
            self._grant(member, event, self.env.now)
        else:
            self._queue.append((member, event, self.env.now))
        return event

    def release(self, member: str) -> None:
        self._end_hold(member)
        if self._queue:
            next_member, event, requested_at = self._queue.pop(0)
            self._grant(next_member, event, requested_at)

    @property
    def queue_length(self) -> int:
        return len(self._queue)


class RoundRobinFloor(FloorPolicy):
    """The floor rotates among waiting requesters every ``quantum``.

    A holder that does not release within the quantum is preempted in
    favour of the next requester (fair, bounded wait).
    """

    name = "round-robin"

    def __init__(self, env: Environment, quantum: float = 5.0) -> None:
        if quantum <= 0:
            raise FloorControlError("quantum must be positive")
        super().__init__(env)
        self.quantum = quantum
        self._queue: List[Tuple[str, Event, float]] = []
        self._epoch = 0
        #: Called with the preempted member when the quantum expires.
        self.on_preempt: Optional[Callable[[str], None]] = None

    def request(self, member: str) -> Event:
        event = self.env.event()
        self.counters.incr("requests")
        if self.holder is None:
            self._grant_with_timer(member, event, self.env.now)
        else:
            self._queue.append((member, event, self.env.now))
        return event

    def release(self, member: str) -> None:
        self._end_hold(member)
        self._epoch += 1  # invalidate the running quantum timer
        self._next()

    def _grant_with_timer(self, member: str, event: Event,
                          requested_at: float) -> None:
        self._grant(member, event, requested_at)
        self._epoch += 1
        self.env.process(self._timer(member, self._epoch))

    def _timer(self, member: str, epoch: int):
        yield self.env.timeout(self.quantum)
        if self._epoch != epoch or self.holder != member:
            return  # released in time, or a newer turn is running
        if not self._queue:
            return  # nobody waiting: let the holder continue
        self.counters.incr("preemptions")
        self.hold_time.record(self.env.now - self._held_since)
        get_sanitizer().release("floor:" + self.name, member)
        self.holder = None
        if self.on_preempt is not None:
            self.on_preempt(member)
        self._next()

    def _next(self) -> None:
        if self._queue:
            member, event, requested_at = self._queue.pop(0)
            self._grant_with_timer(member, event, requested_at)


class ChairedFloor(FloorPolicy):
    """An explicit chair decides each request.

    The chair's decision procedure is supplied as a callback returning
    True (grant when free / queue) or False (reject outright).  Decision
    latency models the human in the loop.
    """

    name = "chaired"

    def __init__(self, env: Environment, chair: str,
                 decide: Optional[Callable[[str], bool]] = None,
                 decision_latency: float = 0.5) -> None:
        if decision_latency < 0:
            raise FloorControlError(
                "decision_latency must be non-negative")
        super().__init__(env)
        self.chair = chair
        self.decide = decide or (lambda member: True)
        self.decision_latency = decision_latency
        self._queue: List[Tuple[str, Event, float]] = []

    def request(self, member: str) -> Event:
        event = self.env.event()
        self.counters.incr("requests")
        self.env.process(self._consider(member, event, self.env.now))
        return event

    def _consider(self, member: str, event: Event, requested_at: float):
        yield self.env.timeout(self.decision_latency)
        if not self.decide(member):
            self.counters.incr("rejections")
            event.fail(FloorControlError(
                "the chair refused {}".format(member)))
            return
        if self.holder is None:
            self._grant(member, event, requested_at)
        else:
            self._queue.append((member, event, requested_at))

    def release(self, member: str) -> None:
        self._end_hold(member)
        if self._queue:
            next_member, event, requested_at = self._queue.pop(0)
            self._grant(next_member, event, requested_at)


class NegotiatedFloor(FloorPolicy):
    """Colab-style informal negotiation with the current holder.

    The holder's willingness to yield is a callback; negotiation takes
    ``negotiation_latency``.  A refused requester waits for the natural
    release (FIFO among the refused).
    """

    name = "negotiated"

    def __init__(self, env: Environment,
                 yields: Optional[Callable[[str, str], bool]] = None,
                 negotiation_latency: float = 1.0) -> None:
        if negotiation_latency < 0:
            raise FloorControlError(
                "negotiation_latency must be non-negative")
        super().__init__(env)
        self.yields = yields or (lambda holder, requester: True)
        self.negotiation_latency = negotiation_latency
        self._queue: List[Tuple[str, Event, float]] = []

    def request(self, member: str) -> Event:
        event = self.env.event()
        self.counters.incr("requests")
        if self.holder is None:
            self._grant(member, event, self.env.now)
        else:
            self.env.process(self._negotiate(member, event, self.env.now))
        return event

    def _negotiate(self, member: str, event: Event, requested_at: float):
        holder = self.holder
        yield self.env.timeout(self.negotiation_latency)
        if self.holder is None:
            self._grant(member, event, requested_at)
            return
        if self.holder == holder and self.yields(holder, member):
            self.counters.incr("yields")
            self.hold_time.record(self.env.now - self._held_since)
            get_sanitizer().release("floor:" + self.name, holder)
            self.holder = None
            self._grant(member, event, requested_at)
        else:
            self.counters.incr("refusals")
            self._queue.append((member, event, requested_at))

    def release(self, member: str) -> None:
        self._end_hold(member)
        if self._queue:
            next_member, event, requested_at = self._queue.pop(0)
            self._grant(next_member, event, requested_at)


FLOOR_POLICIES = {
    "free": FreeFloor,
    "fcfs": FcfsFloor,
    "round-robin": RoundRobinFloor,
    "chaired": ChairedFloor,
    "negotiated": NegotiatedFloor,
}
