"""Telepointers: shared cursors for synchronous sessions (§3.2.2).

Desktop-conferencing systems (MMConf, SharedX) showed every participant
where their colleagues were pointing — the cheapest and most effective
awareness widget in synchronous work.  A :class:`TelepointerService`
tracks each member's pointer on a shared surface and fans movements out
to the other members with a configurable update rate (real systems
throttle pointer traffic hard).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import SessionError
from repro.sim import Counter, Environment


class TelepointerService:
    """Per-member pointers on one shared surface."""

    def __init__(self, env: Environment, update_interval: float = 0.1,
                 latency: float = 0.02) -> None:
        if update_interval < 0 or latency < 0:
            raise SessionError(
                "update_interval and latency must be non-negative")
        self.env = env
        self.update_interval = update_interval
        self.latency = latency
        #: member -> (x, y) as last *published* to colleagues.
        self.published: Dict[str, Tuple[float, float]] = {}
        self._current: Dict[str, Tuple[float, float]] = {}
        self._dirty: Dict[str, bool] = {}
        self._watchers: Dict[str, List[Callable[[str, float, float],
                                                None]]] = {}
        self.counters = Counter()
        self._members: List[str] = []

    def join(self, member: str,
             on_move: Optional[Callable[[str, float, float],
                                        None]] = None) -> None:
        """Add a member's pointer (optionally with a move callback)."""
        if member in self._members:
            raise SessionError("{} already joined".format(member))
        self._members.append(member)
        self._current[member] = (0.0, 0.0)
        self._dirty[member] = False
        if on_move is not None:
            self.watch(member, on_move)
        self.env.process(self._publisher(member))

    def watch(self, member: str,
              callback: Callable[[str, float, float], None]) -> None:
        """``member`` receives colleagues' pointer movements."""
        self._watchers.setdefault(member, []).append(callback)

    def move(self, member: str, x: float, y: float) -> None:
        """A member moves their pointer (throttled before publishing)."""
        if member not in self._members:
            raise SessionError("{} has not joined".format(member))
        self._current[member] = (x, y)
        self._dirty[member] = True
        self.counters.incr("moves")

    def position_of(self, member: str) -> Tuple[float, float]:
        """The member's last published position."""
        if member not in self._members:
            raise SessionError("{} has not joined".format(member))
        return self.published.get(member, (0.0, 0.0))

    # -- internals -------------------------------------------------------------

    def _publisher(self, member: str):
        """Throttle: publish at most one update per interval."""
        while member in self._members:
            if self._dirty.get(member):
                self._dirty[member] = False
                position = self._current[member]
                self.counters.incr("updates_published")
                self.env.process(self._deliver(member, position))
            if self.update_interval > 0:
                yield self.env.timeout(self.update_interval)
            else:
                # Unthrottled mode publishes on a minimal tick.
                yield self.env.timeout(1e-6)

    def _deliver(self, member: str, position: Tuple[float, float]):
        if self.latency > 0:
            yield self.env.timeout(self.latency)
        self.published[member] = position
        x, y = position
        for viewer, callbacks in self._watchers.items():
            if viewer == member:
                continue
            for callback in callbacks:
                self.counters.incr("deliveries")
                callback(member, x, y)
