"""repro: CSCW-aware open distributed processing middleware.

A full reproduction of Blair & Rodden, *The Challenges of CSCW for Open
Distributed Processing* (MIDDLEWARE 1993): the cooperation-aware
middleware the paper calls for, the classical baselines it criticises,
and an experiment suite that operationalises every claim.

Quick start::

    from repro import CooperativePlatform

    platform = CooperativePlatform(sites=3, hosts_per_site=2)
    members = platform.host_names()[:3]
    session = platform.create_session("design-review", members)
    doc = session.shared_document("minutes", initial="Agenda:\\n")
    doc.client(members[0]).insert(7, "\\n- QoS")
    platform.run()
    assert doc.converged

Subpackages (bottom-up):

* :mod:`repro.sim` — discrete-event simulation kernel.
* :mod:`repro.obs` — observability: causal tracing, metrics, exporters.
* :mod:`repro.net` — packet network (links, routing, multicast, radio).
* :mod:`repro.node` — ODP engineering objects, invocation, migration.
* :mod:`repro.groups` — ordered group communication, membership, group RPC.
* :mod:`repro.workload` — deterministic synthetic users.
* :mod:`repro.sessions` — sessions, invitations, floor control, sharing.
* :mod:`repro.concurrency` — transactions, CSCW lock styles, transaction
  groups, operation transformation, reservation, granularity.
* :mod:`repro.awareness` — events, the spatial model, weightings, digests.
* :mod:`repro.access` — access matrix baseline, dynamic roles,
  Shen & Dewan, negotiation.
* :mod:`repro.management` — usage monitoring, placement, migration.
* :mod:`repro.qos` — QoS expression, negotiation, monitoring.
* :mod:`repro.streams` — continuous media, bindings, synchronisation.
* :mod:`repro.mobility` — connectivity levels, disconnected caching,
  home-agent addressing.
* :mod:`repro.workflow` — speech acts, office procedures, informal routing.
* :mod:`repro.hypertext` — multi-user hypertext, Quilt co-authoring.
* :mod:`repro.core` — the space-time matrix, ODP viewpoints and the
  :class:`~repro.core.platform.CooperativePlatform` facade.
"""

from repro.core.platform import (
    CooperativePlatform,
    CooperativeSession,
    MediaFlow,
    SharedDocument,
)
from repro.sim import Environment

__version__ = "1.0.0"

__all__ = [
    "CooperativePlatform",
    "CooperativeSession",
    "Environment",
    "MediaFlow",
    "SharedDocument",
    "__version__",
]
