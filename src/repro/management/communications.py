"""Communications management: congestion-aware routing (§4.2.1).

The paper lists *communications management* among the ODP management
functions that must serve cooperative applications.  The mechanism here
watches per-link traffic, converts it to a utilisation estimate each
period, and raises congested links' routing weights so subsequent routes
steer around hot spots — the management loop (monitor → policy → act)
applied to the network itself.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.net.link import Link
from repro.net.network import Network
from repro.sim import Counter


class CommunicationsManager:
    """Periodic link monitoring driving routing-weight updates."""

    def __init__(self, network: Network, period: float = 5.0,
                 sensitivity: float = 4.0,
                 smoothing: float = 0.5) -> None:
        if period <= 0:
            raise ReproError("period must be positive")
        if sensitivity < 0 or not 0 < smoothing <= 1:
            raise ReproError(
                "sensitivity must be >= 0 and smoothing in (0, 1]")
        self.network = network
        self.env = network.env
        self.period = period
        self.sensitivity = sensitivity
        self.smoothing = smoothing
        self._last_bytes: Dict[Link, int] = {}
        self.utilisation: Dict[Link, float] = {}
        self.counters = Counter()
        self.running = True
        self.process = self.env.process(self._run())

    def stop(self) -> None:
        self.running = False

    def utilisation_of(self, a: str, b: str) -> float:
        """The smoothed utilisation estimate for a link (0..1+)."""
        link = self.network.topology.link_between(a, b)
        return self.utilisation.get(link, 0.0)

    def hottest_links(self, limit: int = 3) -> List[Tuple[Link, float]]:
        """The most utilised links, for operator display."""
        ranked = sorted(self.utilisation.items(),
                        key=lambda pair: -pair[1])
        return ranked[:limit]

    def _run(self):
        while self.running:
            yield self.env.timeout(self.period)
            self._sample()

    def _sample(self) -> None:
        changed = False
        for link in self.network.topology.links():
            carried = link.stats.bytes - self._last_bytes.get(link, 0)
            self._last_bytes[link] = link.stats.bytes
            instantaneous = (carried * 8.0 / self.period) / link.bandwidth
            previous = self.utilisation.get(link, 0.0)
            smoothed = (previous * (1 - self.smoothing)
                        + instantaneous * self.smoothing)
            self.utilisation[link] = smoothed
            new_multiplier = 1.0 + self.sensitivity * smoothed
            if abs(new_multiplier - link.weight_multiplier) > 0.05:
                link.weight_multiplier = new_multiplier
                changed = True
        self.counters.incr("samples")
        if changed:
            self.counters.incr("reroutes")
            self.network.topology.invalidate_routes()
