"""Placement policies: where to put shared objects (§4.2.1 "Management").

*"The most important issues identified to date are that of the initial
placement of objects (node management) and their subsequent re-location
(cluster management).  ...objects are likely to be shared by a group of
users at geographically dispersed sites with each site requiring similar
real-time response."*

Policies (one interface, experiment E6 sweeps them):

* :class:`FirstNodePlacement` — the naive baseline: wherever the creator
  happens to be (first candidate).
* :class:`RandomPlacement` — uniform choice.
* :class:`LoadBalancedPlacement` — fewest objects first, ignoring the
  group's geography.
* :class:`GroupAwarePlacement` — minimise the *worst* member's latency
  (minimax), optionally weighted by observed access counts: the
  group-aware policy the paper calls for.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.errors import PlacementError
from repro.net.topology import Topology


class PlacementPolicy:
    """Chooses a hosting node for an object used by a group of nodes."""

    name = "abstract"

    def place(self, candidates: List[str], user_nodes: List[str],
              topology: Topology,
              weights: Optional[Dict[str, int]] = None) -> str:
        raise NotImplementedError

    @staticmethod
    def _check(candidates: List[str]) -> None:
        if not candidates:
            raise PlacementError("no candidate nodes")


class FirstNodePlacement(PlacementPolicy):
    """The creator's node (what happens with no policy at all)."""

    name = "first-node"

    def place(self, candidates, user_nodes, topology, weights=None):
        self._check(candidates)
        return candidates[0]


class RandomPlacement(PlacementPolicy):
    """Uniformly random choice among candidates."""

    name = "random"

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self._rng = rng or random.Random(0)  # repro: allow-RPR002 (constant-seeded fallback)

    def place(self, candidates, user_nodes, topology, weights=None):
        self._check(candidates)
        return self._rng.choice(candidates)


class LoadBalancedPlacement(PlacementPolicy):
    """Fewest hosted objects wins; geography is ignored."""

    name = "load-balanced"

    def __init__(self) -> None:
        self.load: Dict[str, int] = {}

    def place(self, candidates, user_nodes, topology, weights=None):
        self._check(candidates)
        chosen = min(candidates, key=lambda node:
                     (self.load.get(node, 0), node))
        self.load[chosen] = self.load.get(chosen, 0) + 1
        return chosen


class GroupAwarePlacement(PlacementPolicy):
    """Minimise the worst (weighted) member latency — fair real-time
    response for a geographically dispersed group."""

    name = "group-aware"

    def place(self, candidates, user_nodes, topology, weights=None):
        self._check(candidates)
        if not user_nodes:
            return candidates[0]
        best_node = None
        best_cost = float("inf")
        for candidate in candidates:
            cost = self._worst_latency(candidate, user_nodes, topology,
                                       weights)
            if cost < best_cost:
                best_cost = cost
                best_node = candidate
        if best_node is None:
            raise PlacementError(
                "no candidate can reach the whole group")
        return best_node

    @staticmethod
    def _worst_latency(candidate: str, user_nodes: List[str],
                       topology: Topology,
                       weights: Optional[Dict[str, int]]) -> float:
        worst = 0.0
        for node in user_nodes:
            try:
                latency = topology.path_latency(candidate, node)
            except Exception:
                return float("inf")
            if weights:
                # Weighted: a heavy user's latency matters more.
                latency *= 1.0 + weights.get(node, 0) / 10.0
            worst = max(worst, latency)
        return worst


PLACEMENT_POLICIES = {
    "first-node": FirstNodePlacement,
    "random": RandomPlacement,
    "load-balanced": LoadBalancedPlacement,
    "group-aware": GroupAwarePlacement,
}


def response_latencies(host_node: str, user_nodes: List[str],
                       topology: Topology) -> Dict[str, float]:
    """Round-trip invocation latency each member sees for a placement."""
    return {node: 2.0 * topology.path_latency(host_node, node)
            for node in user_nodes}
