"""Group-aware management: monitoring, placement and migration (§4.2.1)."""

from repro.management.communications import CommunicationsManager
from repro.management.migration import MigrationManager
from repro.management.monitoring import UsageMonitor
from repro.management.placement import (
    FirstNodePlacement,
    GroupAwarePlacement,
    LoadBalancedPlacement,
    PLACEMENT_POLICIES,
    PlacementPolicy,
    RandomPlacement,
    response_latencies,
)

__all__ = [
    "CommunicationsManager",
    "FirstNodePlacement",
    "GroupAwarePlacement",
    "LoadBalancedPlacement",
    "MigrationManager",
    "PLACEMENT_POLICIES",
    "PlacementPolicy",
    "RandomPlacement",
    "UsageMonitor",
    "response_latencies",
]
