"""Usage monitoring: the mechanisms that inform placement policies.

The paper (§4.2.1 "Management"): *"management functions must be aware of
the pattern of use of objects emanating from groups.  In more general
terms, group aware policies are required.  This also assumes that
appropriate mechanisms are in place to support and inform such policies."*

:class:`UsageMonitor` is that mechanism: it records which node invoked
which object when, and summarises access patterns over a sliding window.
Samples are also routed through the observability
:class:`~repro.obs.metrics.MetricsRegistry`, so placement policies, the
benchmarks and ``python -m repro.obs.report`` all read one data source.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.sim import Environment


class UsageMonitor:
    """Records (object, caller node, time) access samples."""

    def __init__(self, env: Environment, window: float = 60.0,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if window <= 0:
            raise ReproError("window must be positive")
        self.env = env
        self.window = window
        # Samples arrive in non-decreasing sim time, so expiry is a
        # popleft loop instead of an O(n) list rebuild per query.
        self._samples: Deque[Tuple[float, str, str]] = deque()
        self._metrics = metrics

    def record(self, oid: str, caller_node: str) -> None:
        """Note one invocation of ``oid`` from ``caller_node``."""
        self._samples.append((self.env.now, oid, caller_node))
        metrics = self._metrics if self._metrics is not None \
            else get_metrics()
        metrics.counter("usage.access", oid=oid, node=caller_node).add()

    def _recent(self) -> Deque[Tuple[float, str, str]]:
        horizon = self.env.now - self.window
        samples = self._samples
        while samples and samples[0][0] < horizon:
            samples.popleft()
        return samples

    def access_pattern(self, oid: str) -> Dict[str, int]:
        """Recent access counts for ``oid``, keyed by caller node."""
        pattern: Dict[str, int] = {}
        for _, sample_oid, node in self._recent():
            if sample_oid == oid:
                pattern[node] = pattern.get(node, 0) + 1
        return pattern

    def active_objects(self) -> List[str]:
        """Objects with any access in the window."""
        return sorted({oid for _, oid, _ in self._recent()})

    def total_accesses(self, oid: str) -> int:
        return sum(self.access_pattern(oid).values())

    def user_nodes(self, oid: str) -> List[str]:
        """The group of nodes currently using ``oid``."""
        return sorted(self.access_pattern(oid))
