"""Usage monitoring: the mechanisms that inform placement policies.

The paper (§4.2.1 "Management"): *"management functions must be aware of
the pattern of use of objects emanating from groups.  In more general
terms, group aware policies are required.  This also assumes that
appropriate mechanisms are in place to support and inform such policies."*

:class:`UsageMonitor` is that mechanism: it records which node invoked
which object when, and summarises access patterns over a sliding window.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.sim import Environment


class UsageMonitor:
    """Records (object, caller node, time) access samples."""

    def __init__(self, env: Environment, window: float = 60.0) -> None:
        if window <= 0:
            raise ReproError("window must be positive")
        self.env = env
        self.window = window
        self._samples: List[Tuple[float, str, str]] = []

    def record(self, oid: str, caller_node: str) -> None:
        """Note one invocation of ``oid`` from ``caller_node``."""
        self._samples.append((self.env.now, oid, caller_node))

    def _recent(self) -> List[Tuple[float, str, str]]:
        horizon = self.env.now - self.window
        # Drop expired samples on the way through (amortised cleanup).
        self._samples = [s for s in self._samples if s[0] >= horizon]
        return self._samples

    def access_pattern(self, oid: str) -> Dict[str, int]:
        """Recent access counts for ``oid``, keyed by caller node."""
        pattern: Dict[str, int] = {}
        for _, sample_oid, node in self._recent():
            if sample_oid == oid:
                pattern[node] = pattern.get(node, 0) + 1
        return pattern

    def active_objects(self) -> List[str]:
        """Objects with any access in the window."""
        return sorted({oid for _, oid, _ in self._recent()})

    def total_accesses(self, oid: str) -> int:
        return sum(self.access_pattern(oid).values())

    def user_nodes(self, oid: str) -> List[str]:
        """The group of nodes currently using ``oid``."""
        return sorted(self.access_pattern(oid))
