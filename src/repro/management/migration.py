"""Usage-driven cluster migration (§4.2.1 "Management").

Couples the :class:`~repro.management.monitoring.UsageMonitor` to the
placement policy: periodically, each active object's observed user group
is fed to the policy; when the recommended node beats the current node's
worst-member latency by more than ``improvement_threshold``, the object's
cluster is migrated there through the ODP runtime.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import PlacementError
from repro.management.monitoring import UsageMonitor
from repro.management.placement import (
    GroupAwarePlacement,
    PlacementPolicy,
    response_latencies,
)
from repro.node.runtime import ODPRuntime
from repro.sim import Counter


class MigrationManager:
    """Re-evaluates object placement on a fixed period."""

    def __init__(self, runtime: ODPRuntime, monitor: UsageMonitor,
                 policy: Optional[PlacementPolicy] = None,
                 candidates: Optional[List[str]] = None,
                 period: float = 30.0,
                 improvement_threshold: float = 0.25) -> None:
        if period <= 0:
            raise PlacementError("period must be positive")
        if not 0 <= improvement_threshold < 1:
            raise PlacementError(
                "improvement_threshold must be in [0, 1)")
        self.runtime = runtime
        self.env = runtime.env
        self.monitor = monitor
        self.policy = policy or GroupAwarePlacement()
        self.candidates = candidates
        self.period = period
        self.improvement_threshold = improvement_threshold
        self.counters = Counter()
        self.migrations: List[Tuple[float, str, str, str]] = []
        self.running = True
        self.process = self.env.process(self._run())

    def stop(self) -> None:
        self.running = False

    def _candidate_nodes(self) -> List[str]:
        if self.candidates is not None:
            return list(self.candidates)
        return sorted(self.runtime.nuclei)

    def _run(self):
        while self.running:
            yield self.env.timeout(self.period)
            for oid in self.monitor.active_objects():
                yield from self._consider(oid)

    def _consider(self, oid: str):
        current = self.runtime.locate(oid)
        if current is None:
            return
        users = self.monitor.user_nodes(oid)
        if not users:
            return
        topology = self.runtime.network.topology
        weights = self.monitor.access_pattern(oid)
        recommended = self.policy.place(
            self._candidate_nodes(), users, topology, weights)
        self.counters.incr("evaluations")
        if recommended == current:
            return
        current_worst = max(response_latencies(
            current, users, topology).values())
        new_worst = max(response_latencies(
            recommended, users, topology).values())
        if current_worst <= 0:
            return
        improvement = (current_worst - new_worst) / current_worst
        if improvement < self.improvement_threshold:
            return
        nucleus = self.runtime.nuclei.get(current)
        if nucleus is None:
            return
        obj = nucleus.find_object(oid)
        if obj is None or obj.cluster is None:
            return
        try:
            yield nucleus.migrate_cluster(obj.cluster, recommended)
        except PlacementError:
            self.counters.incr("failed_migrations")
            return
        self.counters.incr("migrations")
        self.migrations.append((self.env.now, oid, current, recommended))
