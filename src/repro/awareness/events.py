"""Awareness events and their distribution (Figure 2b).

The paper's alternative to transactional walls: *"information flow between
users enables a social protocol to be established to regulate access to
shared information"*.  An :class:`AwarenessEvent` describes one user action
on a shared artefact; an :class:`AwarenessBus` distributes events to
subscribers through pluggable filters; :class:`WorkspaceAwareness` adapts a
shared store so every write becomes an event — giving the *continuous*
notification channel that experiment F2 contrasts with commit-time
visibility.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.concurrency.store import SharedStore
from repro.sim import Counter, Environment

_event_ids = itertools.count(1)  # repro: allow-RPR005 (ids are labels, not behaviour)

#: Standard action vocabulary (free-form strings are also accepted).
ACTION_EDIT = "edit"
ACTION_VIEW = "view"
ACTION_JOIN = "join"
ACTION_LEAVE = "leave"
ACTION_MOVE = "move"
ACTION_SUSPECTED = "suspected"


class AwarenessEvent:
    """One user action made visible to colleagues."""

    __slots__ = ("event_id", "actor", "artefact", "action", "at", "detail")

    def __init__(self, actor: str, artefact: str, action: str,
                 at: float, detail: Any = None) -> None:
        self.event_id = next(_event_ids)
        self.actor = actor
        self.artefact = artefact
        self.action = action
        self.at = at
        self.detail = detail

    def __repr__(self) -> str:
        return "<AwarenessEvent #{} {} {} {}>".format(
            self.event_id, self.actor, self.action, self.artefact)


Subscriber = Callable[[AwarenessEvent], None]
EventFilter = Callable[[str, AwarenessEvent], bool]


def accept_all(subscriber: str, event: AwarenessEvent) -> bool:
    """The broadcast-everything filter (the A1 baseline)."""
    return True


def ignore_own_actions(subscriber: str, event: AwarenessEvent) -> bool:
    """Suppress a user's own events (standard groupware hygiene)."""
    return event.actor != subscriber


class AwarenessBus:
    """Publishes awareness events to named subscribers through filters.

    Delivery is optionally delayed (``latency``) to model the network hop;
    benches use the delivered timestamps to measure *notification time*.
    """

    def __init__(self, env: Environment, latency: float = 0.0) -> None:
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.env = env
        self.latency = latency
        self._subscribers: Dict[str, List[Tuple[EventFilter,
                                                Subscriber]]] = {}
        self.counters = Counter()
        self.delivered_log: List[Tuple[float, str, AwarenessEvent]] = []

    def subscribe(self, name: str, callback: Subscriber,
                  event_filter: Optional[EventFilter] = None) -> None:
        """Register ``name`` to receive events passing ``event_filter``."""
        self._subscribers.setdefault(name, []).append(
            (event_filter or ignore_own_actions, callback))

    def unsubscribe(self, name: str) -> None:
        """Drop all of ``name``'s subscriptions."""
        self._subscribers.pop(name, None)

    def publish(self, actor: str, artefact: str, action: str,
                detail: Any = None) -> AwarenessEvent:
        """Emit an event; matching subscribers receive it after latency."""
        event = AwarenessEvent(actor, artefact, action, self.env.now,
                               detail)
        self.counters.incr("published")
        for name, entries in self._subscribers.items():
            for event_filter, callback in entries:
                if event_filter(name, event):
                    self._deliver(name, callback, event)
        return event

    def _deliver(self, name: str, callback: Subscriber,
                 event: AwarenessEvent) -> None:
        if self.latency <= 0:
            self._finish(name, callback, event)
        else:
            self.env.process(self._delayed(name, callback, event))

    def _delayed(self, name: str, callback: Subscriber,
                 event: AwarenessEvent):
        yield self.env.timeout(self.latency)
        self._finish(name, callback, event)

    def _finish(self, name: str, callback: Subscriber,
                event: AwarenessEvent) -> None:
        self.counters.incr("delivered")
        self.delivered_log.append((self.env.now, name, event))
        callback(event)


class WorkspaceAwareness:
    """Adapts a shared store so every write publishes an awareness event.

    This is the mechanism of Figure 2b: user actions on the shared space
    flow continuously to colleagues instead of being masked until commit.
    """

    def __init__(self, env: Environment, store: SharedStore,
                 bus: Optional[AwarenessBus] = None,
                 latency: float = 0.0) -> None:
        self.env = env
        self.store = store
        self.bus = bus or AwarenessBus(env, latency=latency)
        store.subscribe(self._on_write)

    def _on_write(self, key: str, value: Any, version: int,
                  writer: str) -> None:
        self.bus.publish(writer or "unknown", key, ACTION_EDIT,
                         detail={"version": version})

    def watch(self, user: str, callback: Subscriber,
              artefact: Optional[str] = None) -> None:
        """Subscribe ``user`` to workspace changes (optionally one key)."""
        if artefact is None:
            self.bus.subscribe(user, callback)
        else:
            self.bus.subscribe(
                user, callback,
                event_filter=lambda name, event:
                event.artefact == artefact and event.actor != name)
