"""The spatial model of interaction (Benford & Fahlén; paper §3.3.2).

DIVE's model for *"cooperation in large unbounded space"*: every entity
projects an **aura** (the region in which interaction is possible at all),
a **focus** (the region it attends to) and a **nimbus** (the region in
which it is observable).  A's awareness of B is a function of A's focus
and B's nimbus:

* **full** — B is inside A's focus *and* A is inside B's nimbus;
* **peripheral** — exactly one of the two holds;
* **none** — neither holds (or their auras do not collide).

The model turns awareness from broadcast-everything into a scalable,
spatially scoped computation — ablation A1 measures exactly that effect.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ReproError

FULL = "full"
PERIPHERAL = "peripheral"
NONE = "none"

#: Default numeric weights per awareness level (Mariani-style weighting).
LEVEL_WEIGHTS = {FULL: 1.0, PERIPHERAL: 0.4, NONE: 0.0}


class Entity:
    """A user (or artefact) embedded in a shared space."""

    __slots__ = ("name", "x", "y", "aura", "focus", "nimbus")

    def __init__(self, name: str, x: float = 0.0, y: float = 0.0,
                 aura: float = 10.0, focus: float = 5.0,
                 nimbus: float = 5.0) -> None:
        for radius, label in ((aura, "aura"), (focus, "focus"),
                              (nimbus, "nimbus")):
            if radius < 0:
                raise ReproError(label + " radius must be non-negative")
        self.name = name
        self.x = x
        self.y = y
        self.aura = aura
        self.focus = focus
        self.nimbus = nimbus

    @property
    def position(self) -> Tuple[float, float]:
        return (self.x, self.y)

    def move_to(self, x: float, y: float) -> None:
        """Teleport to absolute coordinates."""
        self.x = x
        self.y = y

    def move_by(self, dx: float, dy: float) -> None:
        """Move relative to the current position."""
        self.x += dx
        self.y += dy

    def distance_to(self, other: "Entity") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def __repr__(self) -> str:
        return "<Entity {} at ({:.1f}, {:.1f})>".format(
            self.name, self.x, self.y)


class SharedSpace:
    """A population of entities with spatial awareness computation."""

    def __init__(self, name: str = "space") -> None:
        self.name = name
        self._entities: Dict[str, Entity] = {}

    def add(self, entity: Entity) -> Entity:
        """Place an entity in the space."""
        if entity.name in self._entities:
            raise ReproError(
                "entity {} already in space".format(entity.name))
        self._entities[entity.name] = entity
        return entity

    def remove(self, name: str) -> None:
        """Remove an entity."""
        if name not in self._entities:
            raise ReproError("no entity named {}".format(name))
        del self._entities[name]

    def entity(self, name: str) -> Entity:
        try:
            return self._entities[name]
        except KeyError:
            raise ReproError("no entity named {}".format(name))

    def entities(self) -> List[Entity]:
        return list(self._entities.values())

    def __len__(self) -> int:
        return len(self._entities)

    def __contains__(self, name: str) -> bool:
        return name in self._entities

    # -- the spatial model -----------------------------------------------------

    def auras_collide(self, a: Entity, b: Entity) -> bool:
        """Interaction is possible only when auras overlap."""
        return a.distance_to(b) <= a.aura + b.aura

    def awareness_level(self, observer: Entity,
                        observed: Entity) -> str:
        """Observer's awareness of observed: full/peripheral/none."""
        if observer is observed:
            return NONE
        if not self.auras_collide(observer, observed):
            return NONE
        distance = observer.distance_to(observed)
        in_focus = distance <= observer.focus
        in_nimbus = distance <= observed.nimbus
        if in_focus and in_nimbus:
            return FULL
        if in_focus or in_nimbus:
            return PERIPHERAL
        return NONE

    def awareness_weight(self, observer: Entity, observed: Entity,
                         weights: Optional[Dict[str, float]] = None
                         ) -> float:
        """Numeric awareness weighting, distance-attenuated within level."""
        table = weights or LEVEL_WEIGHTS
        level = self.awareness_level(observer, observed)
        base = table[level]
        if base <= 0:
            return 0.0
        reach = max(observer.focus, observed.nimbus)
        if reach <= 0:
            return base
        attenuation = max(0.0, 1.0 - observer.distance_to(observed) /
                          (2.0 * reach))
        return base * max(attenuation, 0.1)

    def observers_of(self, observed_name: str,
                     minimum: str = PERIPHERAL) -> List[str]:
        """Who would perceive an action by ``observed_name``.

        ``minimum`` is the weakest level included ("full" restricts to
        fully aware observers).
        """
        observed = self.entity(observed_name)
        admit = (FULL,) if minimum == FULL else (FULL, PERIPHERAL)
        return [entity.name for entity in self._entities.values()
                if entity is not observed
                and self.awareness_level(entity, observed) in admit]

    def awareness_matrix(self) -> Dict[Tuple[str, str], str]:
        """Every ordered pair's awareness level (for visualisation)."""
        matrix: Dict[Tuple[str, str], str] = {}
        for observer in self._entities.values():
            for observed in self._entities.values():
                if observer is observed:
                    continue
                matrix[(observer.name, observed.name)] = \
                    self.awareness_level(observer, observed)
        return matrix
