"""A collaborative object store with co-worker awareness (§4.2.1).

*"Mariani describes a prototype implementation of a collaborative object
store, based on an extension of an organisational knowledge base
browser"* — shared objects annotated with *who is working here*, so that
browsing the store also conveys colleagues' activity.

:class:`CollaborativeObjectStore` couples a shared store to the
spatial-temporal awareness model: every write feeds the model, and
:meth:`browse` returns each object with its co-worker activity
weightings, recency-decayed and (optionally) spatially scoped.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.awareness.events import ACTION_EDIT, ACTION_VIEW, \
    AwarenessEvent
from repro.awareness.spatial import SharedSpace
from repro.awareness.weightings import AwarenessModel
from repro.concurrency.store import SharedStore
from repro.sim import Environment


class ObjectActivity:
    """One browsed object with its co-worker awareness annotations."""

    __slots__ = ("key", "value", "version", "last_writer", "coworkers")

    def __init__(self, key: str, value: Any, version: int,
                 last_writer: Optional[str],
                 coworkers: List[Tuple[str, float]]) -> None:
        self.key = key
        self.value = value
        self.version = version
        self.last_writer = last_writer
        #: (co-worker, weight) sorted by decreasing weight.
        self.coworkers = coworkers

    @property
    def activity_weight(self) -> float:
        """Total co-worker activity on this object (the 'heat')."""
        return sum(weight for _, weight in self.coworkers)

    def __repr__(self) -> str:
        return "<ObjectActivity {} v{} heat={:.2f}>".format(
            self.key, self.version, self.activity_weight)


class CollaborativeObjectStore:
    """A shared store whose browser shows co-worker activity."""

    def __init__(self, env: Environment,
                 store: Optional[SharedStore] = None,
                 space: Optional[SharedSpace] = None,
                 half_life: float = 120.0) -> None:
        self.env = env
        self.store = store or SharedStore("collaborative")
        self.model = AwarenessModel(space=space, half_life=half_life)
        self.store.subscribe(self._on_write)

    def _on_write(self, key: str, value: Any, version: int,
                  writer: str) -> None:
        self.model.record(AwarenessEvent(writer or "unknown", key,
                                         ACTION_EDIT, self.env.now))

    # -- user operations ------------------------------------------------------

    def write(self, user: str, key: str, value: Any) -> int:
        """Write through to the shared store (feeds awareness)."""
        return self.store.write(key, value, writer=user, at=self.env.now)

    def read(self, user: str, key: str) -> Any:
        """Read an object; reading is itself visible activity."""
        value = self.store.read(key, reader=user)
        self.model.record(AwarenessEvent(user, key, ACTION_VIEW,
                                         self.env.now))
        return value

    def browse(self, user: str,
               keys: Optional[List[str]] = None,
               minimum_weight: float = 0.01) -> List[ObjectActivity]:
        """The browser view: objects annotated with co-worker activity.

        Results are sorted by activity heat (most active first) — the
        organisational knowledge base browser's at-a-glance cue for
        where colleagues are working.
        """
        targets = keys if keys is not None else self.store.keys()
        now = self.env.now
        results = []
        for key in targets:
            if key not in self.store:
                continue
            item = self.store.item(key)
            weights: Dict[str, float] = {}
            for event in self.model._events:
                if event.artefact != key or event.actor == user:
                    continue
                impact = self.model.impact(user, event, now)
                if impact > weights.get(event.actor, 0.0):
                    weights[event.actor] = impact
            coworkers = sorted(
                ((actor, weight) for actor, weight in weights.items()
                 if weight >= minimum_weight),
                key=lambda pair: (-pair[1], pair[0]))
            results.append(ObjectActivity(key, item.value, item.version,
                                          item.last_writer, coworkers))
        results.sort(key=lambda oa: (-oa.activity_weight, oa.key))
        return results

    def hot_objects(self, user: str, limit: int = 5
                    ) -> List[ObjectActivity]:
        """Where are colleagues working right now?"""
        return [oa for oa in self.browse(user)
                if oa.activity_weight > 0][:limit]
