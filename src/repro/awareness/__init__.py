"""Awareness mechanisms: the paper's counterpart to transparency (§4.2.1).

*"in CSCW, awareness is often as important as transparency"* — this package
provides the machinery: an event bus fed by shared-workspace activity
(Figure 2b), the Benford & Fahlén spatial model (aura/focus/nimbus),
spatial-temporal awareness weightings, and Portholes-style asynchronous
digests.
"""

from repro.awareness.digests import Digest, DigestService
from repro.awareness.objectstore import (
    CollaborativeObjectStore,
    ObjectActivity,
)
from repro.awareness.events import (
    ACTION_EDIT,
    ACTION_JOIN,
    ACTION_LEAVE,
    ACTION_MOVE,
    ACTION_SUSPECTED,
    ACTION_VIEW,
    AwarenessBus,
    AwarenessEvent,
    WorkspaceAwareness,
    accept_all,
    ignore_own_actions,
)
from repro.awareness.spatial import (
    Entity,
    FULL,
    LEVEL_WEIGHTS,
    NONE,
    PERIPHERAL,
    SharedSpace,
)
from repro.awareness.weightings import AwarenessModel

__all__ = [
    "ACTION_EDIT",
    "ACTION_JOIN",
    "ACTION_LEAVE",
    "ACTION_MOVE",
    "ACTION_SUSPECTED",
    "ACTION_VIEW",
    "AwarenessBus",
    "AwarenessEvent",
    "AwarenessModel",
    "CollaborativeObjectStore",
    "ObjectActivity",
    "Digest",
    "DigestService",
    "Entity",
    "FULL",
    "LEVEL_WEIGHTS",
    "NONE",
    "PERIPHERAL",
    "SharedSpace",
    "WorkspaceAwareness",
    "accept_all",
    "ignore_own_actions",
]
