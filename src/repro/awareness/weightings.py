"""Awareness weightings from spatial and temporal metrics (§4.2.1).

The paper: *"This work often uses spatial and temporal metrics to generate
awareness weightings defining the impact of actions on other users."*

:class:`AwarenessModel` combines a spatial weight (from the shared-space
model) with temporal decay (recent actions matter more) to rank what each
user should currently be aware of — the input a visualisation layer
(e.g. Mariani's collaborative object-store browser) would render.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.awareness.events import AwarenessEvent
from repro.awareness.spatial import SharedSpace
from repro.errors import ReproError


class AwarenessModel:
    """Ranks events per observer by combined spatial-temporal weight."""

    def __init__(self, space: Optional[SharedSpace] = None,
                 half_life: float = 30.0) -> None:
        if half_life <= 0:
            raise ReproError("half_life must be positive")
        self.space = space
        self.half_life = half_life
        self._events: List[AwarenessEvent] = []

    def record(self, event: AwarenessEvent) -> None:
        """Add an event to the awareness history."""
        self._events.append(event)

    def temporal_weight(self, event: AwarenessEvent, now: float) -> float:
        """Exponential decay with the configured half-life."""
        age = max(0.0, now - event.at)
        return 0.5 ** (age / self.half_life)

    def spatial_weight(self, observer: str,
                       event: AwarenessEvent) -> float:
        """The spatial model's weighting of actor relative to observer.

        Falls back to 1.0 (no attenuation) when no space is configured or
        either party is not embedded in it.
        """
        if self.space is None:
            return 1.0
        if observer not in self.space or event.actor not in self.space:
            return 1.0
        return self.space.awareness_weight(
            self.space.entity(observer), self.space.entity(event.actor))

    def impact(self, observer: str, event: AwarenessEvent,
               now: float) -> float:
        """Combined impact of ``event`` on ``observer`` at time ``now``."""
        if event.actor == observer:
            return 0.0
        return self.spatial_weight(observer, event) \
            * self.temporal_weight(event, now)

    def ranked(self, observer: str, now: float,
               limit: Optional[int] = None,
               threshold: float = 0.0) -> List[Tuple[float,
                                                     AwarenessEvent]]:
        """Events ranked by impact for ``observer`` (highest first)."""
        scored = [(self.impact(observer, event, now), event)
                  for event in self._events]
        scored = [(weight, event) for weight, event in scored
                  if weight > threshold]
        scored.sort(key=lambda pair: (-pair[0], pair[1].event_id))
        if limit is not None:
            scored = scored[:limit]
        return scored

    def prune(self, now: float, minimum_weight: float = 0.01) -> int:
        """Discard events decayed below ``minimum_weight``; returns count."""
        before = len(self._events)
        self._events = [
            event for event in self._events
            if self.temporal_weight(event, now) >= minimum_weight]
        return before - len(self._events)

    @property
    def event_count(self) -> int:
        return len(self._events)
