"""Portholes-style asynchronous awareness digests (paper §3.3.2).

Portholes (Dourish & Bly) supported *asynchronous* awareness across a
distributed work group: periodic low-fidelity summaries of colleagues'
activity rather than a continuous event stream.  :class:`DigestService`
batches awareness events per interval and delivers one digest per
subscriber per period — trading freshness for load, the asynchronous point
in the space-time matrix.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.awareness.events import AwarenessBus, AwarenessEvent
from repro.errors import ReproError
from repro.sim import Counter, Environment


class Digest:
    """One period's summary of activity."""

    __slots__ = ("period_start", "period_end", "events", "actors",
                 "artefacts")

    def __init__(self, period_start: float, period_end: float,
                 events: List[AwarenessEvent]) -> None:
        self.period_start = period_start
        self.period_end = period_end
        self.events = list(events)
        self.actors = sorted({event.actor for event in events})
        self.artefacts = sorted({event.artefact for event in events})

    @property
    def activity_count(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return "<Digest [{:.1f}, {:.1f}) events={}>".format(
            self.period_start, self.period_end, self.activity_count)


class DigestService:
    """Periodically condenses bus traffic into per-subscriber digests."""

    def __init__(self, env: Environment, bus: AwarenessBus,
                 interval: float = 60.0) -> None:
        if interval <= 0:
            raise ReproError("digest interval must be positive")
        self.env = env
        self.bus = bus
        self.interval = interval
        self._pending: List[AwarenessEvent] = []
        self._subscribers: Dict[str, Callable[[Digest], None]] = {}
        self.counters = Counter()
        bus.subscribe("__digest__", self._collect,
                      event_filter=lambda name, event: True)
        self.process = env.process(self._run())

    def subscribe(self, name: str,
                  callback: Callable[[Digest], None]) -> None:
        """Receive one digest per interval (empty periods are skipped)."""
        self._subscribers[name] = callback

    def unsubscribe(self, name: str) -> None:
        self._subscribers.pop(name, None)

    def _collect(self, event: AwarenessEvent) -> None:
        self._pending.append(event)

    def _run(self):
        while True:
            period_start = self.env.now
            yield self.env.timeout(self.interval)
            if not self._pending:
                continue
            digest = Digest(period_start, self.env.now, self._pending)
            self._pending = []
            for name, callback in self._subscribers.items():
                filtered = [event for event in digest.events
                            if event.actor != name]
                if not filtered:
                    continue
                self.counters.incr("digests")
                callback(Digest(digest.period_start, digest.period_end,
                                filtered))
