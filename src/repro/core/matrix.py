"""Johansen's groupware space-time matrix (Figure 1, §3.1).

The four quadrants, classification of applications into them, and the
transition support the paper says matters more than the matrix itself:
*"In practice, work often switches rapidly between asynchronous and
synchronous interactions.  CSCW researchers now highlight the need to
support these transitions in as seamless a manner as possible."*
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ReproError
from repro.sessions.session import (
    ASYNCHRONOUS,
    CO_LOCATED,
    REMOTE,
    SYNCHRONOUS,
    Session,
)

#: Figure 1's cells, keyed by (time, place).
QUADRANTS: Dict[Tuple[str, str], str] = {
    (SYNCHRONOUS, CO_LOCATED): "face-to-face interaction",
    (ASYNCHRONOUS, CO_LOCATED): "asynchronous interaction",
    (SYNCHRONOUS, REMOTE): "synchronous distributed interaction",
    (ASYNCHRONOUS, REMOTE): "asynchronous distributed interaction",
}

#: Representative application classes per quadrant (§3.2).
EXAMPLE_APPLICATIONS: Dict[Tuple[str, str], List[str]] = {
    (SYNCHRONOUS, CO_LOCATED): ["meeting-room tools", "Colab"],
    (ASYNCHRONOUS, CO_LOCATED): ["shared filing", "office procedures"],
    (SYNCHRONOUS, REMOTE): ["desktop conferencing", "GROVE", "media spaces"],
    (ASYNCHRONOUS, REMOTE): ["co-authoring", "Quilt", "workflow",
                             "Portholes"],
}


def quadrant_name(time_mode: str, place_mode: str) -> str:
    """The Figure-1 label for a (time, place) combination."""
    try:
        return QUADRANTS[(time_mode, place_mode)]
    except KeyError:
        raise ReproError("not a space-time quadrant: {}/{}".format(
            time_mode, place_mode))


def classify(session: Session) -> str:
    """Which Figure-1 cell a session currently occupies."""
    return quadrant_name(*session.quadrant)


def render_matrix() -> str:
    """Figure 1 as a plain-text table (used by the F1 bench output)."""
    col = max(len(QUADRANTS[(t, REMOTE)]) for t in
              (SYNCHRONOUS, ASYNCHRONOUS))
    header = "{:<18} | {:<{w}} | {}".format(
        "", "Same Time", "Different Time", w=col)
    rows = [header, "-" * len(header)]
    for place, label in ((CO_LOCATED, "Same Place"),
                         (REMOTE, "Different Places")):
        rows.append("{:<18} | {:<{w}} | {}".format(
            label, QUADRANTS[(SYNCHRONOUS, place)],
            QUADRANTS[(ASYNCHRONOUS, place)], w=col))
    return "\n".join(rows)


def transition_path(session: Session, target_time: str,
                    target_place: str) -> Tuple[str, str]:
    """Move a session to a target quadrant, returning (from, to) labels.

    The session's artefacts, members and history survive — the
    seamlessness requirement F1 verifies.
    """
    before = classify(session)
    session.switch_mode(time_mode=target_time, place_mode=target_place)
    return (before, classify(session))
