"""The five ODP viewpoints, with the paper's §4.1 additions.

ODP prescribes five viewpoints on one system: enterprise, information,
computational, engineering and technology.  The paper's §4.1 argues the
Enterprise and Information viewpoints are underpopulated and that CSCW's
understanding of the *sociality of work* should inform them — so the
enterprise model here carries communities, dynamic roles, informal
(working) task allocations and ethnographic observations as first-class
content, and the consistency checker verifies the viewpoints against each
other without forcing one prescriptive model on the work.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import ViewpointError

ENTERPRISE = "enterprise"
INFORMATION = "information"
COMPUTATIONAL = "computational"
ENGINEERING = "engineering"
TECHNOLOGY = "technology"

VIEWPOINTS = (ENTERPRISE, INFORMATION, COMPUTATIONAL, ENGINEERING,
              TECHNOLOGY)


class EnterpriseModel:
    """Communities, roles, policies — and the sociality of work."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.communities: Dict[str, List[str]] = {}
        self.roles: Set[str] = set()
        #: role -> role: who *formally* hands work to whom.
        self.formal_flows: List[Tuple[str, str]] = []
        #: Observed, informal reallocations (the working division of
        #: labour, §2.2) — kept distinct from the formal flows rather
        #: than normalised away.
        self.working_flows: List[Tuple[str, str]] = []
        #: Free-text ethnographic observations attached to roles.
        self.observations: Dict[str, List[str]] = {}

    def add_community(self, name: str, roles: List[str]) -> None:
        """A community of roles pursuing a shared objective."""
        if not roles:
            raise ViewpointError("a community needs at least one role")
        self.communities[name] = list(roles)
        self.roles.update(roles)

    def add_formal_flow(self, src_role: str, dst_role: str) -> None:
        self._check_roles(src_role, dst_role)
        self.formal_flows.append((src_role, dst_role))

    def add_working_flow(self, src_role: str, dst_role: str) -> None:
        """Record an observed informal handover (not prescribed)."""
        self._check_roles(src_role, dst_role)
        self.working_flows.append((src_role, dst_role))

    def observe(self, role: str, note: str) -> None:
        """Attach an ethnographic observation to a role."""
        if role not in self.roles:
            raise ViewpointError("unknown role " + role)
        self.observations.setdefault(role, []).append(note)

    def informality_ratio(self) -> float:
        """Working flows as a fraction of all flows — how much of the
        real coordination the formal model alone would miss."""
        total = len(self.formal_flows) + len(self.working_flows)
        if total == 0:
            return 0.0
        return len(self.working_flows) / total

    def _check_roles(self, *roles: str) -> None:
        for role in roles:
            if role not in self.roles:
                raise ViewpointError("unknown role " + role)


class InformationModel:
    """Shared information schemas and invariants."""

    def __init__(self) -> None:
        self.schemas: Dict[str, Dict[str, str]] = {}
        self.invariants: Dict[str, str] = {}

    def add_schema(self, name: str, fields: Dict[str, str]) -> None:
        if not fields:
            raise ViewpointError("a schema needs at least one field")
        self.schemas[name] = dict(fields)

    def add_invariant(self, name: str, statement: str) -> None:
        self.invariants[name] = statement


class ComputationalModel:
    """Objects and their interfaces, including stream interfaces."""

    OPERATIONAL = "operational"
    STREAM = "stream"

    def __init__(self) -> None:
        #: object -> list of (interface name, kind).
        self.objects: Dict[str, List[Tuple[str, str]]] = {}
        self.bindings: List[Tuple[str, str]] = []

    def add_object(self, name: str) -> None:
        self.objects.setdefault(name, [])

    def add_interface(self, obj: str, interface: str,
                      kind: str = OPERATIONAL) -> None:
        if kind not in (self.OPERATIONAL, self.STREAM):
            raise ViewpointError("unknown interface kind " + kind)
        if obj not in self.objects:
            raise ViewpointError("unknown object " + obj)
        self.objects[obj].append((interface, kind))

    def bind(self, interface_a: str, interface_b: str) -> None:
        known = {name for interfaces in self.objects.values()
                 for name, _ in interfaces}
        for interface in (interface_a, interface_b):
            if interface not in known:
                raise ViewpointError("unknown interface " + interface)
        self.bindings.append((interface_a, interface_b))

    def stream_interfaces(self) -> List[str]:
        return [name for interfaces in self.objects.values()
                for name, kind in interfaces if kind == self.STREAM]


class EngineeringModel:
    """Nodes, capsules and the support each computational object needs."""

    def __init__(self) -> None:
        self.nodes: Set[str] = set()
        #: computational object -> node hosting it.
        self.placements: Dict[str, str] = {}
        #: stream interface -> transport ("multicast", "unicast", ...).
        self.stream_support: Dict[str, str] = {}

    def add_node(self, name: str) -> None:
        self.nodes.add(name)

    def place(self, obj: str, node: str) -> None:
        if node not in self.nodes:
            raise ViewpointError("unknown node " + node)
        self.placements[obj] = node

    def support_stream(self, interface: str, transport: str) -> None:
        self.stream_support[interface] = transport


class TechnologyModel:
    """Concrete technology selections."""

    def __init__(self) -> None:
        self.choices: Dict[str, str] = {}

    def choose(self, requirement: str, technology: str) -> None:
        self.choices[requirement] = technology


class ODPSpecification:
    """One system described from all five viewpoints, with checks."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.enterprise = EnterpriseModel(name)
        self.information = InformationModel()
        self.computational = ComputationalModel()
        self.engineering = EngineeringModel()
        self.technology = TechnologyModel()

    def check_consistency(self) -> List[str]:
        """Cross-viewpoint conformance: returns a list of problems.

        Checks (one per inter-viewpoint dependency):
        * every computational object is placed on an engineering node;
        * every stream interface has engineering stream support;
        * every binding connects interfaces of placed objects;
        * communities that share information have a schema for it
          (approximated: any formal flow requires at least one schema).
        """
        problems: List[str] = []
        for obj in self.computational.objects:
            if obj not in self.engineering.placements:
                problems.append(
                    "computational object '{}' has no engineering "
                    "placement".format(obj))
        for interface in self.computational.stream_interfaces():
            if interface not in self.engineering.stream_support:
                problems.append(
                    "stream interface '{}' has no engineering transport"
                    .format(interface))
        placed = set(self.engineering.placements)
        interface_owner = {
            name: obj for obj, interfaces in
            self.computational.objects.items()
            for name, _ in interfaces}
        for a, b in self.computational.bindings:
            for interface in (a, b):
                owner = interface_owner.get(interface)
                if owner is not None and owner not in placed:
                    problems.append(
                        "binding {}<->{} touches unplaced object '{}'"
                        .format(a, b, owner))
        if self.enterprise.formal_flows and not self.information.schemas:
            problems.append(
                "enterprise flows exist but no information schema is "
                "defined")
        return problems

    def is_consistent(self) -> bool:
        return not self.check_consistency()
