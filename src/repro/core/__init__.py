"""The paper's contribution, operationalised: matrix, viewpoints, platform."""

from repro.core.matrix import (
    EXAMPLE_APPLICATIONS,
    QUADRANTS,
    classify,
    quadrant_name,
    render_matrix,
    transition_path,
)
from repro.core.platform import (
    CooperativePlatform,
    CooperativeSession,
    MediaFlow,
    SharedDocument,
)
from repro.core.viewpoints import (
    COMPUTATIONAL,
    ComputationalModel,
    ENGINEERING,
    ENTERPRISE,
    EngineeringModel,
    EnterpriseModel,
    INFORMATION,
    InformationModel,
    ODPSpecification,
    TECHNOLOGY,
    TechnologyModel,
    VIEWPOINTS,
)

__all__ = [
    "COMPUTATIONAL",
    "ComputationalModel",
    "CooperativePlatform",
    "CooperativeSession",
    "ENGINEERING",
    "ENTERPRISE",
    "EXAMPLE_APPLICATIONS",
    "EngineeringModel",
    "EnterpriseModel",
    "INFORMATION",
    "InformationModel",
    "MediaFlow",
    "ODPSpecification",
    "QUADRANTS",
    "SharedDocument",
    "TECHNOLOGY",
    "TechnologyModel",
    "VIEWPOINTS",
    "classify",
    "quadrant_name",
    "render_matrix",
    "transition_path",
]
