"""The cooperative platform facade: the paper's pieces, assembled.

:class:`CooperativePlatform` stands up a complete simulated deployment —
WAN of sites, ODP runtime, multicast, QoS broker — and exposes the
cooperation services the paper argues ODP must provide: sessions with
floor control and awareness, ordered group channels, OT shared documents
and QoS-managed media streams.  The examples and several benches drive
everything through this one entry point.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.awareness.events import AwarenessBus, WorkspaceAwareness
from repro.concurrency.ot import OTClientSite, OTServerSite
from repro.errors import ReproError, SessionError
from repro.groups.group import ProcessGroup
from repro.net.multicast import MulticastService
from repro.net.network import Network
from repro.net.topology import lan, wan
from repro.node.runtime import ODPRuntime
from repro.qos.broker import QoSBroker
from repro.qos.monitor import QoSMonitor
from repro.qos.params import QoSParameters
from repro.sessions.floor import (
    ChairedFloor,
    FcfsFloor,
    FloorPolicy,
    FreeFloor,
    NegotiatedFloor,
    RoundRobinFloor,
)
from repro.sessions.session import Session
from repro.sim import Environment
from repro.streams.binding import StreamBinding
from repro.streams.media import MediaSink, MediaSource


class SharedDocument:
    """An OT-replicated document: one sequencer, one client per member."""

    def __init__(self, platform: "CooperativePlatform", name: str,
                 server_node: str, members: List[str],
                 initial: str = "", port: Optional[int] = None) -> None:
        self.name = name
        if port is None:
            port = platform.allocate_port(span=2)
        self.server = OTServerSite(
            platform.network.host(server_node), initial=initial,
            port=port)
        self.clients: Dict[str, OTClientSite] = {}
        for member in members:
            client = OTClientSite(platform.network.host(member),
                                  server_node, initial=initial,
                                  port=port)
            self.server.register(member)
            self.clients[member] = client

    def client(self, member: str) -> OTClientSite:
        try:
            return self.clients[member]
        except KeyError:
            raise SessionError(
                "{} has no replica of {}".format(member, self.name))

    def add_member(self, platform: "CooperativePlatform",
                   member: str) -> OTClientSite:
        """Late join: initialise a replica from the current snapshot."""
        if member in self.clients:
            raise SessionError(
                "{} already has a replica of {}".format(member,
                                                        self.name))
        text, revision = self.server.snapshot()
        client = OTClientSite(platform.network.host(member),
                              self.server.host.name, initial=text,
                              port=self.server.port, revision=revision)
        self.server.register(member)
        self.clients[member] = client
        return client

    @property
    def converged(self) -> bool:
        """True when every replica equals the sequencer's text."""
        canonical = self.server.core.text
        return all(client.text == canonical
                   for client in self.clients.values()) and not any(
                       client.core.has_unacked
                       for client in self.clients.values())

    def texts(self) -> Dict[str, str]:
        return {member: client.text
                for member, client in self.clients.items()}


class MediaFlow:
    """A QoS-managed media stream: source, binding, monitor, sink."""

    def __init__(self, source: MediaSource, binding: StreamBinding,
                 sink: MediaSink,
                 monitor: Optional[QoSMonitor]) -> None:
        self.source = source
        self.binding = binding
        self.sink = sink
        self.monitor = monitor

    def start(self, duration: Optional[float] = None) -> None:
        self.source.start(duration)


class CooperativeSession:
    """A session wired to a group channel and workspace awareness."""

    def __init__(self, platform: "CooperativePlatform", session: Session,
                 group: ProcessGroup,
                 workspace: WorkspaceAwareness) -> None:
        self.platform = platform
        self.session = session
        self.group = group
        self.workspace = workspace

    @property
    def members(self) -> List[str]:
        return list(self.session.members)

    def broadcast(self, member: str, payload, size: int = 0):
        """Ordered group broadcast from a member."""
        return self.group.endpoint(member).broadcast(payload, size=size)

    def shared_document(self, name: str, initial: str = "",
                        server_node: Optional[str] = None
                        ) -> SharedDocument:
        """Create an OT document replicated at every member."""
        server = server_node or self.members[0]
        return SharedDocument(self.platform, name, server, self.members,
                              initial=initial)


class CooperativePlatform:
    """One simulated deployment of the whole middleware."""

    def __init__(self, sites: int = 3, hosts_per_site: int = 2,
                 site_latency: float = 0.02, seed: int = 0,
                 topology: str = "wan") -> None:
        self.env = Environment()
        self.seed = seed
        if topology == "wan":
            self.topology = wan(self.env, sites=sites,
                                hosts_per_site=hosts_per_site,
                                site_latency=site_latency, seed=seed)
            self._hosts = ["site{}.host{}".format(i, j)
                           for i in range(sites)
                           for j in range(hosts_per_site)]
        elif topology == "lan":
            self.topology = lan(self.env, hosts=sites * hosts_per_site,
                                seed=seed)
            self._hosts = ["host{}".format(i)
                           for i in range(sites * hosts_per_site)]
        else:
            raise ReproError("unknown topology kind: " + topology)
        self.network = Network(self.env, self.topology)
        self.runtime = ODPRuntime(self.network,
                                  registry_node=self._hosts[0])
        self.multicast = MulticastService(self.network)
        self.qos = QoSBroker(self.network)
        self.sessions: Dict[str, CooperativeSession] = {}
        self._ports = iter(range(100, 10000))

    def host_names(self) -> List[str]:
        """All host node names, site-major order."""
        return list(self._hosts)

    def allocate_port(self, span: int = 1) -> int:
        """Reserve ``span`` consecutive port numbers; returns the first."""
        first = next(self._ports)
        for _ in range(span - 1):
            next(self._ports)
        return first

    def run(self, until=None):
        """Advance the simulation."""
        return self.env.run(until)

    # -- sessions -----------------------------------------------------------------

    def create_session(self, name: str, members: List[str],
                       floor: Optional[str] = "fcfs",
                       ordering: str = "causal",
                       awareness_latency: float = 0.01,
                       **session_kwargs) -> CooperativeSession:
        """A session whose members are joined to an ordered group."""
        if name in self.sessions:
            raise SessionError("session {} already exists".format(name))
        for member in members:
            if member not in self._hosts:
                raise SessionError("unknown host " + member)
        floor_policy = self._make_floor(floor, members)
        session = Session(self.env, name, floor=floor_policy,
                          awareness_latency=awareness_latency,
                          **session_kwargs)
        group = ProcessGroup(self.network, name, ordering=ordering,
                             port=next(self._ports))
        for member in members:
            session.join(member)
            group.join(member)
        workspace = WorkspaceAwareness(self.env, session.store,
                                       bus=session.awareness)
        cooperative = CooperativeSession(self, session, group, workspace)
        self.sessions[name] = cooperative
        return cooperative

    # -- media ---------------------------------------------------------------------

    def open_media_flow(self, src: str, dst: str, rate: float = 25.0,
                        frame_size: int = 4000,
                        desired: Optional[QoSParameters] = None,
                        minimum: Optional[QoSParameters] = None,
                        reserve: bool = True,
                        monitor_window: float = 1.0) -> MediaFlow:
        """A stream binding with optional QoS reservation + monitoring."""
        contract = None
        monitor = None
        if reserve:
            desired = desired or QoSParameters(
                throughput=rate * frame_size * 8 * 1.1,
                latency=0.2, jitter=0.1, loss=0.05)
            contract = self.qos.negotiate(src, dst, desired,
                                          minimum=minimum)
            monitor = QoSMonitor(self.env, contract,
                                 window=monitor_window,
                                 expected_frames_per_window=rate
                                 * monitor_window)
        binding = StreamBinding(self.network, src, dst,
                                port=self.allocate_port(),
                                contract=contract, monitor=monitor)
        sink = MediaSink(self.env, dst + "-sink")
        binding.attach_sink(sink)
        source = MediaSource(self.env, src + "-source",
                             binding.send_frame, rate=rate,
                             frame_size=frame_size)
        return MediaFlow(source, binding, sink, monitor)

    # -- internals ----------------------------------------------------------------

    def _make_floor(self, floor: Optional[str],
                    members: List[str]) -> Optional[FloorPolicy]:
        if floor is None:
            return None
        if floor == "free":
            return FreeFloor(self.env)
        if floor == "fcfs":
            return FcfsFloor(self.env)
        if floor == "round-robin":
            return RoundRobinFloor(self.env)
        if floor == "chaired":
            if not members:
                raise SessionError("a chaired floor needs a chair")
            return ChairedFloor(self.env, chair=members[0])
        if floor == "negotiated":
            return NegotiatedFloor(self.env)
        raise SessionError("unknown floor policy: " + floor)
