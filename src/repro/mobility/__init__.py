"""Mobile computing support (§3.3.3, §4.2.2 "The impact of mobility").

Connectivity levels and outage accounting (:mod:`~repro.mobility.host`),
Coda-style caching with optimistic replay and bulk reintegration
(:mod:`~repro.mobility.cache`) and home-agent addressing with handoff
(:mod:`~repro.mobility.addressing`).
"""

from repro.mobility.addressing import (
    HOME_AGENT_PORT,
    HomeAgent,
    RoamingMobile,
)
from repro.mobility.cache import (
    CLIENT_WINS,
    MobileCache,
    SERVER_WINS,
)
from repro.mobility.host import (
    DisconnectionTolerantContract,
    MobileHost,
)

__all__ = [
    "CLIENT_WINS",
    "DisconnectionTolerantContract",
    "HOME_AGENT_PORT",
    "HomeAgent",
    "MobileCache",
    "MobileHost",
    "RoamingMobile",
    "SERVER_WINS",
]
