"""Mobile hosts: a network host behind a radio link (§3.3.3, §4.2.2).

A :class:`MobileHost` couples a network host to its radio attachment and
tracks connectivity history — total disconnected time, outage counts and
the longest outage, the raw material for disconnection-aware QoS
(*"quality of service requests can specify accepted levels of
disconnection"*).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.errors import MobilityError
from repro.net.network import Host, Network
from repro.net.radio import ConnectivityLevel, RadioLink, attach_mobile
from repro.sim import Counter, Environment


class MobileHost:
    """A host whose attachment to the network varies over time."""

    def __init__(self, network: Network, name: str, base: str,
                 level: ConnectivityLevel = ConnectivityLevel.FULL
                 ) -> None:
        self.network = network
        self.env = network.env
        self.name = name
        self.link: RadioLink = attach_mobile(
            network.topology, name, base, level=level)
        self.host: Host = network.host(name)
        self.counters = Counter()
        self._outage_started: Optional[float] = None
        self.total_disconnected = 0.0
        self.longest_outage = 0.0
        self._level_listeners: List[Callable[[ConnectivityLevel],
                                             None]] = []
        self.link.on_level_change(self._on_level)
        if level is ConnectivityLevel.DISCONNECTED:
            self._outage_started = self.env.now

    @property
    def level(self) -> ConnectivityLevel:
        return self.link.level

    @property
    def connected(self) -> bool:
        return self.level is not ConnectivityLevel.DISCONNECTED

    @property
    def fully_connected(self) -> bool:
        return self.level is ConnectivityLevel.FULL

    def set_level(self, level: ConnectivityLevel) -> None:
        """Change connectivity (handoff, docking, losing signal)."""
        self.link.set_level(level)

    def on_level_change(
            self, listener: Callable[[ConnectivityLevel], None]) -> None:
        """Subscribe to connectivity changes."""
        self._level_listeners.append(listener)

    def current_outage(self) -> float:
        """Seconds disconnected so far in the ongoing outage (0 if up)."""
        if self._outage_started is None:
            return 0.0
        return self.env.now - self._outage_started

    def _on_level(self, level: ConnectivityLevel) -> None:
        if level is ConnectivityLevel.DISCONNECTED:
            if self._outage_started is None:
                self._outage_started = self.env.now
                self.counters.incr("outages")
        else:
            if self._outage_started is not None:
                outage = self.env.now - self._outage_started
                self.total_disconnected += outage
                self.longest_outage = max(self.longest_outage, outage)
                self._outage_started = None
                self.counters.incr("reconnections")
        for listener in list(self._level_listeners):
            listener(level)

    def __repr__(self) -> str:
        return "<MobileHost {} [{}]>".format(self.name, self.level.value)


class DisconnectionTolerantContract:
    """A QoS contract extended with an accepted level of disconnection.

    The paper: *"quality of service requests can specify accepted levels
    of disconnection and ... quality of service management can monitor
    and react to such circumstances."*
    """

    def __init__(self, env: Environment, mobile: MobileHost,
                 max_outage: float,
                 on_violation: Optional[Callable[[float], None]] = None,
                 check_interval: float = 1.0) -> None:
        if max_outage < 0 or check_interval <= 0:
            raise MobilityError(
                "max_outage must be >= 0 and check_interval > 0")
        self.env = env
        self.mobile = mobile
        self.max_outage = max_outage
        self.on_violation = on_violation
        self.check_interval = check_interval
        self.violations = 0
        self._violated_this_outage = False
        self.process = env.process(self._run())

    def _run(self):
        while True:
            yield self.env.timeout(self.check_interval)
            outage = self.mobile.current_outage()
            if outage > self.max_outage:
                if not self._violated_this_outage:
                    self.violations += 1
                    self._violated_this_outage = True
                    if self.on_violation is not None:
                        self.on_violation(outage)
            elif outage == 0.0:
                self._violated_this_outage = False
