"""Disconnected operation through caching and replay (Coda-style).

The paper (§4.2.2 "The impact of mobility"): *"new techniques will be
required, for example, to cache significant portions of the data on the
mobile computer"* and *"services will take advantage of higher levels of
connection to perform bulk updates, e.g. of cached data."*

:class:`MobileCache` hoards items from a server-side shared store.  While
connected, reads validate against the server and writes write through.
While disconnected, reads are served from the hoard and writes append to a
replay log (optimistic, as in Kistler & Satyanarayanan's Coda).  On
reconnection :meth:`reintegrate` replays the log as one bulk update,
detecting write/write conflicts by version and resolving them by policy.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.concurrency.store import SharedStore
from repro.errors import DisconnectedError, MobilityError
from repro.mobility.host import MobileHost
from repro.sim import Counter, Environment

SERVER_WINS = "server-wins"
CLIENT_WINS = "client-wins"

#: A replay-log entry: (key, value, cached_version_at_write, written_at).
LogEntry = Tuple[str, Any, int, float]


class MobileCache:
    """A mobile host's hoard of server data, with optimistic replay."""

    def __init__(self, env: Environment, mobile: MobileHost,
                 server_store: SharedStore,
                 conflict_policy: str = SERVER_WINS,
                 transfer_rate: float = 1e6, item_size: int = 4096
                 ) -> None:
        if conflict_policy not in (SERVER_WINS, CLIENT_WINS):
            raise MobilityError(
                "unknown conflict policy: " + conflict_policy)
        if transfer_rate <= 0 or item_size <= 0:
            raise MobilityError(
                "transfer_rate and item_size must be positive")
        self.env = env
        self.mobile = mobile
        self.server = server_store
        self.conflict_policy = conflict_policy
        self.transfer_rate = transfer_rate
        self.item_size = item_size
        #: key -> (value, server version when cached).
        self._cache: Dict[str, Tuple[Any, int]] = {}
        self._replay_log: List[LogEntry] = []
        self.conflicts: List[Tuple[str, Any, Any]] = []
        self.counters = Counter()
        #: Called with (key, server_value, client_value) on each conflict.
        self.on_conflict: Optional[Callable[[str, Any, Any], None]] = None

    # -- hoarding ----------------------------------------------------------------

    def hoard(self, keys: List[str]):
        """Prefetch ``keys`` while connected (generator: takes link time)."""
        if not self.mobile.connected:
            raise DisconnectedError("cannot hoard while disconnected")
        for key in keys:
            yield self.env.timeout(self._transfer_time(1))
            if key in self.server:
                item = self.server.item(key)
                self._cache[key] = (item.value, item.version)
                self.counters.incr("hoarded")

    def cached_keys(self) -> List[str]:
        return sorted(self._cache)

    # -- reads / writes ------------------------------------------------------------

    def read(self, key: str):
        """Read, from the server when connected, the hoard otherwise.

        Generator: connected reads pay one link round trip.
        """
        if self.mobile.connected:
            yield self.env.timeout(self._transfer_time(1))
            if key not in self.server:
                raise MobilityError("no item named {}".format(key))
            item = self.server.item(key)
            self._cache[key] = (item.value, item.version)
            self.counters.incr("reads:server")
            return item.value
        if key in self._cache:
            self.counters.incr("reads:cache")
            return self._cache[key][0]
        self.counters.incr("reads:miss")
        raise DisconnectedError(
            "{} is not hoarded and the host is disconnected".format(key))

    def write(self, key: str, value: Any):
        """Write through when connected; log for replay otherwise."""
        if self.mobile.connected:
            yield self.env.timeout(self._transfer_time(1))
            version = self.server.write(key, value,
                                        writer=self.mobile.name,
                                        at=self.env.now)
            self._cache[key] = (value, version)
            self.counters.incr("writes:through")
            return version
        cached_version = self._cache.get(key, (None, 0))[1]
        self._cache[key] = (value, cached_version)
        self._replay_log.append((key, value, cached_version,
                                 self.env.now))
        self.counters.incr("writes:logged")
        return None

    @property
    def pending_updates(self) -> int:
        """Replay-log length (the bulk update awaiting reconnection)."""
        return len(self._replay_log)

    # -- reintegration ---------------------------------------------------------------

    def reintegrate(self):
        """Replay logged writes as one bulk update (generator).

        Returns ``(applied, conflicted)`` counts.  A log entry conflicts
        when the server version moved past the version the mobile had
        cached when it wrote; resolution follows the conflict policy.
        """
        if not self.mobile.connected:
            raise DisconnectedError("cannot reintegrate while disconnected")
        log, self._replay_log = self._replay_log, []
        if not log:
            return (0, 0)
        # One bulk transfer for the whole log.
        yield self.env.timeout(self._transfer_time(len(log)))
        applied = 0
        conflicted = 0
        for key, value, cached_version, _written_at in log:
            current = self.server.item(key).version \
                if key in self.server else 0
            if current != cached_version:
                conflicted += 1
                self.counters.incr("conflicts")
                server_value = self.server.read(key) \
                    if key in self.server else None
                self.conflicts.append((key, server_value, value))
                if self.on_conflict is not None:
                    self.on_conflict(key, server_value, value)
                if self.conflict_policy == SERVER_WINS:
                    self._cache[key] = (server_value, current)
                    continue
            version = self.server.write(key, value,
                                        writer=self.mobile.name,
                                        at=self.env.now)
            self._cache[key] = (value, version)
            applied += 1
            self.counters.incr("reintegrated")
        return (applied, conflicted)

    # -- internals -------------------------------------------------------------------

    def _transfer_time(self, items: int) -> float:
        bandwidth = max(self.mobile.link.bandwidth, 1.0)
        rate = min(self.transfer_rate, bandwidth)
        return (items * self.item_size * 8.0) / rate
