"""Addressing for mobile computers: home-agent forwarding (§3.3.3).

The paper cites Bhagwat & Perkins' mobile-IP work: messages addressed to a
mobile host reach its *home agent*, which tunnels them to the current
point of attachment.  :class:`HomeAgent` keeps the binding; handoffs
update it; senders keep using the stable home address.  Triangle-routing
cost (sender → home → mobile) is measurable against direct delivery.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import MobilityError
from repro.net.network import Network
from repro.net.packet import Packet
from repro.net.radio import ConnectivityLevel, RadioLink, attach_mobile
from repro.sim import Counter

HOME_AGENT_PORT = 50


class HomeAgent:
    """A fixed node that forwards traffic to roaming mobiles."""

    def __init__(self, network: Network, node: str) -> None:
        self.network = network
        self.env = network.env
        self.node = node
        self.host = network.host(node)
        #: mobile name -> current base-station node.
        self._bindings: Dict[str, str] = {}
        self.counters = Counter()
        self.host.on_packet(HOME_AGENT_PORT, self._on_packet)

    def register(self, mobile: str, base: str) -> None:
        """Record (or update, on handoff) the mobile's care-of base."""
        if base not in self.network.topology._adjacency:
            raise MobilityError("unknown base station {}".format(base))
        previous = self._bindings.get(mobile)
        self._bindings[mobile] = base
        self.counters.incr("handoffs" if previous else "registrations")

    def deregister(self, mobile: str) -> None:
        self._bindings.pop(mobile, None)

    def binding_of(self, mobile: str) -> Optional[str]:
        return self._bindings.get(mobile)

    def send_to_mobile(self, sender_node: str, mobile: str,
                       payload: Any = None, size: int = 0,
                       port: int = 0) -> None:
        """Send via the home agent (sender only knows the home address)."""
        sender = self.network.host(sender_node)
        sender.send(self.node, port=HOME_AGENT_PORT, size=size,
                    payload={"mobile": mobile, "data": payload,
                             "port": port, "size": size})

    def _on_packet(self, packet: Packet) -> None:
        request = packet.payload
        mobile = request["mobile"]
        base = self._bindings.get(mobile)
        if base is None:
            self.counters.incr("undeliverable")
            return
        self.counters.incr("forwarded")
        # Tunnel to the mobile through its current attachment.
        self.host.send(mobile, port=request["port"],
                       size=request["size"], payload=request["data"])


class RoamingMobile:
    """A mobile that hands off between base stations, keeping its name."""

    def __init__(self, network: Network, name: str, home_agent: HomeAgent,
                 initial_base: str,
                 level: ConnectivityLevel = ConnectivityLevel.PARTIAL
                 ) -> None:
        self.network = network
        self.env = network.env
        self.name = name
        self.home_agent = home_agent
        self.level = level
        self.link: RadioLink = attach_mobile(
            network.topology, name, initial_base, level=level)
        self.base = initial_base
        self.host = network.host(name)
        home_agent.register(name, initial_base)
        self.handoffs: List[Tuple[float, str, str]] = []

    def handoff(self, new_base: str) -> None:
        """Detach from the current base and attach to ``new_base``."""
        if new_base == self.base:
            raise MobilityError("already attached to " + new_base)
        topology = self.network.topology
        if new_base not in topology._adjacency:
            raise MobilityError("unknown base station " + new_base)
        # Tear down the old radio link...
        old_link = self.link
        old_link.set_level(ConnectivityLevel.DISCONNECTED)
        del topology._adjacency[self.name][self.base]
        del topology._adjacency[self.base][self.name]
        # ...and raise the new one.
        self.link = attach_mobile(topology, self.name, new_base,
                                  level=self.level)
        self.handoffs.append((self.env.now, self.base, new_base))
        self.base = new_base
        topology.invalidate_routes()
        self.home_agent.register(self.name, new_base)
