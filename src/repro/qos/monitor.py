"""End-to-end QoS monitoring (§4.2.2-ii).

*"...end-to-end monitoring of QoS so that the application can be informed
if degradations occur.  Dynamic re-negotiation should also be supported."*

:class:`QoSMonitor` observes a flow's delivered frames over a sliding
window, computes achieved throughput / latency / jitter / loss, compares
them against a contract and informs the application through a callback.
An optional adaptation hook triggers renegotiation automatically.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.errors import QoSError
from repro.obs.metrics import get_metrics
from repro.qos.params import CLOSED, QoSContract, QoSParameters
from repro.sim import Counter, Environment


class QoSObservation:
    """Achieved QoS over one monitoring window."""

    __slots__ = ("window_start", "window_end", "throughput", "mean_latency",
                 "jitter", "loss", "frames")

    def __init__(self, window_start: float, window_end: float,
                 throughput: float, mean_latency: float, jitter: float,
                 loss: float, frames: int) -> None:
        self.window_start = window_start
        self.window_end = window_end
        self.throughput = throughput
        self.mean_latency = mean_latency
        self.jitter = jitter
        self.loss = loss
        self.frames = frames

    def meets(self, agreed: QoSParameters,
              throughput_slack: float = 0.9) -> bool:
        """Does the observation honour the agreed level?

        Throughput is judged against ``throughput_slack`` of the agreed
        floor to tolerate window quantisation.
        """
        return (self.throughput >= agreed.throughput * throughput_slack
                and self.mean_latency <= agreed.latency
                and self.jitter <= agreed.jitter
                and self.loss <= agreed.loss)

    def __repr__(self) -> str:
        return ("<QoSObservation tp={:.3g} lat={:.4g} jit={:.4g} "
                "loss={:.3g}>").format(self.throughput, self.mean_latency,
                                       self.jitter, self.loss)


class QoSMonitor:
    """Watches one flow and reports violations against its contract."""

    def __init__(self, env: Environment, contract: QoSContract,
                 window: float = 1.0,
                 on_violation: Optional[Callable[[QoSObservation],
                                                 None]] = None,
                 expected_frames_per_window: Optional[float] = None,
                 stop_on_violation: bool = True) -> None:
        if window <= 0:
            raise QoSError("monitoring window must be positive")
        self.env = env
        self.contract = contract
        self.window = window
        self.on_violation = on_violation
        self.expected_frames = expected_frames_per_window
        #: Historically a violated window ended monitoring (the contract
        #: leaves the active states).  Pass ``False`` to keep measuring
        #: through a violation — required when an SLO burn-rate alert
        #: consumes the per-window feed, since the alert needs to watch
        #: the flow *recover* as well as fail.
        self.stop_on_violation = stop_on_violation
        self._samples: List[Tuple[float, float, int]] = []
        self.observations: List[QoSObservation] = []
        self.counters = Counter()
        self._observers: List[Callable[[QoSObservation, bool], None]] = []
        self.process = env.process(self._run())

    def add_observer(self, observer: Callable[[QoSObservation, bool],
                                              None]) -> None:
        """Register a per-window callback ``(observation, violated)``.

        Unlike ``on_violation`` this fires for *every* window, healthy or
        not — the feed the SLO layer needs to compute good/bad ratios.
        """
        self._observers.append(observer)

    def record_frame(self, sent_at: float, received_at: float,
                     size: int) -> None:
        """Feed one delivered frame (times in seconds, size in bytes)."""
        if received_at < sent_at:
            raise QoSError("frame received before it was sent")
        self._samples.append((sent_at, received_at, size))

    # -- internals -------------------------------------------------------------

    def _monitoring(self) -> bool:
        if self.stop_on_violation:
            return self.contract.is_active
        return self.contract.state != CLOSED

    def _run(self):
        while self._monitoring():
            window_start = self.env.now
            yield self.env.timeout(self.window)
            observation = self._summarise(window_start, self.env.now)
            self.observations.append(observation)
            self._record_observation(observation)
            violated = not observation.meets(self.contract.agreed)
            for observer in self._observers:
                observer(observation, violated)
            if not observation.meets(self.contract.agreed):
                self.counters.incr("violations")
                self.contract.mark_violated()
                if self.on_violation is not None:
                    self.on_violation(observation)
            else:
                self.counters.incr("windows_ok")

    def _record_observation(self, observation: QoSObservation) -> None:
        """Publish the window into the metrics registry.

        Violations and healthy windows land as counters next to the
        lock/conflict counters, so ``repro.obs.report`` shows QoS
        degradation alongside concurrency behaviour.  Latency/jitter
        are only recorded for windows that saw frames (an empty window
        reports infinite latency, which would poison the histogram).
        """
        metrics = get_metrics()
        flow = "{}->{}".format(self.contract.src, self.contract.dst)
        violated = not observation.meets(self.contract.agreed)
        metrics.counter(
            "qos.violations" if violated else "qos.windows_ok",
            flow=flow).add()
        if observation.frames:
            metrics.histogram("qos.latency", flow=flow).record(
                observation.mean_latency)
            metrics.histogram("qos.jitter", flow=flow).record(
                observation.jitter)
            metrics.histogram("qos.throughput", flow=flow).record(
                observation.throughput)
        metrics.histogram("qos.loss", flow=flow).record(observation.loss)

    def _summarise(self, window_start: float,
                   window_end: float) -> QoSObservation:
        frames = [(s, r, size) for s, r, size in self._samples
                  if window_start <= r < window_end]
        self._samples = [sample for sample in self._samples
                         if sample[1] >= window_end]
        if not frames:
            expected = self.expected_frames or 1.0
            return QoSObservation(window_start, window_end, 0.0,
                                  float("inf"), float("inf"),
                                  1.0 if expected > 0 else 0.0, 0)
        span = window_end - window_start
        bits = sum(size * 8 for _, _, size in frames)
        latencies = [r - s for s, r, _ in frames]
        mean_latency = sum(latencies) / len(latencies)
        jitter = (max(latencies) - min(latencies)) \
            if len(latencies) > 1 else 0.0
        loss = 0.0
        if self.expected_frames:
            loss = max(0.0, 1.0 - len(frames) / self.expected_frames)
        return QoSObservation(window_start, window_end, bits / span,
                              mean_latency, jitter, loss, len(frames))
