"""Quality-of-service parameters and contracts (§4.2.2-ii).

The paper names the canonical parameters — *"throughput, end-to-end delay
(or latency) and delay variance (jitter)"* — and requires that desired
levels be expressible in the computational model.  :class:`QoSParameters`
is that expression; :class:`QoSContract` is an agreed instance with a
lifecycle (active → degraded/violated → renegotiated or torn down).
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.errors import QoSError

ACTIVE = "active"
DEGRADED = "degraded"
VIOLATED = "violated"
CLOSED = "closed"

_contract_ids = itertools.count(1)  # repro: allow-RPR005 (ids are labels, not behaviour)


class QoSParameters:
    """A QoS expression: throughput floor, latency/jitter/loss ceilings."""

    __slots__ = ("throughput", "latency", "jitter", "loss")

    def __init__(self, throughput: float = 0.0,
                 latency: float = float("inf"),
                 jitter: float = float("inf"),
                 loss: float = 1.0) -> None:
        if throughput < 0:
            raise QoSError("throughput must be non-negative")
        if latency < 0 or jitter < 0:
            raise QoSError("latency and jitter must be non-negative")
        if not 0 <= loss <= 1:
            raise QoSError("loss must be within [0, 1]")
        self.throughput = throughput
        self.latency = latency
        self.jitter = jitter
        self.loss = loss

    def satisfies(self, required: "QoSParameters") -> bool:
        """Is this level at least as good as ``required`` on every axis?"""
        return (self.throughput >= required.throughput
                and self.latency <= required.latency
                and self.jitter <= required.jitter
                and self.loss <= required.loss)

    def compatible_with(self, offered: "QoSParameters") -> bool:
        """Compatibility check between required (self) and offered levels.

        The paper calls for *"compatibility checking between these
        properties"* when binding interfaces.
        """
        return offered.satisfies(self)

    def scaled(self, factor: float) -> "QoSParameters":
        """A degraded level with throughput scaled by ``factor``."""
        if not 0 < factor <= 1:
            raise QoSError("scale factor must be in (0, 1]")
        return QoSParameters(throughput=self.throughput * factor,
                             latency=self.latency,
                             jitter=self.jitter,
                             loss=self.loss)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QoSParameters):
            return NotImplemented
        return (self.throughput, self.latency, self.jitter, self.loss) == \
            (other.throughput, other.latency, other.jitter, other.loss)

    def __repr__(self) -> str:
        return "QoS(tp={:.3g}b/s, lat={:.3g}s, jit={:.3g}s, loss={:.3g})" \
            .format(self.throughput, self.latency, self.jitter, self.loss)


class QoSContract:
    """An agreed QoS level for one flow between two nodes."""

    def __init__(self, src: str, dst: str, agreed: QoSParameters,
                 desired: QoSParameters,
                 minimum: QoSParameters) -> None:
        self.contract_id = "qos-{}".format(next(_contract_ids))
        self.src = src
        self.dst = dst
        self.agreed = agreed
        self.desired = desired
        self.minimum = minimum
        self.state = ACTIVE
        self.renegotiations = 0

    @property
    def is_active(self) -> bool:
        return self.state in (ACTIVE, DEGRADED)

    def mark_violated(self) -> None:
        """Record a monitored violation of the agreed level."""
        if self.state != CLOSED:
            self.state = VIOLATED

    def renegotiate(self, new_agreed: QoSParameters) -> None:
        """Adopt a new agreed level (dynamic re-negotiation, §4.2.2-ii)."""
        if self.state == CLOSED:
            raise QoSError("cannot renegotiate a closed contract")
        if not new_agreed.satisfies(self.minimum):
            raise QoSError(
                "renegotiated level falls below the contract minimum")
        self.agreed = new_agreed
        self.renegotiations += 1
        self.state = DEGRADED if not new_agreed.satisfies(self.desired) \
            else ACTIVE

    def close(self) -> None:
        self.state = CLOSED

    def __repr__(self) -> str:
        return "<QoSContract {} {}->{} [{}]>".format(
            self.contract_id, self.src, self.dst, self.state)
