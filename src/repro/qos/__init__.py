"""Quality of service: expression, negotiation, monitoring, adaptation.

Implements §4.2.2-ii end to end: :class:`QoSParameters` express desired
levels (computational viewpoint); :class:`QoSBroker` negotiates and admits
flows against link budgets (engineering viewpoint); :class:`QoSMonitor`
watches achieved service and informs the application of degradations so it
can renegotiate dynamically.
"""

from repro.qos.broker import QoSBroker
from repro.qos.monitor import QoSMonitor, QoSObservation
from repro.qos.params import (
    ACTIVE,
    CLOSED,
    DEGRADED,
    QoSContract,
    QoSParameters,
    VIOLATED,
)

__all__ = [
    "ACTIVE",
    "CLOSED",
    "DEGRADED",
    "QoSBroker",
    "QoSContract",
    "QoSMonitor",
    "QoSObservation",
    "QoSParameters",
    "VIOLATED",
]
