"""QoS negotiation and admission control (§4.2.2-ii).

*"Facilities are required for negotiation of QoS levels between remote
peers"* — the :class:`QoSBroker` owns a bandwidth budget per link and
admits a flow only if every link on its path has residual capacity.
Negotiation is desired/minimum: the broker grants the best throughput
between the two that fits, or refuses.  Released and renegotiated
contracts return capacity to the budget.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import QoSNegotiationFailed, QoSError
from repro.net.link import Link
from repro.net.network import Network
from repro.qos.params import QoSContract, QoSParameters
from repro.sim import Counter


class QoSBroker:
    """Admission control over a network's link capacities."""

    def __init__(self, network: Network,
                 reservable_fraction: float = 0.8) -> None:
        if not 0 < reservable_fraction <= 1:
            raise QoSError("reservable_fraction must be in (0, 1]")
        self.network = network
        self.reservable_fraction = reservable_fraction
        #: link -> bits/s currently reserved.
        self._reserved: Dict[Link, float] = {}
        self._contract_links: Dict[str, List[Link]] = {}
        self.contracts: Dict[str, QoSContract] = {}
        self.counters = Counter()

    def residual(self, link: Link) -> float:
        """Reservable bits/s left on ``link``."""
        ceiling = link.bandwidth * self.reservable_fraction
        return ceiling - self._reserved.get(link, 0.0)

    def negotiate(self, src: str, dst: str, desired: QoSParameters,
                  minimum: Optional[QoSParameters] = None) -> QoSContract:
        """Admit a flow at the best level between desired and minimum.

        Raises :class:`QoSNegotiationFailed` when even the minimum cannot
        be carried (insufficient capacity or the path's intrinsic latency
        exceeds the bound).
        """
        minimum = minimum or desired
        if desired.throughput < minimum.throughput:
            raise QoSError("desired throughput below minimum")
        self.counters.incr("negotiations")
        path = self.network.topology.path(src, dst)
        if not path:
            raise QoSNegotiationFailed("no path {}->{}".format(src, dst))
        intrinsic_latency = sum(link.latency for link in path)
        if intrinsic_latency > minimum.latency:
            self.counters.incr("refused:latency")
            raise QoSNegotiationFailed(
                "path latency {:.4g}s exceeds bound {:.4g}s".format(
                    intrinsic_latency, minimum.latency))
        grantable = min(self.residual(link) for link in path)
        if grantable < minimum.throughput:
            self.counters.incr("refused:capacity")
            raise QoSNegotiationFailed(
                "only {:.3g}b/s available, minimum is {:.3g}b/s".format(
                    max(grantable, 0.0), minimum.throughput))
        throughput = min(desired.throughput, grantable)
        agreed = QoSParameters(throughput=throughput,
                               latency=desired.latency,
                               jitter=desired.jitter,
                               loss=desired.loss)
        for link in path:
            self._reserved[link] = \
                self._reserved.get(link, 0.0) + throughput
        contract = QoSContract(src, dst, agreed, desired, minimum)
        self.contracts[contract.contract_id] = contract
        self._contract_links[contract.contract_id] = list(path)
        self.counters.incr("admitted")
        if throughput < desired.throughput:
            self.counters.incr("admitted_degraded")
        return contract

    def renegotiate(self, contract: QoSContract,
                    new_throughput: float) -> QoSContract:
        """Change a contract's throughput (up needs capacity, down frees it)."""
        if contract.contract_id not in self.contracts:
            raise QoSError("unknown contract " + contract.contract_id)
        links = self._contract_links[contract.contract_id]
        delta = new_throughput - contract.agreed.throughput
        if delta > 0:
            if any(self.residual(link) < delta for link in links):
                raise QoSNegotiationFailed(
                    "no capacity for the requested increase")
        for link in links:
            self._reserved[link] = self._reserved.get(link, 0.0) + delta
        contract.renegotiate(QoSParameters(
            throughput=new_throughput,
            latency=contract.agreed.latency,
            jitter=contract.agreed.jitter,
            loss=contract.agreed.loss))
        self.counters.incr("renegotiations")
        return contract

    def shed(self, contract: QoSContract,
             fraction: float = 0.5) -> QoSContract:
        """Gracefully degrade a contract toward its negotiated minimum.

        Drops the agreed throughput by ``fraction`` (of the current
        level), clamped at the contract's minimum — media quality falls
        rather than the flow failing.  Shedding only moves downward, so
        it never needs capacity and cannot raise
        :class:`QoSNegotiationFailed`.
        """
        if not 0 < fraction <= 1:
            raise QoSError("shed fraction must be in (0, 1]")
        target = max(contract.minimum.throughput,
                     contract.agreed.throughput * (1.0 - fraction))
        if target >= contract.agreed.throughput:
            return contract
        self.counters.incr("sheds")
        return self.renegotiate(contract, target)

    def restore(self, contract: QoSContract) -> QoSContract:
        """Raise a degraded contract back toward its desired level,
        limited by what every link on the path can currently carry."""
        links = self._contract_links.get(contract.contract_id)
        if links is None:
            raise QoSError("unknown contract " + contract.contract_id)
        headroom = min(self.residual(link) for link in links)
        target = min(contract.desired.throughput,
                     contract.agreed.throughput + max(headroom, 0.0))
        if target <= contract.agreed.throughput:
            return contract
        self.counters.incr("restores")
        return self.renegotiate(contract, target)

    def release(self, contract: QoSContract) -> None:
        """Tear down a contract and return its reservation."""
        if contract.contract_id not in self.contracts:
            raise QoSError("unknown contract " + contract.contract_id)
        for link in self._contract_links.pop(contract.contract_id):
            self._reserved[link] = max(
                0.0, self._reserved.get(link, 0.0)
                - contract.agreed.throughput)
        self.contracts.pop(contract.contract_id)
        contract.close()
        self.counters.incr("released")

    def total_reserved(self) -> float:
        """Sum of reservations across all links (utilisation metric)."""
        return sum(self._reserved.values())
