"""Quilt-style co-authoring (§3.2.3).

*"A document in Quilt consists of a base and nodes linked to the base
using hypertext techniques.  ...users read a publicly available document
annotating the document to reflect their comments.  At any time a Quilt
comment network will consist of a current base document, some revision
suggestions, and a set of comments."*

Quilt also enforced social roles; here **authors** may revise the base and
incorporate suggestions, **co-authors** may suggest revisions and comment,
**commenters** may only comment.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.errors import AccessDenied, HypertextError
from repro.hypertext.network import HyperNode, HypertextNetwork

AUTHOR = "author"
CO_AUTHOR = "co-author"
COMMENTER = "commenter"

ROLES = (AUTHOR, CO_AUTHOR, COMMENTER)

COMMENT = "comment"
SUGGESTION = "suggestion"

OPEN = "open"
INCORPORATED = "incorporated"
REJECTED = "rejected"


class QuiltDocument:
    """A base document plus its annotation network."""

    def __init__(self, title: str, base_text: str, creator: str) -> None:
        self.title = title
        self.network = HypertextNetwork(title)
        self._roles: Dict[str, str] = {creator: AUTHOR}
        self.base: HyperNode = self.network.add_node(
            creator, "base", base_text)
        self.base_history: List[Tuple[int, str, str]] = [
            (1, creator, base_text)]
        #: annotation node_id -> status (suggestions only).
        self._suggestion_status: Dict[str, str] = {}

    # -- membership --------------------------------------------------------------

    def add_participant(self, user: str, role: str) -> None:
        if role not in ROLES:
            raise HypertextError("unknown role: " + role)
        self._roles[user] = role

    def role_of(self, user: str) -> str:
        try:
            return self._roles[user]
        except KeyError:
            raise AccessDenied(
                "{} is not a participant in {}".format(user, self.title))

    # -- reading -----------------------------------------------------------------

    @property
    def base_text(self) -> str:
        return self.base.content

    @property
    def base_version(self) -> int:
        return self.base.version

    def comments(self) -> List[HyperNode]:
        """All comment annotations, threaded ones included."""
        return [node for node in self.network.nodes()
                if node.kind == COMMENT]

    def suggestions(self, status: Optional[str] = None) -> List[HyperNode]:
        result = []
        for node in self.network.nodes():
            if node.kind != SUGGESTION:
                continue
            node_status = self._suggestion_status.get(node.node_id, OPEN)
            if status is None or node_status == status:
                result.append(node)
        return result

    def suggestion_status(self, node_id: str) -> str:
        if node_id not in self._suggestion_status:
            raise HypertextError(
                "{} is not a suggestion".format(node_id))
        return self._suggestion_status[node_id]

    # -- annotating ----------------------------------------------------------------

    def comment(self, user: str, text: str,
                on: Optional[str] = None) -> HyperNode:
        """Attach a comment to the base or to another annotation."""
        self.role_of(user)  # all roles may comment
        node = self.network.add_node(user, COMMENT, text)
        target = on or self.base.node_id
        self.network.add_link(user, node.node_id, target, "annotates")
        return node

    def suggest_revision(self, user: str, replacement_text: str
                         ) -> HyperNode:
        """Propose new base text (authors and co-authors only)."""
        if self.role_of(user) == COMMENTER:
            raise AccessDenied(
                "commenters may not suggest revisions")
        node = self.network.add_node(user, SUGGESTION, replacement_text)
        self.network.add_link(user, node.node_id, self.base.node_id,
                              "annotates")
        self._suggestion_status[node.node_id] = OPEN
        return node

    # -- revising ------------------------------------------------------------------

    def revise_base(self, user: str, new_text: str) -> int:
        """Authors may rewrite the base directly; returns new version."""
        if self.role_of(user) != AUTHOR:
            raise AccessDenied("only authors may revise the base")
        self.network.edit_node(user, self.base.node_id, new_text,
                               self.base.version)
        self.base_history.append((self.base.version, user, new_text))
        return self.base.version

    def incorporate(self, user: str, suggestion_id: str) -> int:
        """An author adopts a suggestion as the new base text."""
        if self.role_of(user) != AUTHOR:
            raise AccessDenied("only authors may incorporate suggestions")
        status = self.suggestion_status(suggestion_id)
        if status != OPEN:
            raise HypertextError(
                "suggestion {} is already {}".format(suggestion_id,
                                                     status))
        suggestion = self.network.node(suggestion_id)
        version = self.revise_base(user, suggestion.content)
        self._suggestion_status[suggestion_id] = INCORPORATED
        return version

    def reject(self, user: str, suggestion_id: str) -> None:
        """An author declines a suggestion (it stays visible)."""
        if self.role_of(user) != AUTHOR:
            raise AccessDenied("only authors may reject suggestions")
        if self.suggestion_status(suggestion_id) != OPEN:
            raise HypertextError("suggestion is not open")
        self._suggestion_status[suggestion_id] = REJECTED

    def thread_of(self, node_id: str) -> List[HyperNode]:
        """Comments attached to the given annotation (one level)."""
        return [self.network.node(link.src)
                for link in self.network.links_to(node_id, "annotates")]
