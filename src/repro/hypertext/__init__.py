"""Multi-user hypertext and co-authoring (§3.2.3)."""

from repro.hypertext.network import (
    HyperLink,
    HyperNode,
    HypertextNetwork,
    LINK_TYPES,
)
from repro.hypertext.sepia import (
    DONE,
    IN_PROGRESS,
    PLANNED,
    PlanningSpace,
    TASK_STATES,
)
from repro.hypertext.quilt import (
    AUTHOR,
    CO_AUTHOR,
    COMMENT,
    COMMENTER,
    INCORPORATED,
    OPEN,
    QuiltDocument,
    REJECTED,
    ROLES,
    SUGGESTION,
)

__all__ = [
    "AUTHOR",
    "CO_AUTHOR",
    "COMMENT",
    "COMMENTER",
    "DONE",
    "IN_PROGRESS",
    "PLANNED",
    "PlanningSpace",
    "TASK_STATES",
    "HyperLink",
    "HyperNode",
    "HypertextNetwork",
    "INCORPORATED",
    "LINK_TYPES",
    "OPEN",
    "QuiltDocument",
    "REJECTED",
    "ROLES",
    "SUGGESTION",
]
