"""SEPIA-style activity spaces for cooperative hyperdocuments (§3.2.3).

*"More recently, systems such as Sepia have extended the provision of
support for cooperative hypertext by developing facilities to support the
representation of cooperative work plans as part of the network."*

SEPIA organised hyperdocument authoring into *activity spaces*: a content
space (the material), a rhetorical space (the argument structure) and a
**planning space** where the work itself — tasks, assignments,
dependencies — is represented as hypertext, linked to the content it
concerns.  This module adds that planning space on top of
:class:`~repro.hypertext.network.HypertextNetwork`: every task is a node,
dependencies and assignments are links, so plans are browsed, annotated
and versioned with exactly the same machinery as the document.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import HypertextError
from repro.hypertext.network import HyperNode, HypertextNetwork

TASK = "task"

PLANNED = "planned"
IN_PROGRESS = "in-progress"
DONE = "done"

TASK_STATES = (PLANNED, IN_PROGRESS, DONE)


class PlanningSpace:
    """Cooperative work plans represented inside the hypertext network."""

    def __init__(self, network: Optional[HypertextNetwork] = None) -> None:
        self.network = network or HypertextNetwork("plan")
        self._assignees: Dict[str, List[str]] = {}

    # -- tasks -----------------------------------------------------------------

    def add_task(self, author: str, title: str,
                 concerning: Optional[str] = None) -> HyperNode:
        """Create a task node, optionally linked to the content node it
        concerns (plan and material share one network)."""
        task = self.network.add_node(author, TASK,
                                     {"title": title, "state": PLANNED})
        if concerning is not None:
            self.network.add_link(author, task.node_id, concerning,
                                  "annotates")
        return task

    def tasks(self, state: Optional[str] = None) -> List[HyperNode]:
        """All tasks, optionally filtered by state."""
        return [node for node in self.network.nodes()
                if node.kind == TASK
                and (state is None or node.content["state"] == state)]

    def set_state(self, user: str, task_id: str, state: str) -> None:
        """Move a task through its lifecycle (version-checked edit)."""
        if state not in TASK_STATES:
            raise HypertextError("unknown task state: " + state)
        task = self._task(task_id)
        if state == DONE and self.blocking_tasks(task_id):
            raise HypertextError(
                "task {} has unfinished dependencies".format(task_id))
        new_content = dict(task.content)
        new_content["state"] = state
        self.network.edit_node(user, task_id, new_content, task.version)

    # -- dependencies -------------------------------------------------------------

    def depends_on(self, user: str, task_id: str,
                   prerequisite_id: str) -> None:
        """Record that a task cannot finish before its prerequisite."""
        task = self._task(task_id)
        prerequisite = self._task(prerequisite_id)
        if task is prerequisite:
            raise HypertextError("a task cannot depend on itself")
        if self._reachable(prerequisite_id, task_id):
            raise HypertextError("dependency would create a cycle")
        self.network.add_link(user, task.node_id,
                              prerequisite.node_id, "supports")

    def blocking_tasks(self, task_id: str) -> List[HyperNode]:
        """Unfinished prerequisites of the task."""
        self._task(task_id)
        return [self.network.node(link.dst)
                for link in self.network.links_from(task_id, "supports")
                if self.network.node(link.dst).content["state"] != DONE]

    def ready_tasks(self) -> List[HyperNode]:
        """Planned tasks whose prerequisites are all done."""
        return [task for task in self.tasks(state=PLANNED)
                if not self.blocking_tasks(task.node_id)]

    # -- assignment -----------------------------------------------------------------

    def assign(self, assigner: str, task_id: str, assignee: str) -> None:
        """Give a task to a colleague (visible as plan structure)."""
        self._task(task_id)
        self._assignees.setdefault(task_id, [])
        if assignee in self._assignees[task_id]:
            raise HypertextError(
                "{} is already assigned to {}".format(assignee, task_id))
        self._assignees[task_id].append(assignee)

    def assignees_of(self, task_id: str) -> List[str]:
        self._task(task_id)
        return list(self._assignees.get(task_id, []))

    def workload_of(self, user: str) -> List[HyperNode]:
        """Everything assigned to a user that is not yet done."""
        return [self._task(task_id)
                for task_id, users in self._assignees.items()
                if user in users
                and self._task(task_id).content["state"] != DONE]

    # -- internals ---------------------------------------------------------------------

    def _task(self, task_id: str) -> HyperNode:
        node = self.network.node(task_id)
        if node.kind != TASK:
            raise HypertextError("{} is not a task".format(task_id))
        return node

    def _reachable(self, start: str, goal: str) -> bool:
        """Is ``goal`` reachable from ``start`` along dependencies?"""
        stack = [start]
        seen = set()
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(link.dst for link in
                         self.network.links_from(node, "supports"))
        return False
