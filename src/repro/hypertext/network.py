"""Multi-user hypertext (§3.2.3).

*"the hypertext document (or network) is constructed by a number of users
adding nodes to the network in an independent manner.  Facilities must
then be provided to deal explicitly with the conflicts inherent in this
process."*

Adding nodes and links is conflict-free by construction (independent
additions commute).  Editing an existing node is version-checked: an edit
based on a stale version does not silently overwrite — it *branches* into
an alternative node linked to the original, and the conflict is recorded
for the users to resolve socially.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import HypertextError

_node_ids = itertools.count(1)  # repro: allow-RPR005 (ids are labels, not behaviour)
_link_ids = itertools.count(1)  # repro: allow-RPR005 (ids are labels, not behaviour)

#: Link types in the spirit of Intermedia/SEPIA (incl. argumentation).
LINK_TYPES = ("reference", "comment", "supports", "refutes",
              "alternative", "annotates")


class HyperNode:
    """One node of the network: typed content with a version counter."""

    def __init__(self, kind: str, content: Any, author: str) -> None:
        self.node_id = "n{}".format(next(_node_ids))
        self.kind = kind
        self.content = content
        self.author = author
        self.version = 1
        self.editors: List[str] = [author]

    def __repr__(self) -> str:
        return "<HyperNode {} {} v{}>".format(
            self.node_id, self.kind, self.version)


class HyperLink:
    """A typed, directed link between two nodes."""

    def __init__(self, src: str, dst: str, kind: str,
                 author: str) -> None:
        if kind not in LINK_TYPES:
            raise HypertextError("unknown link type: " + kind)
        self.link_id = "l{}".format(next(_link_ids))
        self.src = src
        self.dst = dst
        self.kind = kind
        self.author = author


class HypertextNetwork:
    """A shared hypertext built concurrently by many users."""

    def __init__(self, name: str = "network") -> None:
        self.name = name
        self._nodes: Dict[str, HyperNode] = {}
        self._links: List[HyperLink] = []
        #: (node_id, editor, stale_version, branch_node_id) records.
        self.conflicts: List[Tuple[str, str, int, str]] = []

    # -- construction -------------------------------------------------------------

    def add_node(self, author: str, kind: str, content: Any) -> HyperNode:
        """Independent addition: never conflicts."""
        node = HyperNode(kind, content, author)
        self._nodes[node.node_id] = node
        return node

    def add_link(self, author: str, src: str, dst: str,
                 kind: str = "reference") -> HyperLink:
        """Link two existing nodes."""
        if src not in self._nodes or dst not in self._nodes:
            raise HypertextError("both endpoints must exist")
        link = HyperLink(src, dst, kind, author)
        self._links.append(link)
        return link

    def node(self, node_id: str) -> HyperNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise HypertextError("no node {}".format(node_id))

    def nodes(self) -> List[HyperNode]:
        return list(self._nodes.values())

    def links_from(self, node_id: str,
                   kind: Optional[str] = None) -> List[HyperLink]:
        return [link for link in self._links
                if link.src == node_id
                and (kind is None or link.kind == kind)]

    def links_to(self, node_id: str,
                 kind: Optional[str] = None) -> List[HyperLink]:
        return [link for link in self._links
                if link.dst == node_id
                and (kind is None or link.kind == kind)]

    # -- concurrent editing ------------------------------------------------------------

    def edit_node(self, editor: str, node_id: str, new_content: Any,
                  base_version: int) -> HyperNode:
        """Edit with optimistic version checking.

        An edit based on the current version updates in place.  An edit
        based on a stale version *branches*: the stale edit becomes a new
        node linked as an "alternative", and the conflict is recorded for
        explicit resolution.  Returns the node actually written.
        """
        node = self.node(node_id)
        if base_version == node.version:
            node.content = new_content
            node.version += 1
            if editor not in node.editors:
                node.editors.append(editor)
            return node
        branch = self.add_node(editor, node.kind, new_content)
        self.add_link(editor, branch.node_id, node_id, "alternative")
        self.conflicts.append(
            (node_id, editor, base_version, branch.node_id))
        return branch

    def alternatives_of(self, node_id: str) -> List[HyperNode]:
        """Branched alternatives awaiting social resolution."""
        return [self.node(link.src)
                for link in self.links_to(node_id, "alternative")]

    def resolve_conflict(self, resolver: str, node_id: str,
                         chosen_branch: str) -> HyperNode:
        """Adopt a branch's content as the node's next version."""
        node = self.node(node_id)
        branch = self.node(chosen_branch)
        if branch not in self.alternatives_of(node_id):
            raise HypertextError(
                "{} is not an alternative of {}".format(
                    chosen_branch, node_id))
        node.content = branch.content
        node.version += 1
        if resolver not in node.editors:
            node.editors.append(resolver)
        self._links = [link for link in self._links
                       if not (link.src == chosen_branch
                               and link.dst == node_id
                               and link.kind == "alternative")]
        del self._nodes[chosen_branch]
        return node
