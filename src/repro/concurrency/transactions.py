"""Serialisable atomic transactions: the classical baseline of Figure 2a.

Strict two-phase locking over a :class:`~repro.concurrency.store.SharedStore`
with private write workspaces: a transaction's writes are invisible to every
other user until commit — exactly the "walls between users" the paper
criticises.  Deadlocks are detected on a wait-for graph and resolved by
aborting the requester.

Experiment F2 measures the consequence: *notification time* (when other
users learn of a change) is unbounded-until-commit here, versus continuous
under the awareness-oriented mechanisms.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Set

from repro.errors import TransactionAborted
from repro.concurrency.locks import (
    EXCLUSIVE,
    HARD,
    LockGrant,
    LockTable,
    SHARED,
)
from repro.concurrency.store import SharedStore
from repro.sim import Counter, Environment

ACTIVE = "active"
COMMITTED = "committed"
ABORTED = "aborted"

_txn_ids = itertools.count(1)  # repro: allow-RPR005 (ids are labels, not behaviour)


class Transaction:
    """One atomic unit of work by one user."""

    def __init__(self, owner: str, started_at: float) -> None:
        self.txn_id = "txn-{}".format(next(_txn_ids))
        self.owner = owner
        self.started_at = started_at
        self.state = ACTIVE
        self.grants: Dict[str, LockGrant] = {}
        self.workspace: Dict[str, Any] = {}
        self.read_set: Set[str] = set()

    @property
    def is_active(self) -> bool:
        return self.state == ACTIVE

    def __repr__(self) -> str:
        return "<Transaction {} by {} [{}]>".format(
            self.txn_id, self.owner, self.state)


class TransactionManager:
    """Begin/read/write/commit/abort with strict 2PL."""

    def __init__(self, env: Environment, store: SharedStore) -> None:
        self.env = env
        self.store = store
        self.locks = LockTable(env, style=HARD)
        self.counters = Counter()
        self._active: Dict[str, Transaction] = {}
        #: txn_id -> set of txn_ids it currently waits for.
        self._wait_for: Dict[str, Set[str]] = {}
        #: key -> list of txns holding a lock on it (for wait edges).
        self._lock_owner_txns: Dict[str, List[Transaction]] = {}

    def begin(self, owner: str) -> Transaction:
        """Start a transaction for ``owner``."""
        txn = Transaction(owner, self.env.now)
        self._active[txn.txn_id] = txn
        self.counters.incr("begun")
        return txn

    def read(self, txn: Transaction, key: str):
        """Read ``key`` under a shared lock (generator; yields sim events).

        Returns the committed value, or the transaction's own pending
        write if it has one.
        """
        self._check_active(txn)
        yield from self._lock(txn, key, SHARED)
        txn.read_set.add(key)
        if key in txn.workspace:
            return txn.workspace[key]
        if key in self.store:
            return self.store.read(key, reader=txn.owner)
        return None

    def write(self, txn: Transaction, key: str, value: Any):
        """Write ``key`` under an exclusive lock, privately until commit."""
        self._check_active(txn)
        yield from self._lock(txn, key, EXCLUSIVE)
        txn.workspace[key] = value

    def commit(self, txn: Transaction):
        """Publish the workspace atomically and release all locks."""
        self._check_active(txn)
        for key, value in txn.workspace.items():
            self.store.write(key, value, writer=txn.owner, at=self.env.now)
        txn.state = COMMITTED
        self._release_all(txn)
        self.counters.incr("committed")
        return
        yield  # pragma: no cover - keeps commit usable with yield from

    def abort(self, txn: Transaction, reason: str = "explicit") -> None:
        """Discard the workspace and release all locks."""
        if txn.state != ACTIVE:
            return
        txn.state = ABORTED
        txn.workspace.clear()
        self._release_all(txn)
        self.counters.incr("aborted")
        self.counters.incr("aborted:" + reason)

    # -- internals -------------------------------------------------------------

    def _check_active(self, txn: Transaction) -> None:
        if not txn.is_active:
            raise TransactionAborted(
                "{} is {}".format(txn.txn_id, txn.state))

    def _lock(self, txn: Transaction, key: str, mode: str):
        existing = txn.grants.get(key)
        if existing is not None:
            if mode == SHARED or existing.mode == EXCLUSIVE:
                return
            # In-place upgrade: keep the shared lock while waiting so no
            # other writer can interleave (preserves two-phase locking).
            event = self.locks.upgrade(existing)
        else:
            event = self.locks.acquire(key, txn.txn_id, mode)
        if not event.triggered:
            blockers = self._blocking_txns(txn, key)
            self._wait_for[txn.txn_id] = blockers
            if self._creates_cycle(txn.txn_id):
                self.locks.cancel_wait(key, event)
                event.defuse()
                self._wait_for.pop(txn.txn_id, None)
                self.counters.incr("deadlocks")
                self.abort(txn, reason="deadlock")
                raise TransactionAborted(
                    "deadlock: {} aborted requesting {}".format(
                        txn.txn_id, key))
            grant = yield event
            self._wait_for.pop(txn.txn_id, None)
        else:
            grant = event.value
        if txn.grants.get(key) is not grant:
            txn.grants[key] = grant
            self._lock_owner_txns.setdefault(key, []).append(txn)

    def _forget_lock(self, txn: Transaction, key: str) -> None:
        txn.grants.pop(key, None)
        owners = self._lock_owner_txns.get(key, [])
        if txn in owners:
            owners.remove(txn)

    def _release_all(self, txn: Transaction) -> None:
        for key, grant in list(txn.grants.items()):
            self.locks.release(grant)
            self._forget_lock(txn, key)
        self._wait_for.pop(txn.txn_id, None)

    def _blocking_txns(self, txn: Transaction, key: str) -> Set[str]:
        return {holder.txn_id
                for holder in self._lock_owner_txns.get(key, [])
                if holder.is_active and holder is not txn}

    def _creates_cycle(self, start: str) -> bool:
        """DFS over the wait-for graph looking for a cycle through start."""
        stack = list(self._wait_for.get(start, ()))
        seen: Set[str] = set()
        while stack:
            node = stack.pop()
            if node == start:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._wait_for.get(node, ()))
        return False
